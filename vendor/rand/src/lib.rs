//! Offline, API-compatible subset of `rand` 0.8.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the surface it actually uses: the [`Rng`] extension trait (`gen`,
//! `gen_range`, `gen_bool`) and [`seq::SliceRandom`] (`shuffle`, `choose`).
//! Integer `gen_range` uses Lemire-style widening multiplication where the
//! type allows and is unbiased for the workspace's use cases.

pub use rand_core::{RngCore, SeedableRng};

/// Types that can be sampled uniformly from the unit interval / full domain
/// by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution of `Self`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Types that can be sampled uniformly from a half-open range by
/// [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Draws one value uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u64).wrapping_sub(low as u64);
                // Widening multiply keeps the bias below 2^-64 per draw,
                // negligible for every span used in this workspace.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low + hi as Self
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as $u).wrapping_sub(low as $u);
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as $u;
                low.wrapping_add(hi as Self)
            }
        }
    )*};
}

impl_sample_uniform_int!(i32 => u32, i64 => u64);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + f64::sample_standard(rng) * (high - low)
    }
}

/// Extension methods for all [`RngCore`] generators (the `rand 0.8` names).
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T` (`[0, 1)` for
    /// floats, the full domain for integers, fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not a probability");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related extensions: shuffling and random selection.

    use super::{Rng, RngCore};

    /// Extension methods on slices (the `rand 0.8` names).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..i + 1));
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct SplitMix(u64);

    impl RngCore for SplitMix {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            rand_core::splitmix64(&mut self.0)
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SplitMix(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
            let z = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&z));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = SplitMix(11);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 elements should not shuffle to identity");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = SplitMix(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([42u8].choose(&mut rng), Some(&42));
    }
}
