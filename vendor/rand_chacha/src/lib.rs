//! Offline, API-compatible subset of `rand_chacha` 0.3: [`ChaCha8Rng`].
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a real ChaCha implementation (Bernstein's quarter-round network, 8 rounds
//! = 4 double rounds, as ChaCha8 specifies) behind the same type name. Streams are deterministic per seed but
//! not bit-identical to upstream `rand_chacha` (which nobody in this
//! workspace relies on — seeds only pin *a* reproducible stream).

pub use rand_core;

use rand_core::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// A cryptographically-strong-enough deterministic RNG: ChaCha8 (8 rounds =
/// 4 double rounds), keyed by a 32-byte seed.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key + constant + counter state fed to the block function.
    state: [u32; BLOCK_WORDS],
    /// Output buffer of the current block.
    buf: [u32; BLOCK_WORDS],
    /// Next unread word in `buf`; `BLOCK_WORDS` means "refill".
    cursor: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds total: column round + diagonal round, four times.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .buf
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12–13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        for (word, chunk) in state[4..12].iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // Words 12..16: counter and nonce start at zero.
        ChaCha8Rng {
            state,
            buf: [0; BLOCK_WORDS],
            cursor: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.buf[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn counter_advances_across_blocks() {
        // More draws than one 16-word block; stream must not repeat the
        // first block.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn output_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let n = 100_000u64;
        let ones: u32 = (0..n).map(|_| rng.next_u32().count_ones()).sum();
        let frac = ones as f64 / (n as f64 * 32.0);
        assert!((frac - 0.5).abs() < 0.005, "bit fraction {frac}");
    }
}
