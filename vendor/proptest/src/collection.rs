//! Collection strategies: `vec` and `btree_map`.

use std::collections::BTreeMap;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A collection-size specification: either a fixed length or a half-open
/// range, converted implicitly like real proptest's `SizeRange`.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive.
    max: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.max <= self.min + 1 {
            self.min
        } else {
            self.min + rng.below((self.max - self.min) as u64) as usize
        }
    }
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange {
            min: len,
            max: len + 1,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec<E::Value>` with length drawn from `size`.
pub fn vec<E: Strategy>(element: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<E> {
    element: E,
    size: SizeRange,
}

impl<E: Strategy> Strategy for VecStrategy<E> {
    type Value = Vec<E::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<E::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap<K::Value, V::Value>` with entry count drawn from
/// `size` (duplicate keys are retried, so the minimum size is honored as
/// long as the key space is large enough).
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: impl Into<SizeRange>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// See [`btree_map`].
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let target = self.size.sample(rng);
        let mut map = BTreeMap::new();
        // Bounded retries in case the key strategy's domain is smaller than
        // the requested size.
        let mut attempts = 0usize;
        while map.len() < target && attempts < target.saturating_mul(20) + 100 {
            map.insert(self.key.generate(rng), self.value.generate(rng));
            attempts += 1;
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_length_in_range() {
        let mut rng = TestRng::from_seed(4);
        let strat = vec(0u32..100, 3..7);
        for _ in 0..2_000 {
            let v = strat.generate(&mut rng);
            assert!((3..7).contains(&v.len()), "len {}", v.len());
            assert!(v.iter().all(|&x| x < 100));
        }
        let fixed = vec(0u32..10, 20usize);
        assert_eq!(fixed.generate(&mut rng).len(), 20);
    }

    #[test]
    fn btree_map_honors_min_size() {
        let mut rng = TestRng::from_seed(5);
        let strat = btree_map(0u32..500, 0.0..1.0f64, 1..10);
        for _ in 0..500 {
            let m = strat.generate(&mut rng);
            assert!((1..10).contains(&m.len()), "len {}", m.len());
        }
    }
}
