//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type AnyStrategy: Strategy<Value = Self>;

    /// The canonical strategy for `Self`.
    fn arbitrary() -> Self::AnyStrategy;
}

/// The canonical strategy for `T`, e.g. `any::<bool>()`.
pub fn any<T: Arbitrary>() -> T::AnyStrategy {
    T::arbitrary()
}

/// Whole-domain strategy for a primitive (zero-sized marker).
pub struct AnyPrimitive<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! impl_arbitrary {
    ($($t:ty => |$rng:ident| $body:expr),* $(,)?) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;

            fn generate(&self, $rng: &mut TestRng) -> $t {
                $body
            }
        }

        impl Arbitrary for $t {
            type AnyStrategy = AnyPrimitive<$t>;

            fn arbitrary() -> Self::AnyStrategy {
                AnyPrimitive { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

impl_arbitrary! {
    bool => |rng| rng.bool(),
    u8 => |rng| rng.next_u64() as u8,
    u16 => |rng| rng.next_u64() as u16,
    u32 => |rng| rng.next_u64() as u32,
    u64 => |rng| rng.next_u64(),
    usize => |rng| rng.next_u64() as usize,
    i32 => |rng| rng.next_u64() as i32,
    i64 => |rng| rng.next_u64() as i64,
    f64 => |rng| rng.unit_f64(),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_takes_both_values() {
        let mut rng = TestRng::from_seed(6);
        let strat = any::<bool>();
        let draws: Vec<bool> = (0..100).map(|_| strat.generate(&mut rng)).collect();
        assert!(draws.iter().any(|&b| b));
        assert!(draws.iter().any(|&b| !b));
    }
}
