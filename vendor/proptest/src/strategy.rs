//! The [`Strategy`] trait and its primitive implementations: numeric ranges,
//! tuples, [`Just`], and combinators.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy just
/// draws a value from the runner's deterministic RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps each generated value through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Feeds each generated value to `f`, which returns the strategy used to
    /// generate the final value (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_int {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}

impl_range_strategy_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// References generate what their target generates (lets `&strategy` be
/// passed where a strategy is expected).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..5_000 {
            let a = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&a));
            let b = (-4i32..4).generate(&mut rng);
            assert!((-4..4).contains(&b));
            let c = (-10.0..10.0f64).generate(&mut rng);
            assert!((-10.0..10.0).contains(&c));
        }
    }

    #[test]
    fn tuples_and_combinators_compose() {
        let mut rng = TestRng::from_seed(2);
        let strat = (1usize..5).prop_flat_map(|n| (Just(n), 0u32..n as u32));
        for _ in 0..2_000 {
            let (n, v) = strat.generate(&mut rng);
            assert!((1..5).contains(&n));
            assert!((v as usize) < n);
        }
        let mapped = (0u32..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            assert_eq!(mapped.generate(&mut rng) % 2, 0);
        }
    }
}
