//! Case generation, execution, and failing-seed persistence.

use std::io::Write as _;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use rand_chacha::rand_core::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Runner configuration. Only `cases` is interpreted; the struct is
/// non-exhaustively constructible via [`ProptestConfig::with_cases`] and
/// `Default` like the real crate.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated inputs per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The deterministic RNG handed to strategies (ChaCha8 under the hood).
pub struct TestRng {
    inner: ChaCha8Rng,
}

impl TestRng {
    /// A generator for one test case.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fair coin.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// FNV-1a over the test's identity: the base of its deterministic seed
/// sequence. Stable across runs and platforms.
fn identity_hash(file: &str, name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in file.bytes().chain([0u8]).chain(name.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// `tests/property.rs` → `<manifest>/proptest-regressions/property.txt`,
/// mirroring real proptest's layout.
fn regression_path(manifest_dir: &str, file: &str) -> PathBuf {
    let stem = Path::new(file)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("unknown");
    Path::new(manifest_dir)
        .join("proptest-regressions")
        .join(format!("{stem}.txt"))
}

/// Parses `cc <seed> # <test name>` lines addressed to `name`.
fn load_persisted_seeds(path: &Path, name: &str) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut seeds = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.trim().strip_prefix("cc ") else {
            continue;
        };
        let (seed_part, comment) = match rest.split_once('#') {
            Some((s, c)) => (s.trim(), c.trim()),
            None => (rest.trim(), ""),
        };
        // Unattributed seeds replay for every test in the file.
        if !comment.is_empty() && comment != name {
            continue;
        }
        if let Ok(seed) = seed_part.parse::<u64>() {
            seeds.push(seed);
        }
    }
    seeds
}

fn persist_seed(path: &Path, name: &str, seed: u64) {
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let new_file = !path.exists();
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    else {
        return;
    };
    if new_file {
        let _ = writeln!(
            f,
            "# Seeds for failure cases found by proptest. It is recommended \
             to check this file into source control; seeds listed here are \
             replayed before fresh cases on every run."
        );
    }
    let _ = writeln!(f, "cc {seed} # {name}");
}

/// Executes one property: replays persisted regression seeds, then runs
/// `config.cases` fresh deterministic cases. On failure the seed is appended
/// to the regression file and the panic is re-thrown with the case context.
pub fn run<F>(config: &ProptestConfig, manifest_dir: &str, file: &str, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng),
{
    let reg_path = regression_path(manifest_dir, file);
    let persisted = load_persisted_seeds(&reg_path, name);
    for &seed in &persisted {
        let mut rng = TestRng::from_seed(seed);
        if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| f(&mut rng))) {
            eprintln!(
                "proptest: {name} failed replaying persisted seed {seed} \
                 (from {})",
                reg_path.display()
            );
            panic::resume_unwind(payload);
        }
    }
    let base = identity_hash(file, name);
    for case in 0..config.cases {
        // SplitMix-style spread keeps per-case seeds decorrelated.
        let seed = base.wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = TestRng::from_seed(seed);
        if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| f(&mut rng))) {
            if !persisted.contains(&seed) {
                persist_seed(&reg_path, name, seed);
            }
            eprintln!(
                "proptest: {name} failed at case {case}/{} (seed {seed}); \
                 seed persisted to {}",
                config.cases,
                reg_path.display()
            );
            panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_deterministic_per_identity() {
        assert_eq!(
            identity_hash("tests/property.rs", "foo"),
            identity_hash("tests/property.rs", "foo")
        );
        assert_ne!(
            identity_hash("tests/property.rs", "foo"),
            identity_hash("tests/property.rs", "bar")
        );
    }

    #[test]
    fn regression_file_round_trip() {
        let dir = std::env::temp_dir().join(format!(
            "proptest-stub-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let path = dir.join("property.txt");
        persist_seed(&path, "my_test", 42);
        persist_seed(&path, "other_test", 7);
        assert_eq!(load_persisted_seeds(&path, "my_test"), vec![42]);
        assert_eq!(load_persisted_seeds(&path, "other_test"), vec![7]);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with('#'), "header comment expected: {text}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..10_000 {
            assert!(rng.below(13) < 13);
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn run_executes_exactly_cases_times() {
        let mut calls = 0u32;
        let config = ProptestConfig::with_cases(17);
        // Point the regression path somewhere harmless and empty.
        let tmp = std::env::temp_dir();
        run(
            &config,
            tmp.to_str().unwrap(),
            "nonexistent_file.rs",
            "counting",
            |_| calls += 1,
        );
        assert_eq!(calls, 17);
    }
}
