//! Offline, API-compatible subset of `proptest` 1.x.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the property-testing surface its tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]` support),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * [`strategy::Strategy`] with ranges, tuples, [`strategy::Just`], and
//!   `prop_flat_map`,
//! * [`collection::vec`] and [`collection::btree_map`],
//! * [`arbitrary::any`],
//! * deterministic case generation plus failing-seed persistence in
//!   `proptest-regressions/<file>.txt` (`cc <seed> # <test name>` lines),
//!   replayed before fresh cases on the next run — the same workflow as real
//!   proptest's regression files, minus shrinking.
//!
//! Differences from upstream: no shrinking (the failing seed is persisted
//! and replayed as-is), and case generation is deterministic per
//! (file, test, case index) rather than OS-entropy seeded, so CI failures
//! reproduce locally without copying seeds around.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    pub mod prop {
        //! The `prop::` module alias used inside `proptest!` bodies.
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests. Each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs (after replaying any persisted regression seeds).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests!{ ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_tests!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_tests {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            $crate::test_runner::run(
                &__config,
                env!("CARGO_MANIFEST_DIR"),
                file!(),
                stringify!($name),
                |__rng| {
                    let ( $($pat,)+ ) = (
                        $( $crate::strategy::Strategy::generate(&($strat), __rng), )+
                    );
                    $body
                },
            );
        }
        $crate::__proptest_tests!{ ($config) $($rest)* }
    };
}

/// Like `assert!`, inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// Like `assert_eq!`, inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!("prop_assert_eq failed: {:?} != {:?}", l, r);
        }
    }};
}

/// Like `assert_ne!`, inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            panic!("prop_assert_ne failed: both sides are {:?}", l);
        }
    }};
}
