//! Offline, API-compatible subset of `criterion` 0.5.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the measurement surface its benches use: [`Criterion`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Behavior mirrors real criterion's two modes:
//!
//! * under `cargo bench` (cargo passes `--bench`), each benchmark is warmed
//!   up and timed, and mean ns/iter is printed;
//! * otherwise (e.g. `cargo test --benches`), each benchmark body runs
//!   exactly once as a smoke test.
//!
//! No statistics, plots, or HTML reports — this exists so the bench suite
//! compiles, runs, and prints comparable numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter component.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id with only a parameter component.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            id: name.to_string(),
        }
    }
}

/// Passed to every benchmark closure; [`Bencher::iter`] runs the measured
/// routine.
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    /// Mean nanoseconds per iteration, filled in by `iter`.
    mean_ns: f64,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// `cargo bench`: measure.
    Measure,
    /// `cargo test` / plain execution: run once, don't measure.
    Test,
}

impl Bencher {
    /// Calls `routine` repeatedly and records its mean wall-clock cost (or
    /// once in test mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.mode == Mode::Test {
            std::hint::black_box(routine());
            return;
        }
        // Warm-up: a few untimed calls so caches and allocators settle.
        let warmup = self.sample_size.clamp(1, 5);
        for _ in 0..warmup {
            std::hint::black_box(routine());
        }
        // Measure in batches until we have sample_size timed calls or the
        // per-benchmark time budget runs out.
        let budget = Duration::from_secs(3);
        let start = Instant::now();
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while iters < self.sample_size as u64 && start.elapsed() < budget {
            let t = Instant::now();
            std::hint::black_box(routine());
            elapsed += t.elapsed();
            iters += 1;
        }
        self.mean_ns = elapsed.as_nanos() as f64 / iters.max(1) as f64;
    }
}

fn human_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn run_one<F: FnMut(&mut Bencher)>(mode: Mode, sample_size: usize, id: &str, mut f: F) {
    let mut b = Bencher {
        mode,
        sample_size,
        mean_ns: f64::NAN,
    };
    match mode {
        Mode::Test => {
            f(&mut b);
            println!("test {id} ... ok");
        }
        Mode::Measure => {
            f(&mut b);
            println!("{id:<50} time: {}", human_ns(b.mean_ns));
        }
    }
}

/// The benchmark manager handed to `criterion_group!` functions.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            mode: Mode::Test,
            filter: None,
        }
    }
}

impl Criterion {
    /// Builds a `Criterion` from the process arguments cargo passes to bench
    /// binaries: `--bench` selects measurement mode; a bare argument is a
    /// substring filter on benchmark ids. Other flags are ignored, and an
    /// unrecognized `--flag value` pair is skipped whole — otherwise the
    /// value would be mistaken for a filter and silently skip everything.
    pub fn from_args() -> Self {
        Self::parse_args(std::env::args().skip(1))
    }

    fn parse_args(args: impl Iterator<Item = String>) -> Self {
        let mut mode = Mode::Test;
        let mut filter = None;
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" => mode = Mode::Measure,
                "--test" => mode = Mode::Test,
                // Known boolean flags real criterion accepts: nothing to skip.
                "--verbose" | "--quiet" | "--exact" | "--list" => {}
                a if !a.starts_with('-') => filter = Some(a.to_string()),
                a => {
                    // `--flag=value` carries its value; `--flag value` does
                    // not — consume the value so it isn't read as a filter.
                    if !a.contains('=') && args.peek().is_some_and(|v| !v.starts_with('-')) {
                        args.next();
                    }
                }
            }
        }
        Criterion { mode, filter }
    }

    fn selected(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        if self.selected(id) {
            run_one(self.mode, 50, id, f);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.to_string(),
            sample_size: 50,
        }
    }
}

/// A group of benchmarks sharing a name prefix and a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        if self.criterion.selected(&full) {
            run_one(self.criterion.mode, self.sample_size, &full, f);
        }
        self
    }

    /// Runs a benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        if self.criterion.selected(&full) {
            run_one(self.criterion.mode, self.sample_size, &full, |b| {
                f(b, input)
            });
        }
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Prevents the optimizer from eliding a value (re-export of the `std` hint,
/// matching criterion's public `black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into one group function, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_body_once() {
        let mut calls = 0;
        let mut c = Criterion::default();
        c.bench_function("once", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn measure_mode_runs_warmup_plus_samples() {
        let mut calls = 0u64;
        run_one(Mode::Measure, 10, "counted", |b| b.iter(|| calls += 1));
        // clamp(1,5) warmup calls + 10 samples.
        assert_eq!(calls, 15);
    }

    #[test]
    fn filter_skips_unmatched() {
        let mut calls = 0;
        let mut c = Criterion {
            mode: Mode::Test,
            filter: Some("match_me".to_string()),
        };
        c.bench_function("other", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 0);
        c.bench_function("yes_match_me_too", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn value_taking_flags_do_not_become_filters() {
        let argv = |list: &[&str]| {
            list.iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .into_iter()
        };
        // `--sample-size 10`: the 10 must not be read as a filter.
        let c = Criterion::parse_args(argv(&["--bench", "--sample-size", "10"]));
        assert!(c.mode == Mode::Measure);
        assert_eq!(c.filter, None);
        // `--save-baseline main` likewise.
        let c = Criterion::parse_args(argv(&["--save-baseline", "main"]));
        assert_eq!(c.filter, None);
        // A real bare filter still lands.
        let c = Criterion::parse_args(argv(&["--bench", "axpy"]));
        assert_eq!(c.filter.as_deref(), Some("axpy"));
        // `--flag=value` form leaves following bare args as filters.
        let c = Criterion::parse_args(argv(&["--output-format=bencher", "axpy"]));
        assert_eq!(c.filter.as_deref(), Some("axpy"));
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(
            BenchmarkId::new("extract", "hubs_1pct").id,
            "extract/hubs_1pct"
        );
        assert_eq!(BenchmarkId::from_parameter(64).id, "64");
    }
}
