//! Offline, API-compatible subset of `arc-swap` 1.x.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the one primitive the query service needs: a cell holding an
//! `Arc<T>` that readers can copy out and writers can replace, each in a
//! critical section no longer than an `Arc` clone. The real crate does this
//! lock-free with hazard-pointer-style debt tracking; this subset uses a
//! `std::sync::RwLock<Arc<T>>` held only for the pointer copy, which gives
//! the same progress property that matters to the service — a publisher
//! never blocks behind an in-flight query, because queries clone the `Arc`
//! out of the cell and drop the lock before doing any work.
//!
//! Covered surface: [`ArcSwap::new`], [`ArcSwap::from_pointee`],
//! [`ArcSwap::load_full`], [`ArcSwap::store`], [`ArcSwap::swap`],
//! [`ArcSwap::into_inner`]. (`load()` with its `Guard` type is not
//! vendored; `load_full` is the only read path callers use.)

use std::fmt;
use std::sync::{Arc, RwLock};

/// An atomically swappable `Arc<T>` cell.
///
/// Readers call [`ArcSwap::load_full`] to pin the current value (an `Arc`
/// clone — the value itself is never copied); writers call
/// [`ArcSwap::store`] or [`ArcSwap::swap`] to publish a new one. Readers
/// holding a previously loaded `Arc` are undisturbed by a swap: they keep
/// the old value alive until they drop it.
pub struct ArcSwap<T> {
    inner: RwLock<Arc<T>>,
}

impl<T> ArcSwap<T> {
    /// Creates a cell holding `value`.
    pub fn new(value: Arc<T>) -> Self {
        ArcSwap {
            inner: RwLock::new(value),
        }
    }

    /// Creates a cell holding `Arc::new(value)`.
    pub fn from_pointee(value: T) -> Self {
        Self::new(Arc::new(value))
    }

    /// Returns a clone of the current `Arc` (the caller's pin on the
    /// current value). The internal lock is held only for the clone.
    pub fn load_full(&self) -> Arc<T> {
        Arc::clone(
            &self
                .inner
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// Publishes `new`, dropping the cell's reference to the old value.
    pub fn store(&self, new: Arc<T>) {
        self.swap(new);
    }

    /// Publishes `new` and returns the previously held `Arc`.
    pub fn swap(&self, new: Arc<T>) -> Arc<T> {
        let mut slot = self
            .inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        std::mem::replace(&mut *slot, new)
    }

    /// Consumes the cell and returns the held `Arc`.
    pub fn into_inner(self) -> Arc<T> {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for ArcSwap<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("ArcSwap").field(&self.load_full()).finish()
    }
}

impl<T: Default> Default for ArcSwap<T> {
    fn default() -> Self {
        Self::from_pointee(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_swap_round_trip() {
        let cell = ArcSwap::from_pointee(1u32);
        assert_eq!(*cell.load_full(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load_full(), 2);
        let old = cell.swap(Arc::new(3));
        assert_eq!(*old, 2);
        assert_eq!(*cell.into_inner(), 3);
    }

    #[test]
    fn readers_keep_pinned_value_across_swaps() {
        let cell = ArcSwap::from_pointee(vec![1, 2, 3]);
        let pinned = cell.load_full();
        cell.store(Arc::new(vec![9]));
        assert_eq!(*pinned, vec![1, 2, 3], "pinned Arc survives the swap");
        assert_eq!(*cell.load_full(), vec![9]);
    }

    #[test]
    fn concurrent_loads_see_some_published_value() {
        let cell = Arc::new(ArcSwap::from_pointee(0u64));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        let v = *cell.load_full();
                        assert!(v <= 1000, "value must be one a writer published");
                    }
                });
            }
            scope.spawn(|| {
                for i in 1..=1000u64 {
                    cell.store(Arc::new(i));
                }
            });
        });
        assert_eq!(*cell.load_full(), 1000);
    }

    #[test]
    fn swap_returns_each_value_exactly_once() {
        let cell = Arc::new(ArcSwap::from_pointee(0u64));
        let mut seen: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let cell = Arc::clone(&cell);
                    scope.spawn(move || {
                        (0..100u64)
                            .map(|i| *cell.swap(Arc::new(1 + t * 100 + i)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        seen.push(*cell.load_full());
        seen.sort_unstable();
        let expected: Vec<u64> = (0..=400).collect();
        assert_eq!(seen, expected, "every stored Arc is handed back once");
    }
}
