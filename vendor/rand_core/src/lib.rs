//! Offline, API-compatible subset of `rand_core` 0.6.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the minimal surface it actually uses: the [`RngCore`] and [`SeedableRng`]
//! traits. Semantics follow the real crate; the default `seed_from_u64`
//! expansion is SplitMix64 (deterministic, well mixed) rather than the
//! upstream PCG expansion, which is fine because no test in this workspace
//! depends on upstream's exact stream.

/// A random number generator core: the three primitive output methods every
/// generator must provide.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// One step of the SplitMix64 sequence: updates `state` and returns the next
/// output. Used to expand small seeds into full seed material.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array such as `[u8; 32]`).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from the full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 += 1;
            self.0
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = Counter(0);
        let mut buf = [0xAAu8; 11];
        rng.fill_bytes(&mut buf);
        assert_eq!(&buf[..8], &1u64.to_le_bytes());
        assert_eq!(&buf[8..], &2u64.to_le_bytes()[..3]);
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = 42;
        let mut b = 42;
        assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        assert_ne!(splitmix64(&mut a), {
            let mut c = 42;
            splitmix64(&mut c)
        });
    }
}
