//! Offline, API-compatible subset of `parking_lot` 0.12.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the one type it uses: [`Mutex`] with parking_lot's panic-free `lock()`
//! signature, implemented over `std::sync::Mutex` with poison recovery
//! (parking_lot mutexes don't poison; neither does this wrapper, it simply
//! hands back the data).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock whose `lock()` returns the guard directly (no
/// `Result`), like `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard returned by [`Mutex::lock`]; releases the lock on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn lock_is_exclusive_across_threads() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
