//! Scenario 1 from the paper's introduction: bibliographic search.
//!
//! "Consider a bibliographic network with interconnected nodes such as
//! papers, venues and authors. Given a paper, who are the best matching
//! experts to review it?" — the query is a paper node; the output ranks
//! author nodes.
//!
//! ```text
//! cargo run --release --example bibliographic_search
//! ```

use fastppv::core::query::StoppingCondition;
use fastppv::core::{build_index_parallel, select_hubs, Config, HubPolicy, QueryEngine};
use fastppv::graph::gen::{BibNetwork, DblpParams, NodeKind};

fn main() {
    let net = BibNetwork::generate(
        DblpParams {
            papers: 20_000,
            venues: 120,
            ..Default::default()
        },
        7,
    );
    let graph = &net.graph;
    println!(
        "bibliographic network: {} papers, {} authors, {} venues ({} edges)",
        net.count(NodeKind::Paper),
        net.count(NodeKind::Author),
        net.count(NodeKind::Venue),
        graph.num_edges()
    );

    let config = Config::default().with_epsilon(1e-6);
    let hubs = select_hubs(graph, HubPolicy::ExpectedUtility, graph.num_nodes() / 25, 0);
    let (index, stats) = build_index_parallel(graph, &hubs, &config, 4);
    println!("indexed {} hubs in {:.2?}\n", stats.hubs, stats.build_time);

    // Query: a paper. We want the most relevant *authors* (reviewers), so
    // rank the PPV restricted to author nodes, excluding the paper's own
    // authors (they cannot review their own paper).
    let paper = net.nodes_of_kind(NodeKind::Paper).nth(1234).unwrap();
    let own_authors: Vec<_> = graph
        .out_neighbors(paper)
        .iter()
        .copied()
        .filter(|&v| net.kinds[v as usize] == NodeKind::Author)
        .collect();
    println!(
        "query paper {paper} (year {}, {} authors)",
        net.years[paper as usize],
        own_authors.len()
    );

    let engine = QueryEngine::new(graph, &hubs, &index, config);
    let result = engine.query(paper, &StoppingCondition::iterations(2));
    let reviewers: Vec<_> = result
        .scores
        .entries()
        .iter()
        .filter(|&&(v, _)| net.kinds[v as usize] == NodeKind::Author && !own_authors.contains(&v))
        .collect();
    let mut ranked = reviewers.clone();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!(
        "\nbest-matching reviewers ({} candidate authors scored, φ ≤ {:.4}, {:.2?}):",
        reviewers.len(),
        result.l1_error,
        result.elapsed
    );
    for (rank, &&(author, score)) in ranked.iter().take(10).enumerate() {
        let papers = graph.out_degree(author);
        println!(
            "  {:>2}. author {author:<6} relevance {score:.5} ({papers} papers)",
            rank + 1
        );
    }
}
