//! Dynamic graphs (the paper's future-work §7): maintain the index under
//! edge insertions by recomputing only the affected prime PPVs.
//!
//! ```text
//! cargo run --release --example dynamic_updates
//! ```

use fastppv::core::dynamic::refresh_index;
use fastppv::core::query::StoppingCondition;
use fastppv::core::{build_index_parallel, select_hubs, Config, HubPolicy, QueryEngine};
use fastppv::graph::gen::{SocialNetwork, SocialParams};
use fastppv::graph::{Graph, GraphBuilder};

fn main() {
    let net = SocialNetwork::generate(
        SocialParams {
            nodes: 15_000,
            ..Default::default()
        },
        5,
    );
    let graph = net.graph;
    let config = Config::default().with_epsilon(1e-6);
    let hubs = select_hubs(
        &graph,
        HubPolicy::ExpectedUtility,
        graph.num_nodes() / 10,
        0,
    );
    let (index, stats) = build_index_parallel(&graph, &hubs, &config, 4);
    println!(
        "initial index: {} hubs in {:.2?}",
        stats.hubs, stats.build_time
    );

    // A new friendship appears: 100 -> 9000.
    let (u, v) = (100u32, 9000u32);
    let new_graph = with_edge(&graph, u, v);
    let started = std::time::Instant::now();
    let (new_index, refresh) = refresh_index(&index, &graph, &new_graph, &hubs, &[u], &config);
    println!(
        "edge ({u} -> {v}) inserted: recomputed {} of {} hub PPVs in {:.2?} \
         (reused {})",
        refresh.recomputed,
        hubs.len(),
        started.elapsed(),
        refresh.reused
    );

    // Queries against the refreshed index reflect the new edge immediately.
    let engine = QueryEngine::new(&new_graph, &hubs, &new_index, config);
    let result = engine.query(u, &StoppingCondition::iterations(2));
    let rank_of_v = result
        .scores
        .top_k(result.scores.len())
        .iter()
        .position(|&(node, _)| node == v);
    println!(
        "after refresh, node {v} ranks #{} for query {u} (score {:.5})",
        rank_of_v.map(|r| r + 1).unwrap_or(0),
        result.scores.get(v)
    );
}

/// `graph` plus one edge (dropping `u`'s dangling-fix self-loop if any).
fn with_edge(graph: &Graph, u: u32, v: u32) -> Graph {
    let mut b = GraphBuilder::new(graph.num_nodes()).with_edge_capacity(graph.num_edges() + 1);
    for (s, t) in graph.edges() {
        if s == t && s == u {
            continue;
        }
        b.add_edge(s, t);
    }
    b.add_edge(u, v);
    b.build()
}
