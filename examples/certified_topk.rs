//! Certified top-k: iterate only as far as needed to *prove* the top-k set
//! is exact.
//!
//! FastPPV's estimates are entry-wise lower bounds whose total missing mass
//! φ is known (Eq. 6), so the true score of any node lies within `[r̂(p),
//! r̂(p) + φ]` — once the k-th estimate leads the (k+1)-th by more than φ,
//! no other node can belong to the top-k. This turns the paper's
//! accuracy-awareness into rank certification (in the spirit of the top-K
//! PPR literature it cites).
//!
//! ```text
//! cargo run --release --example certified_topk
//! ```

use fastppv::core::{build_index_parallel, select_hubs, Config, HubPolicy, QueryEngine};
use fastppv::graph::gen::{BibNetwork, DblpParams};

fn main() {
    let net = BibNetwork::generate(
        DblpParams {
            papers: 15_000,
            ..Default::default()
        },
        21,
    );
    let graph = &net.graph;
    // δ = 0 / clip = 0 so φ keeps shrinking until certification triggers.
    let config = Config::default()
        .with_epsilon(1e-7)
        .with_delta(0.0)
        .with_clip(0.0);
    let hubs = select_hubs(graph, HubPolicy::ExpectedUtility, graph.num_nodes() / 25, 0);
    let (index, _) = build_index_parallel(graph, &hubs, &config, 4);
    let engine = QueryEngine::new(graph, &hubs, &index, config);

    for (k, q) in [(3usize, 900u32), (5, 4321), (10, 17_000)] {
        let started = std::time::Instant::now();
        let res = engine.query_top_k(q, k, 25);
        println!(
            "query {q:>6}, k={k:<2}: {} after {} iterations \
             (φ = {:.2e}, {:.2?})",
            if res.certified {
                "CERTIFIED exact set"
            } else {
                "best effort"
            },
            res.iterations,
            res.l1_error,
            started.elapsed()
        );
        for (rank, (node, score)) in res.nodes.iter().enumerate() {
            println!("    {:>2}. node {node:<7} score ≥ {score:.5}", rank + 1);
        }
    }
}
