//! Scenario 2 from the paper's introduction: friends recommendation.
//!
//! "Consider a social network with users as nodes... Given a user in the
//! network, how can we recommend some potential friends to her?" — rank all
//! users by PPV w.r.t. the query user and recommend the top non-friends.
//!
//! ```text
//! cargo run --release --example friend_recommendation
//! ```

use fastppv::core::query::StoppingCondition;
use fastppv::core::{build_index_parallel, select_hubs, Config, HubPolicy, QueryEngine};
use fastppv::graph::gen::{SocialNetwork, SocialParams};

fn main() {
    let net = SocialNetwork::generate(
        SocialParams {
            nodes: 30_000,
            ..Default::default()
        },
        11,
    );
    let graph = &net.graph;
    println!(
        "social network: {} users, {} friendship edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    let config = Config::default().with_epsilon(1e-6);
    let hubs = select_hubs(graph, HubPolicy::ExpectedUtility, graph.num_nodes() / 10, 0);
    let (index, stats) = build_index_parallel(graph, &hubs, &config, 4);
    println!("indexed {} hubs in {:.2?}\n", stats.hubs, stats.build_time);

    let engine = QueryEngine::new(graph, &hubs, &index, config);
    let user = 2718;
    let friends = graph.out_neighbors(user);
    println!("user {user} has {} declared friends", friends.len());

    let result = engine.query(user, &StoppingCondition::iterations(2));
    // Recommend the highest-PPV users that are not already friends (and not
    // the user herself).
    let recommendations: Vec<(u32, f64)> = result
        .scores
        .top_k(200)
        .into_iter()
        .filter(|&(v, _)| v != user && !friends.contains(&v))
        .take(10)
        .collect();
    println!(
        "\nrecommended friends (φ ≤ {:.4}, {:.2?}):",
        result.l1_error, result.elapsed
    );
    for (rank, (candidate, score)) in recommendations.iter().enumerate() {
        // Mutual friends explain the recommendation.
        let mutual = graph
            .out_neighbors(*candidate)
            .iter()
            .filter(|&&w| friends.contains(&w))
            .count();
        println!(
            "  {:>2}. user {candidate:<6} affinity {score:.5} ({mutual} mutual friends)",
            rank + 1
        );
    }
}
