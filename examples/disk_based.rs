//! Disk-based processing (paper §5.3): query a graph that does not fit in
//! memory, with a one-cluster residency budget and fault counting.
//!
//! ```text
//! cargo run --release --example disk_based
//! ```

use fastppv::cluster::partition::{cluster_graph, ClusteringOptions};
use fastppv::cluster::query::{disk_query, DiskQueryWorkspace};
use fastppv::cluster::store::{write_clustered_graph, DiskGraph};
use fastppv::core::index::DiskIndex;
use fastppv::core::query::StoppingCondition;
use fastppv::core::{build_index_parallel, select_hubs, Config, HubPolicy};
use fastppv::graph::gen::{SocialNetwork, SocialParams};

fn main() {
    let net = SocialNetwork::generate(
        SocialParams {
            nodes: 20_000,
            ..Default::default()
        },
        9,
    );
    let graph = &net.graph;
    let config = Config::default().with_epsilon(1e-6);
    let hubs = select_hubs(graph, HubPolicy::ExpectedUtility, graph.num_nodes() / 10, 0);
    let (index, _) = build_index_parallel(graph, &hubs, &config, 4);

    // Offline: segment the graph into clusters and put graph + PPV index on
    // disk.
    let dir = std::env::temp_dir();
    let clg = dir.join("fastppv-example.clg");
    let idx = dir.join("fastppv-example.idx");
    let n_clusters = 25;
    let clustering = cluster_graph(graph, n_clusters, ClusteringOptions::default());
    write_clustered_graph(graph, &clustering, &clg).expect("write clusters");
    index.write_to_file(&idx).expect("write index");

    // Online: one resident cluster, PPV index read from disk with a small
    // cache, fault cap = number of clusters (the paper's setting).
    let mut disk = DiskGraph::open(&clg, 1).expect("open clustered graph");
    let disk_index = DiskIndex::open(&idx, 64).expect("open index");
    println!(
        "disk-resident graph: {} clusters, minimum working set {:.1}% of \
         the graph",
        disk.num_clusters(),
        100.0 * disk.largest_cluster_bytes() as f64 / disk.total_cluster_bytes() as f64
    );
    let mut ws = DiskQueryWorkspace::new(graph.num_nodes());
    for q in [15u32, 7777, 19_000] {
        let res = disk_query(
            &mut disk,
            &hubs,
            &disk_index,
            &config,
            q,
            &StoppingCondition::iterations(2),
            Some(n_clusters as u64),
            &mut ws,
        );
        let top = res.result.top_k(3);
        println!(
            "query {q:>6}: {} cluster faults, {:.2?}, φ ≤ {:.4}, top-3 {:?}",
            res.faults,
            res.elapsed,
            res.result.l1_error,
            top.iter().map(|&(v, _)| v).collect::<Vec<_>>()
        );
    }
    std::fs::remove_file(&clg).ok();
    std::fs::remove_file(&idx).ok();
}
