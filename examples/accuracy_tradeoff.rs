//! The paper's headline feature: incremental, accuracy-aware queries.
//!
//! Walks one query through the incremental session API, printing after
//! every iteration the accuracy-aware L1 error φ (Eq. 6) next to the
//! Theorem 2 bound `(1-α)^{k+2}`, then shows the other two stopping modes
//! (accuracy target and time budget).
//!
//! ```text
//! cargo run --release --example accuracy_tradeoff
//! ```

use std::time::Duration;

use fastppv::core::error::l1_error_bound;
use fastppv::core::query::StoppingCondition;
use fastppv::core::{build_index_parallel, select_hubs, Config, HubPolicy, QueryEngine};
use fastppv::graph::gen::{SocialNetwork, SocialParams};

fn main() {
    let net = SocialNetwork::generate(
        SocialParams {
            nodes: 20_000,
            ..Default::default()
        },
        3,
    );
    let graph = &net.graph;
    // δ = 0 and clip = 0: no truncation, so φ decays toward 0 and the
    // Theorem 2 bound applies exactly.
    let config = Config::default()
        .with_epsilon(1e-8)
        .with_delta(0.0)
        .with_clip(0.0);
    let hubs = select_hubs(graph, HubPolicy::ExpectedUtility, graph.num_nodes() / 10, 0);
    let (index, _) = build_index_parallel(graph, &hubs, &config, 4);
    let engine = QueryEngine::new(graph, &hubs, &index, config);

    println!("incremental session for query 777:");
    println!(
        "{:>4}  {:>12}  {:>14}  {:>10}  {:>8}",
        "k", "φ(k) (Eq. 6)", "Thm 2 bound", "increment", "hubs"
    );
    let mut session = engine.session(777);
    loop {
        let stats = *session.iteration_stats().last().unwrap();
        println!(
            "{:>4}  {:>12.6}  {:>14.6}  {:>10.6}  {:>8}",
            stats.iteration,
            stats.l1_error_after,
            l1_error_bound(config.alpha, stats.iteration),
            stats.increment_mass,
            stats.hubs_expanded
        );
        if session.l1_error() < 1e-2 || session.iterations_done() >= 10 || !session.step() {
            break;
        }
    }
    let result = session.into_result();
    println!(
        "reached φ = {:.2e} after {} iterations ({:.2?})\n",
        result.l1_error, result.iterations, result.elapsed
    );

    // Accuracy-target mode: "give me 1% L1 error, take the time you need".
    let by_accuracy = engine.query(777, &StoppingCondition::l1_error(0.01));
    println!(
        "accuracy target 0.01 -> {} iterations, φ = {:.4}, {:.2?}",
        by_accuracy.iterations, by_accuracy.l1_error, by_accuracy.elapsed
    );

    // Time-budget mode: "give me the best answer you can in 200µs".
    let by_time = engine.query(
        777,
        &StoppingCondition::time_limit(Duration::from_micros(200)),
    );
    println!(
        "time budget 200µs  -> {} iterations, φ = {:.4}, {:.2?}",
        by_time.iterations, by_time.l1_error, by_time.elapsed
    );
}
