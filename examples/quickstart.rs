//! Quickstart: index a graph offline, answer PPV queries online.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fastppv::core::query::StoppingCondition;
use fastppv::core::{build_index_parallel, select_hubs, Config, HubPolicy, QueryEngine};
use fastppv::graph::gen::barabasi_albert;

fn main() {
    // 1. A graph. Any `fastppv::graph::Graph` works: build one with
    //    `GraphBuilder`, read an edge list with `graph::io`, or generate one.
    let graph = barabasi_albert(10_000, 4, 42);
    println!(
        "graph: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    // 2. Offline: select hubs by expected utility (paper Eq. 7) and
    //    precompute their prime PPVs. (ε bounds how deep hub-free
    //    neighborhoods are explored; δ gates which border hubs are expanded
    //    online — see the exp_ablation experiment for their trade-offs.)
    let config = Config::default().with_epsilon(1e-5).with_delta(5e-4);
    let hubs = select_hubs(&graph, HubPolicy::ExpectedUtility, 500, 0);
    let (index, stats) = build_index_parallel(&graph, &hubs, &config, 4);
    println!(
        "offline: {} hubs indexed in {:.2?} ({} entries, {:.1} KB)",
        stats.hubs,
        stats.build_time,
        stats.total_entries,
        stats.storage_bytes as f64 / 1024.0
    );

    // 3. Online: incremental, accuracy-aware queries.
    let engine = QueryEngine::new(&graph, &hubs, &index, config);
    let query = 4321;
    let result = engine.query(query, &StoppingCondition::iterations(2));
    println!(
        "\nquery {query}: {} iterations, guaranteed L1 error ≤ {:.4}, {:.2?}",
        result.iterations, result.l1_error, result.elapsed
    );
    println!("top-10 personalized ranking:");
    for (rank, (node, score)) in result.top_k(10).into_iter().enumerate() {
        println!("  {:>2}. node {node:<6} score {score:.5}", rank + 1);
    }

    // 4. Or run until a target accuracy is met — the error is known at
    //    query time without the exact PPV (paper Eq. 6). Note that the
    //    offline truncation knobs (δ, clip) trade accuracy for index size:
    //    they put a floor under the reachable φ. For guaranteed-accuracy
    //    serving, index with truncation off (ε alone keeps the offline
    //    phase tractable) and let the stopping condition pick the depth.
    let accurate = Config::default()
        .with_epsilon(1e-7)
        .with_delta(0.0)
        .with_clip(0.0);
    let (index, _) = build_index_parallel(&graph, &hubs, &accurate, 4);
    let engine = QueryEngine::new(&graph, &hubs, &index, accurate);
    let precise = engine.query(query, &StoppingCondition::l1_error(0.01));
    println!(
        "\nsame query to φ ≤ 0.01: {} iterations, φ = {:.5}",
        precise.iterations, precise.l1_error
    );
}
