//! Criterion micro-bench: prime-subgraph extraction and prime-PPV solve —
//! the dominant cost of both the offline phase and non-hub queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use fastppv_bench::datasets;
use fastppv_core::hubs::{select_hubs, HubPolicy};
use fastppv_core::prime::PrimeComputer;
use fastppv_core::Config;

fn bench_extract_and_solve(c: &mut Criterion) {
    let dataset = datasets::dblp(0.2, 42);
    let graph = &dataset.graph;
    let n = graph.num_nodes();
    let mut group = c.benchmark_group("prime_ppv");
    group.sample_size(30);
    for (label, divisor) in [("hubs_1pct", 100usize), ("hubs_4pct", 25)] {
        let hubs = select_hubs(graph, HubPolicy::ExpectedUtility, n / divisor, 0);
        let config = Config::default().with_epsilon(1e-6);
        // A non-hub source with an average-sized neighborhood.
        let source = (0..n as u32).find(|&v| !hubs.is_hub(v)).expect("non-hub");
        group.bench_with_input(BenchmarkId::new("extract", label), &(), |b, _| {
            let mut pc = PrimeComputer::new(n);
            b.iter(|| std::hint::black_box(pc.extract(graph, &hubs, source, &config)));
        });
        group.bench_with_input(BenchmarkId::new("extract_and_solve", label), &(), |b, _| {
            let mut pc = PrimeComputer::new(n);
            b.iter(|| std::hint::black_box(pc.prime_ppv(graph, &hubs, source, &config, 1e-4)));
        });
    }
    group.finish();
}

/// Solve in isolation (extraction hoisted out): exercises the reusable
/// solve scratch — `absorbed`/`in_queue`/`queue` now live inside the
/// computer, so repeated solves allocate nothing proportional to the
/// subgraph once warm.
fn bench_solve_reuse(c: &mut Criterion) {
    let dataset = datasets::dblp(0.2, 42);
    let graph = &dataset.graph;
    let n = graph.num_nodes();
    let hubs = select_hubs(graph, HubPolicy::ExpectedUtility, n / 25, 0);
    let config = Config::default().with_epsilon(1e-6);
    let source = (0..n as u32).find(|&v| !hubs.is_hub(v)).expect("non-hub");
    let mut group = c.benchmark_group("prime_ppv_solve");
    group.sample_size(30);
    group.bench_with_input(
        BenchmarkId::from_parameter("reused_scratch"),
        &(),
        |b, _| {
            let mut pc = PrimeComputer::new(n);
            let sub = pc.extract(graph, &hubs, source, &config);
            b.iter(|| std::hint::black_box(pc.solve(&sub, &config, 1e-4)));
        },
    );
    group.finish();
}

/// The fused one-shot kernel against the materialized two-step pipeline
/// and the dynamic-dispatch `AdjacencyAccess` path: what the online cold
/// non-hub query saves by staying inside the reused arena, and what the
/// CSR fast path saves over trait-object adjacency.
fn bench_kernel_paths(c: &mut Criterion) {
    let dataset = datasets::dblp(0.2, 42);
    let graph = &dataset.graph;
    let n = graph.num_nodes();
    let hubs = select_hubs(graph, HubPolicy::ExpectedUtility, n / 25, 0);
    let config = Config::default().with_epsilon(1e-6);
    let source = (0..n as u32).find(|&v| !hubs.is_hub(v)).expect("non-hub");
    let mut group = c.benchmark_group("prime_ppv_kernel");
    group.sample_size(30);
    group.bench_with_input(BenchmarkId::from_parameter("fused_into"), &(), |b, _| {
        let mut pc = PrimeComputer::new(n);
        b.iter(|| {
            let (entries, size) = pc.prime_ppv_into(graph, &hubs, source, &config, 1e-4);
            std::hint::black_box((entries.len(), size));
        });
    });
    group.bench_with_input(
        BenchmarkId::from_parameter("extract_then_solve"),
        &(),
        |b, _| {
            let mut pc = PrimeComputer::new(n);
            b.iter(|| {
                let sub = pc.extract(graph, &hubs, source, &config);
                std::hint::black_box(pc.solve(&sub, &config, 1e-4));
            });
        },
    );
    group.bench_with_input(BenchmarkId::from_parameter("dyn_adjacency"), &(), |b, _| {
        let mut pc = PrimeComputer::new(n);
        b.iter(|| std::hint::black_box(pc.prime_ppv_from(graph, &hubs, source, &config, 1e-4)));
    });
    group.finish();
}

fn bench_epsilon(c: &mut Criterion) {
    let dataset = datasets::dblp(0.2, 42);
    let graph = &dataset.graph;
    let n = graph.num_nodes();
    let hubs = select_hubs(graph, HubPolicy::ExpectedUtility, n / 25, 0);
    let source = (0..n as u32).find(|&v| !hubs.is_hub(v)).expect("non-hub");
    let mut group = c.benchmark_group("prime_ppv_epsilon");
    group.sample_size(30);
    for eps in [1e-5f64, 1e-6, 1e-7, 1e-8] {
        let config = Config::default().with_epsilon(eps);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{eps:.0e}")),
            &(),
            |b, _| {
                let mut pc = PrimeComputer::new(n);
                b.iter(|| std::hint::black_box(pc.prime_ppv(graph, &hubs, source, &config, 1e-4)));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_extract_and_solve,
    bench_solve_reuse,
    bench_kernel_paths,
    bench_epsilon
);
criterion_main!(benches);
