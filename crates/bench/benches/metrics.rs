//! Criterion micro-bench: accuracy-metric computation (per-query cost of
//! the evaluation harness itself) and the sparse-vector kernels under the
//! increment loop.

use criterion::{criterion_group, criterion_main, Criterion};

use fastppv_graph::{ScoreScratch, SparseVector};
use fastppv_metrics::AccuracyReport;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_accuracy_report(c: &mut Criterion) {
    let n = 100_000;
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut exact = vec![0.0f64; n];
    for x in exact.iter_mut() {
        *x = rng.gen::<f64>().powi(4);
    }
    let total: f64 = exact.iter().sum();
    exact.iter_mut().for_each(|x| *x /= total);
    let approx = SparseVector::from_sorted(
        (0..n)
            .step_by(7)
            .map(|i| (i as u32, exact[i] * 0.98))
            .collect(),
    );
    c.bench_function("accuracy_report_100k", |b| {
        b.iter(|| std::hint::black_box(AccuracyReport::compute(&exact, &approx, 10)));
    });
}

fn bench_sparse_kernels(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let a: SparseVector = (0..5_000)
        .map(|_| (rng.gen_range(0..200_000u32), rng.gen::<f64>()))
        .collect();
    let b_vec: SparseVector = (0..5_000)
        .map(|_| (rng.gen_range(0..200_000u32), rng.gen::<f64>()))
        .collect();
    c.bench_function("sparse_axpy_5k", |b| {
        b.iter(|| {
            let mut acc = a.clone();
            acc.axpy(0.5, &b_vec);
            std::hint::black_box(acc)
        });
    });
    c.bench_function("scratch_accumulate_drain_5k", |b| {
        let mut scratch = ScoreScratch::new(200_000);
        b.iter(|| {
            for &(v, s) in a.entries() {
                scratch.add(v, s);
            }
            for &(v, s) in b_vec.entries() {
                scratch.add(v, 0.5 * s);
            }
            std::hint::black_box(scratch.drain_sparse())
        });
    });
}

criterion_group!(benches, bench_accuracy_report, bench_sparse_kernels);
criterion_main!(benches);
