//! Criterion micro-bench: the baselines' online primitives — BCA push
//! (HubRankP's engine) and Monte Carlo walk sampling — against a FastPPV
//! query at the same operating point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use fastppv_baselines::bca::{bca_push_with_hubs, BcaOptions};
use fastppv_baselines::hubrank::{build_hubrank_index, select_hubs_by_benefit, HubRankOptions};
use fastppv_baselines::montecarlo::{build_fingerprint_index, montecarlo_query, MonteCarloOptions};
use fastppv_bench::datasets;
use fastppv_bench::workload::sample_queries;
use fastppv_core::hubs::{select_hubs, HubPolicy};
use fastppv_core::offline::build_index_parallel;
use fastppv_core::query::{QueryEngine, StoppingCondition};
use fastppv_core::Config;
use fastppv_graph::{pagerank, PageRankOptions, ScoreScratch};

fn bench_methods(c: &mut Criterion) {
    let dataset = datasets::dblp(0.1, 42);
    let graph = &dataset.graph;
    let n = graph.num_nodes();
    let pr = pagerank(graph, PageRankOptions::default());
    let queries = sample_queries(graph, 16, 7);
    let hub_count = n / 25;
    let mut group = c.benchmark_group("baseline_online");
    group.sample_size(20);

    // FastPPV at η = 2.
    let config = Config::default().with_epsilon(1e-6);
    let hubs = select_hubs(graph, HubPolicy::ExpectedUtility, hub_count, 0);
    let (index, _) = build_index_parallel(graph, &hubs, &config, 4);
    group.bench_function("fastppv_eta2", |b| {
        let engine = QueryEngine::new(graph, &hubs, &index, config);
        let stop = StoppingCondition::iterations(2);
        let mut ws = engine.workspace();
        let mut i = 0;
        b.iter(|| {
            let q = queries[i % queries.len()];
            i += 1;
            std::hint::black_box(engine.query_with(&mut ws, q, &stop))
        });
    });

    // HubRankP push at two accuracy targets.
    let benefit_hubs = select_hubs_by_benefit(hub_count, &pr);
    let hr_index = build_hubrank_index(
        graph,
        &benefit_hubs,
        HubRankOptions {
            offline_residual: 2e-3,
            ..Default::default()
        },
    );
    for push in [0.11f64, 0.02] {
        group.bench_with_input(
            BenchmarkId::new("hubrankp_push", format!("{push}")),
            &push,
            |b, &push| {
                let opts = BcaOptions {
                    residual_target: push,
                    ..Default::default()
                };
                let mut i = 0;
                b.iter(|| {
                    let q = queries[i % queries.len()];
                    i += 1;
                    std::hint::black_box(bca_push_with_hubs(graph, q, opts, &hr_index))
                });
            },
        );
    }

    // MonteCarlo at two sample budgets.
    let mc_opts = MonteCarloOptions {
        fingerprints_per_hub: 2_000,
        ..Default::default()
    };
    let mc_index = build_fingerprint_index(graph, &benefit_hubs, mc_opts);
    for samples in [2_000usize, 12_000] {
        group.bench_with_input(
            BenchmarkId::new("montecarlo_n", samples),
            &samples,
            |b, &samples| {
                let mut scratch = ScoreScratch::new(n);
                let mut i = 0;
                b.iter(|| {
                    let q = queries[i % queries.len()];
                    i += 1;
                    std::hint::black_box(montecarlo_query(
                        graph,
                        Some(&mc_index),
                        q,
                        samples,
                        mc_opts,
                        &mut scratch,
                    ))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
