//! Criterion micro-bench: offline index construction (Algorithm 1), serial
//! vs parallel, and across hub counts (the Fig. 11 trend: more hubs build
//! *faster*, because prime subgraphs shrink superlinearly).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use fastppv_bench::datasets;
use fastppv_core::hubs::{select_hubs, HubPolicy};
use fastppv_core::offline::build_index_parallel;
use fastppv_core::Config;

fn bench_build(c: &mut Criterion) {
    let dataset = datasets::dblp(0.1, 42);
    let graph = &dataset.graph;
    let n = graph.num_nodes();
    let config = Config::default().with_epsilon(1e-6);
    let mut group = c.benchmark_group("offline_build");
    group.sample_size(10);
    for divisor in [50usize, 25, 12] {
        let hubs = select_hubs(graph, HubPolicy::ExpectedUtility, n / divisor, 0);
        group.bench_with_input(BenchmarkId::new("serial", hubs.len()), &(), |b, _| {
            b.iter(|| std::hint::black_box(build_index_parallel(graph, &hubs, &config, 1)));
        });
        group.bench_with_input(BenchmarkId::new("threads4", hubs.len()), &(), |b, _| {
            b.iter(|| std::hint::black_box(build_index_parallel(graph, &hubs, &config, 4)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
