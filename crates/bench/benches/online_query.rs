//! Criterion micro-bench: FastPPV online query latency.
//!
//! Sweeps the two online knobs the paper studies — iterations η (Fig. 12)
//! and hub count |H| (Fig. 10) — on a fixed DBLP-like graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use fastppv_bench::datasets;
use fastppv_bench::workload::sample_queries;
use fastppv_core::hubs::{select_hubs, HubPolicy};
use fastppv_core::offline::build_index_parallel;
use fastppv_core::query::{QueryEngine, StoppingCondition};
use fastppv_core::Config;

fn bench_eta(c: &mut Criterion) {
    let dataset = datasets::dblp(0.2, 42);
    let graph = &dataset.graph;
    let config = Config::default().with_epsilon(1e-6);
    let hubs = select_hubs(graph, HubPolicy::ExpectedUtility, graph.num_nodes() / 25, 0);
    let (index, _) = build_index_parallel(graph, &hubs, &config, 4);
    let queries = sample_queries(graph, 16, 7);
    let mut group = c.benchmark_group("online_query_eta");
    group.sample_size(20);
    for eta in [0usize, 1, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(eta), &eta, |b, &eta| {
            let engine = QueryEngine::new(graph, &hubs, &index, config);
            let stop = StoppingCondition::iterations(eta);
            let mut ws = engine.workspace();
            let mut i = 0;
            b.iter(|| {
                let q = queries[i % queries.len()];
                i += 1;
                std::hint::black_box(engine.query_with(&mut ws, q, &stop))
            });
        });
    }
    group.finish();
}

fn bench_hub_count(c: &mut Criterion) {
    let dataset = datasets::dblp(0.2, 42);
    let graph = &dataset.graph;
    let config = Config::default().with_epsilon(1e-6);
    let queries = sample_queries(graph, 16, 7);
    let mut group = c.benchmark_group("online_query_hub_count");
    group.sample_size(20);
    for divisor in [100usize, 50, 25, 12] {
        let hubs = select_hubs(
            graph,
            HubPolicy::ExpectedUtility,
            graph.num_nodes() / divisor,
            0,
        );
        let (index, _) = build_index_parallel(graph, &hubs, &config, 4);
        group.bench_with_input(BenchmarkId::from_parameter(hubs.len()), &(), |b, _| {
            let engine = QueryEngine::new(graph, &hubs, &index, config);
            let stop = StoppingCondition::iterations(2);
            let mut ws = engine.workspace();
            let mut i = 0;
            b.iter(|| {
                let q = queries[i % queries.len()];
                i += 1;
                std::hint::black_box(engine.query_with(&mut ws, q, &stop))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eta, bench_hub_count);
criterion_main!(benches);
