//! Criterion micro-bench: FastPPV online query latency.
//!
//! Sweeps the two online knobs the paper studies — iterations η (Fig. 12)
//! and hub count |H| (Fig. 10) — on a fixed DBLP-like graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use fastppv_bench::datasets;
use fastppv_bench::workload::sample_queries;
use fastppv_core::hubs::{select_hubs, HubPolicy};
use fastppv_core::index::FlatIndex;
use fastppv_core::offline::build_index_parallel;
use fastppv_core::query::{QueryEngine, StoppingCondition};
use fastppv_core::Config;
use fastppv_graph::gen::barabasi_albert;

fn bench_eta(c: &mut Criterion) {
    let dataset = datasets::dblp(0.2, 42);
    let graph = &dataset.graph;
    let config = Config::default().with_epsilon(1e-6);
    let hubs = select_hubs(graph, HubPolicy::ExpectedUtility, graph.num_nodes() / 25, 0);
    let (index, _) = build_index_parallel(graph, &hubs, &config, 4);
    let queries = sample_queries(graph, 16, 7);
    let mut group = c.benchmark_group("online_query_eta");
    group.sample_size(20);
    for eta in [0usize, 1, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(eta), &eta, |b, &eta| {
            let engine = QueryEngine::new(graph, &hubs, &index, config);
            let stop = StoppingCondition::iterations(eta);
            let mut ws = engine.workspace();
            let mut i = 0;
            b.iter(|| {
                let q = queries[i % queries.len()];
                i += 1;
                std::hint::black_box(engine.query_with(&mut ws, q, &stop))
            });
        });
    }
    group.finish();
}

fn bench_hub_count(c: &mut Criterion) {
    let dataset = datasets::dblp(0.2, 42);
    let graph = &dataset.graph;
    let config = Config::default().with_epsilon(1e-6);
    let queries = sample_queries(graph, 16, 7);
    let mut group = c.benchmark_group("online_query_hub_count");
    group.sample_size(20);
    for divisor in [100usize, 50, 25, 12] {
        let hubs = select_hubs(
            graph,
            HubPolicy::ExpectedUtility,
            graph.num_nodes() / divisor,
            0,
        );
        let (index, _) = build_index_parallel(graph, &hubs, &config, 4);
        group.bench_with_input(BenchmarkId::from_parameter(hubs.len()), &(), |b, _| {
            let engine = QueryEngine::new(graph, &hubs, &index, config);
            let stop = StoppingCondition::iterations(2);
            let mut ws = engine.workspace();
            let mut i = 0;
            b.iter(|| {
                let q = queries[i % queries.len()];
                i += 1;
                std::hint::black_box(engine.query_with(&mut ws, q, &stop))
            });
        });
    }
    group.finish();
}

/// The acceptance comparison: the Arc/AoS [`fastppv_core::MemoryIndex`]
/// versus the zero-copy SoA [`FlatIndex`] serving the same BA-5k workload.
///
/// Queries are *hub nodes* and `δ = 0`: iteration 0 is a store read and
/// every increment scans stored PPVs, so the measurement isolates the
/// index hot path (non-hub queries spend most of their time computing the
/// query's own prime PPV, which is store-independent — see
/// `online_query_eta` for that mix).
fn bench_store_layout(c: &mut Criterion) {
    let graph = barabasi_albert(5000, 4, 42);
    let config = Config::default().with_epsilon(1e-6).with_delta(0.0);
    let hubs = select_hubs(
        &graph,
        HubPolicy::ExpectedUtility,
        graph.num_nodes() / 25,
        0,
    );
    let (memory, _) = build_index_parallel(&graph, &hubs, &config, 4);
    let flat = FlatIndex::from_memory(&memory, &hubs);
    let queries: Vec<u32> = hubs.ids().iter().copied().step_by(6).take(32).collect();
    let stop = StoppingCondition::iterations(3);
    let mut group = c.benchmark_group("online_query_store_layout");
    group.sample_size(50);
    group.bench_with_input(BenchmarkId::from_parameter("arc_aos"), &(), |b, _| {
        let engine = QueryEngine::new(&graph, &hubs, &memory, config);
        let mut ws = engine.workspace();
        let mut i = 0;
        b.iter(|| {
            let q = queries[i % queries.len()];
            i += 1;
            std::hint::black_box(engine.query_with(&mut ws, q, &stop))
        });
    });
    group.bench_with_input(BenchmarkId::from_parameter("flat_soa"), &(), |b, _| {
        let engine = QueryEngine::new(&graph, &hubs, &flat, config);
        let mut ws = engine.workspace();
        let mut i = 0;
        b.iter(|| {
            let q = queries[i % queries.len()];
            i += 1;
            std::hint::black_box(engine.query_with(&mut ws, q, &stop))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_eta, bench_hub_count, bench_store_layout);
criterion_main!(benches);
