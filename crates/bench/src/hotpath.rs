//! Shared pieces of the hot-path experiment (`exp_hotpath`): the
//! deterministic query-result digest and the `BENCH_hotpath.json` report.
//!
//! The digest pins down everything about a benchmark run that *should* be
//! reproducible — the bit patterns of every query result — so the repo's
//! tests can assert that two independent builds of the same deployment
//! serve byte-identical answers, while the JSON report carries the
//! timing-dependent figures (QPS, percentiles) those tests must ignore.

use std::time::Duration;

use fastppv_core::query::StoppingCondition;
use fastppv_core::{Config, HubSet, PpvStore, QueryEngine};
use fastppv_graph::{Graph, NodeId};

use crate::driver::ThroughputReport;

/// FNV-1a over a byte stream — stable, dependency-free.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv1a {
    /// Folds `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }

    /// The digest value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Digest of the full result stream of `queries` at iteration budget
/// `eta`: every `(query, node, score-bits, φ-bits)` is folded in. Two runs
/// over equal deployments must produce equal digests — this is the
/// determinism half of the `BENCH` contract (timings are excluded).
pub fn results_digest<S: PpvStore>(
    graph: &Graph,
    hubs: &HubSet,
    store: &S,
    config: Config,
    queries: &[NodeId],
    eta: usize,
) -> u64 {
    let engine = QueryEngine::new(graph, hubs, store, config);
    let mut ws = engine.workspace();
    let stop = StoppingCondition::iterations(eta);
    let mut h = Fnv1a::default();
    for &q in queries {
        let result = engine.query_with(&mut ws, q, &stop);
        h.update(&q.to_le_bytes());
        h.update(&result.l1_error.to_bits().to_le_bytes());
        for &(v, s) in result.scores.entries() {
            h.update(&v.to_le_bytes());
            h.update(&s.to_bits().to_le_bytes());
        }
    }
    h.finish()
}

/// One measured closed-loop run in the report.
pub struct HotpathRun {
    /// Store layout label (`arc_aos` / `flat_soa`).
    pub store: &'static str,
    /// Cache mode label (`off` / `warm`).
    pub cache: &'static str,
    /// The driver's measurement.
    pub report: ThroughputReport,
}

/// Everything `BENCH_hotpath.json` records.
pub struct HotpathReport {
    /// Workload label, e.g. `BA-50k`.
    pub dataset: String,
    /// Graph size.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
    /// Hub count |H|.
    pub hubs: usize,
    /// Iteration budget η per request.
    pub eta: usize,
    /// Queries per closed-loop run.
    pub queries: usize,
    /// Zipf exponent of the query mix.
    pub zipf_exponent: f64,
    /// RNG seed.
    pub seed: u64,
    /// Offline build wall-clock (memory layout — the `arc_aos` store).
    pub build: Duration,
    /// Arena conversion wall-clock on top of the build (the `flat_soa`
    /// store's build cost is `build + flat_convert`).
    pub flat_convert: Duration,
    /// Build threads used.
    pub build_threads: usize,
    /// Index size, on-disk-equivalent bytes.
    pub index_bytes: usize,
    /// Flat arena resident bytes (entries + border sublists + directory).
    pub flat_arena_bytes: usize,
    /// Deterministic digest of the result stream (see [`results_digest`]).
    pub results_digest: u64,
    /// The measured runs.
    pub runs: Vec<HotpathRun>,
}

impl HotpathReport {
    /// Hand-rolled JSON (the environment vendors no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"experiment\": \"hotpath\",\n");
        out.push_str(&format!("  \"dataset\": \"{}\",\n", self.dataset));
        out.push_str(&format!("  \"nodes\": {},\n", self.nodes));
        out.push_str(&format!("  \"edges\": {},\n", self.edges));
        out.push_str(&format!("  \"hubs\": {},\n", self.hubs));
        out.push_str(&format!("  \"eta\": {},\n", self.eta));
        out.push_str(&format!("  \"queries\": {},\n", self.queries));
        out.push_str(&format!("  \"zipf_exponent\": {},\n", self.zipf_exponent));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"build_ms\": {:.3},\n", ms(self.build)));
        out.push_str(&format!(
            "  \"flat_convert_ms\": {:.3},\n",
            ms(self.flat_convert)
        ));
        out.push_str(&format!("  \"build_threads\": {},\n", self.build_threads));
        // Per-layout build cost: what each store's deployment pays before
        // it can serve (the flat arena is converted from the memory build).
        out.push_str(&format!("  \"build_ms_arc_aos\": {:.3},\n", ms(self.build)));
        out.push_str(&format!(
            "  \"build_ms_flat_soa\": {:.3},\n",
            ms(self.build + self.flat_convert)
        ));
        out.push_str(&format!("  \"index_bytes\": {},\n", self.index_bytes));
        out.push_str(&format!(
            "  \"flat_arena_bytes\": {},\n",
            self.flat_arena_bytes
        ));
        out.push_str(&format!(
            "  \"results_digest\": \"{:#018x}\",\n",
            self.results_digest
        ));
        out.push_str("  \"runs\": [\n");
        for (i, run) in self.runs.iter().enumerate() {
            let r = &run.report;
            out.push_str(&format!(
                "    {{\"store\": \"{}\", \"cache\": \"{}\", \"workers\": {}, \
                 \"queries\": {}, \"wall_ms\": {:.3}, \"qps\": {:.1}, \
                 \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
                 \"hub_queries\": {}, \"hub_p50_us\": {:.1}, \"hub_p99_us\": {:.1}, \
                 \"nonhub_queries\": {}, \"nonhub_p50_us\": {:.1}, \"nonhub_p99_us\": {:.1}, \
                 \"cache_hits\": {}, \"cache_misses\": {}}}{}\n",
                run.store,
                run.cache,
                r.workers,
                r.queries,
                ms(r.wall),
                r.qps,
                us(r.p50),
                us(r.p99),
                r.hub.queries,
                us(r.hub.p50),
                us(r.hub.p99),
                r.nonhub.queries,
                us(r.nonhub.p50),
                us(r.nonhub.p99),
                r.cache_hits,
                r.cache_misses,
                if i + 1 < self.runs.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastppv_core::offline::{build_flat_index, build_index};
    use fastppv_core::{select_hubs, HubPolicy};
    use fastppv_graph::gen::barabasi_albert;

    #[test]
    fn digest_is_deterministic_and_layout_independent() {
        let g = barabasi_albert(400, 3, 11);
        let config = Config::default().with_epsilon(1e-6);
        let hubs = select_hubs(&g, HubPolicy::ExpectedUtility, 30, 0);
        let (memory, _) = build_index(&g, &hubs, &config);
        let (flat, _) = build_flat_index(&g, &hubs, &config, 1);
        let queries = crate::workload::sample_queries_zipf(&g, 30, 1.0, 7);
        let a = results_digest(&g, &hubs, &memory, config, &queries, 2);
        let b = results_digest(&g, &hubs, &memory, config, &queries, 2);
        let c = results_digest(&g, &hubs, &flat, config, &queries, 2);
        assert_eq!(a, b, "same deployment, same digest");
        assert_eq!(a, c, "flat layout serves bit-identical results");
        let d = results_digest(&g, &hubs, &flat, config, &queries, 0);
        assert_ne!(a, d, "different η must change the digest");
    }

    #[test]
    fn json_has_required_keys() {
        let report = HotpathReport {
            dataset: "BA-1k".into(),
            nodes: 1000,
            edges: 4000,
            hubs: 40,
            eta: 2,
            queries: 100,
            zipf_exponent: 1.0,
            seed: 42,
            build: Duration::from_millis(12),
            flat_convert: Duration::from_micros(345),
            build_threads: 1,
            index_bytes: 123456,
            flat_arena_bytes: 234567,
            results_digest: 0xdead_beef,
            runs: vec![HotpathRun {
                store: "flat_soa",
                cache: "off",
                report: crate::driver::ThroughputReport {
                    workers: 1,
                    queries: 100,
                    wall: Duration::from_millis(50),
                    qps: 2000.0,
                    p50: Duration::from_micros(10),
                    p99: Duration::from_micros(900),
                    hub: fastppv_server::LatencySummary {
                        queries: 80,
                        p50: Duration::from_micros(9),
                        p99: Duration::from_micros(20),
                    },
                    nonhub: fastppv_server::LatencySummary {
                        queries: 20,
                        p50: Duration::from_micros(300),
                        p99: Duration::from_micros(900),
                    },
                    cache_hits: 0,
                    cache_misses: 0,
                },
            }],
        };
        let json = report.to_json();
        for key in [
            "\"experiment\"",
            "\"qps\"",
            "\"build_ms\"",
            "\"build_ms_arc_aos\"",
            "\"build_ms_flat_soa\"",
            "\"build_threads\"",
            "\"index_bytes\"",
            "\"results_digest\"",
            "\"runs\"",
            "\"hub_queries\"",
            "\"hub_p50_us\"",
            "\"hub_p99_us\"",
            "\"nonhub_queries\"",
            "\"nonhub_p50_us\"",
            "\"nonhub_p99_us\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
