//! Default evaluation datasets (paper §6, "Datasets").
//!
//! The paper uses DBLP (2.0M nodes / 8.8M undirected edges) and a
//! LiveJournal sample (1.2M nodes / 4.8M directed edges). The defaults here
//! are structurally analogous generated graphs at roughly 1/30 scale so the
//! full suite runs in minutes; pass `--scale` to any experiment binary to
//! grow them (scale 30 ≈ paper-sized).

use fastppv_graph::gen::{BibNetwork, DblpParams, SocialNetwork, SocialParams};
use fastppv_graph::Graph;

/// Which real dataset a generated graph stands in for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatasetKind {
    /// DBLP-like: undirected tripartite bibliographic network.
    Dblp,
    /// LiveJournal-like: directed social network.
    LiveJournal,
}

/// A named evaluation graph.
pub struct Dataset {
    /// Display name.
    pub name: &'static str,
    /// The graph.
    pub graph: Graph,
    /// What it stands in for.
    pub kind: DatasetKind,
    /// The full bibliographic network, kept for snapshots (DBLP only).
    pub bib: Option<BibNetwork>,
    /// The full social network, kept for edge sampling (LiveJournal only).
    pub social: Option<SocialNetwork>,
}

impl Dataset {
    /// `number of nodes + number of edges` (the paper's Fig. 15 x-axis).
    pub fn size(&self) -> usize {
        self.graph.num_nodes() + self.graph.num_edges()
    }
}

/// Baseline paper-to-default scale: papers in the default DBLP-like graph.
const DBLP_BASE_PAPERS: usize = 30_000;
/// Users in the default LiveJournal-like graph.
const LJ_BASE_NODES: usize = 50_000;

/// The DBLP-like dataset at a given scale (1.0 = default, 30 ≈ paper size).
pub fn dblp(scale: f64, seed: u64) -> Dataset {
    assert!(scale > 0.0);
    let papers = ((DBLP_BASE_PAPERS as f64 * scale) as usize).max(100);
    let venues = (papers / 200).max(10);
    let bib = BibNetwork::generate(
        DblpParams {
            papers,
            venues,
            ..Default::default()
        },
        seed,
    );
    Dataset {
        name: "DBLP-like",
        graph: bib.graph.clone(),
        kind: DatasetKind::Dblp,
        bib: Some(bib),
        social: None,
    }
}

/// The LiveJournal-like dataset at a given scale.
pub fn livejournal(scale: f64, seed: u64) -> Dataset {
    assert!(scale > 0.0);
    let nodes = ((LJ_BASE_NODES as f64 * scale) as usize).max(100);
    let social = SocialNetwork::generate(
        SocialParams {
            nodes,
            ..Default::default()
        },
        seed,
    );
    Dataset {
        name: "LiveJournal-like",
        graph: social.graph.clone(),
        kind: DatasetKind::LiveJournal,
        bib: None,
        social: Some(social),
    }
}

/// The paper's default hub count, proportionally: |H| = 20K on 2.0M-node
/// DBLP (1%) and 120K on 1.2M-node LiveJournal (10%).
pub fn default_hub_count(dataset: &Dataset) -> usize {
    let n = dataset.graph.num_nodes();
    match dataset.kind {
        DatasetKind::Dblp => n / 100,
        DatasetKind::LiveJournal => n / 10,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dblp_default_scale_counts() {
        let d = dblp(0.1, 1);
        assert_eq!(d.kind, DatasetKind::Dblp);
        assert!(d.bib.is_some());
        // 3000 papers + authors + venues.
        assert!(d.graph.num_nodes() > 3000);
        assert!(d.graph.num_edges() > d.graph.num_nodes());
    }

    #[test]
    fn livejournal_default_scale_counts() {
        let d = livejournal(0.1, 1);
        assert_eq!(d.kind, DatasetKind::LiveJournal);
        assert!(d.social.is_some());
        assert_eq!(d.graph.num_nodes(), 5000);
    }

    #[test]
    fn hub_defaults_follow_paper_fractions() {
        let d = dblp(0.1, 1);
        assert_eq!(default_hub_count(&d), d.graph.num_nodes() / 100);
        let l = livejournal(0.1, 1);
        assert_eq!(default_hub_count(&l), l.graph.num_nodes() / 10);
    }
}
