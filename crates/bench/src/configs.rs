//! The four accuracy-moderated configurations (paper Fig. 5).
//!
//! The paper tunes each method's knob so that all three reach a similar
//! accuracy, then compares time and space at that accuracy level:
//!
//! ```text
//!      dataset      all:|H|  HubRankP:push  MonteCarlo:N  FastPPV:η
//! I    DBLP         20K      0.11           120K          2
//! II   DBLP         30K      0.13           40K           1
//! III  LiveJournal  150K     0.20           200K          3
//! IV   LiveJournal  200K     0.29           10K           1
//! ```
//!
//! Hub counts are carried over as *fractions of |V|* (20K/2.0M = 1%, etc.)
//! so the configurations scale with `--scale`; the per-method knobs are the
//! paper's values, re-moderated where the smaller default graphs shift the
//! accuracy balance (`push` is interpreted as a residual-mass target, which
//! is the accuracy-comparable form — see `fastppv_baselines::bca`).

use crate::datasets::DatasetKind;

/// One accuracy-moderated configuration.
#[derive(Clone, Copy, Debug)]
pub struct ModeratedConfig {
    /// Paper's label (I–IV).
    pub label: &'static str,
    /// Which dataset the configuration applies to.
    pub dataset: DatasetKind,
    /// Hub count as a fraction of |V| (shared by all three methods).
    pub hub_fraction: f64,
    /// HubRankP residual-mass target ("push").
    pub push: f64,
    /// MonteCarlo samples per query.
    pub samples: usize,
    /// FastPPV iteration count η.
    pub eta: usize,
}

/// The four configurations of Fig. 5, scaled to fractions.
pub const CONFIGS: [ModeratedConfig; 4] = [
    ModeratedConfig {
        label: "I",
        dataset: DatasetKind::Dblp,
        // The paper uses |H| = 20K on 2M nodes (1%); prime-subgraph size
        // tracks |V|/|H| non-linearly with scale, so the fraction here is
        // chosen to land the same operating point (subgraphs of 10^2-10^3
        // nodes, sub-ms queries) on the smaller default graph.
        hub_fraction: 0.04,
        push: 0.11,
        samples: 12_000,
        eta: 2,
    },
    ModeratedConfig {
        label: "II",
        dataset: DatasetKind::Dblp,
        hub_fraction: 0.06,
        push: 0.13,
        samples: 4_000,
        eta: 1,
    },
    ModeratedConfig {
        label: "III",
        dataset: DatasetKind::LiveJournal,
        hub_fraction: 150_000.0 / 1_200_000.0, // 12.5%
        push: 0.20,
        samples: 20_000,
        eta: 3,
    },
    ModeratedConfig {
        label: "IV",
        dataset: DatasetKind::LiveJournal,
        hub_fraction: 200_000.0 / 1_200_000.0, // 16.7%
        push: 0.29,
        samples: 1_000,
        eta: 1,
    },
];

impl ModeratedConfig {
    /// Hub count for a graph of `n` nodes.
    pub fn hub_count(&self, n: usize) -> usize {
        ((n as f64 * self.hub_fraction) as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_are_sane() {
        for c in CONFIGS {
            assert!(c.hub_fraction > 0.0 && c.hub_fraction < 0.5);
        }
        // Config II uses more hubs than I; IV more than III (paper Fig. 5).
        assert!(CONFIGS[1].hub_fraction > CONFIGS[0].hub_fraction);
        assert!(CONFIGS[3].hub_fraction > CONFIGS[2].hub_fraction);
    }

    #[test]
    fn hub_counts_scale() {
        assert_eq!(CONFIGS[0].hub_count(100_000), 4_000);
        assert_eq!(CONFIGS[2].hub_count(1_200_000), 150_000);
        assert!(CONFIGS[0].hub_count(10) >= 1);
    }

    #[test]
    fn two_per_dataset() {
        let dblp = CONFIGS
            .iter()
            .filter(|c| c.dataset == DatasetKind::Dblp)
            .count();
        assert_eq!(dblp, 2);
    }
}
