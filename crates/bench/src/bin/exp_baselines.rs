//! Figures 5, 6 and 7: accuracy-moderated comparison against HubRankP and
//! MonteCarlo.
//!
//! For each of the four configurations the three methods are tuned to a
//! similar accuracy (Fig. 6), then compared on online query time and
//! offline time/space (Fig. 7). The paper's headline: FastPPV is
//! 2.0–7.2× faster online than HubRankP and 2.4–5.2× faster than
//! MonteCarlo, 4.3–11.0× / 2.9–14.3× faster offline, with index space
//! between the two (up to 30% more than HubRankP).
//!
//! ```text
//! cargo run --release -p fastppv-bench --bin exp_baselines [--scale F] [--queries N]
//! ```

use fastppv_baselines::hubrank::HubRankOptions;
use fastppv_baselines::montecarlo::MonteCarloOptions;
use fastppv_bench::cli::CommonArgs;
use fastppv_bench::configs::CONFIGS;
use fastppv_bench::datasets::{self, DatasetKind};
use fastppv_bench::runner::{
    build_fastppv, eval_fastppv, eval_hubrank, eval_montecarlo, MethodRow,
};
use fastppv_bench::table::{fmt_mb, fmt_ms, fmt_s, Table};
use fastppv_bench::workload::{ground_truth, sample_queries};
use fastppv_core::hubs::HubPolicy;
use fastppv_core::query::StoppingCondition;
use fastppv_core::Config;
use fastppv_graph::{pagerank, PageRankOptions};

fn main() {
    let args = CommonArgs::parse_with_scale(40, 0.5);
    println!("# Fig. 5–7: accuracy-moderated comparison with baselines");
    println!(
        "(scale {}, {} queries, seed {})",
        args.scale, args.queries, args.seed
    );

    let mut fig5 = Table::new(vec![
        "Config",
        "dataset",
        "all:|H|",
        "HubRankP:push",
        "MonteCarlo:N",
        "FastPPV:eta",
    ]);
    let mut fig6 = Table::new(vec![
        "Config",
        "method",
        "Kendall",
        "Precision",
        "RAG",
        "L1 sim",
    ]);
    let mut fig7 = Table::new(vec![
        "Config",
        "method",
        "online/query",
        "offline space",
        "offline time",
    ]);

    for kind in [DatasetKind::Dblp, DatasetKind::LiveJournal] {
        let dataset = match kind {
            DatasetKind::Dblp => datasets::dblp(args.scale, args.seed),
            DatasetKind::LiveJournal => datasets::livejournal(args.scale, args.seed),
        };
        let graph = &dataset.graph;
        println!(
            "\n## {}: {} nodes, {} edges",
            dataset.name,
            graph.num_nodes(),
            graph.num_edges()
        );
        let pr = pagerank(graph, PageRankOptions::default());
        let queries = sample_queries(graph, args.queries, args.seed);
        let truth = ground_truth(graph, &queries);

        for cfg in CONFIGS.iter().filter(|c| c.dataset == kind) {
            let hub_count = cfg.hub_count(graph.num_nodes());
            fig5.row(vec![
                cfg.label.to_string(),
                dataset.name.to_string(),
                hub_count.to_string(),
                format!("{}", cfg.push),
                cfg.samples.to_string(),
                cfg.eta.to_string(),
            ]);

            let setup = build_fastppv(
                graph,
                hub_count,
                // ε = 1e-6 keeps prime subgraphs lean at bench scale; the
                // pruned fringe carries no top-10-relevant mass (see the
                // exp_ablation sweep).
                Config::default().with_epsilon(1e-6),
                HubPolicy::ExpectedUtility,
                args.threads,
                Some(&pr),
            );
            let rows = [
                eval_fastppv(
                    graph,
                    &setup,
                    &queries,
                    &truth,
                    &StoppingCondition::iterations(cfg.eta),
                ),
                eval_hubrank(
                    graph,
                    hub_count,
                    cfg.push,
                    // Looser offline residual keeps the (inherently
                    // sequential) hub-vector builds tractable; online
                    // accuracy is governed by the push knob.
                    HubRankOptions {
                        offline_residual: 2e-3,
                        ..Default::default()
                    },
                    &queries,
                    &truth,
                    &pr,
                ),
                eval_montecarlo(
                    graph,
                    hub_count,
                    cfg.samples,
                    MonteCarloOptions {
                        // Stored fingerprints track the per-query budget
                        // (reuse caps resolution) but are capped to keep the
                        // offline phase tractable.
                        fingerprints_per_hub: cfg.samples.min(4_000),
                        ..Default::default()
                    },
                    &queries,
                    &truth,
                    &pr,
                ),
            ];
            for row in &rows {
                push_accuracy(&mut fig6, cfg.label, row);
                push_costs(&mut fig7, cfg.label, row);
            }
            let f = &rows[0];
            let h = &rows[1];
            let m = &rows[2];
            println!(
                "config {}: FastPPV online {:.1}x vs HubRankP, {:.1}x vs MonteCarlo; \
                 offline {:.1}x / {:.1}x",
                cfg.label,
                h.online_per_query.as_secs_f64() / f.online_per_query.as_secs_f64(),
                m.online_per_query.as_secs_f64() / f.online_per_query.as_secs_f64(),
                h.offline_time.as_secs_f64() / f.offline_time.as_secs_f64(),
                m.offline_time.as_secs_f64() / f.offline_time.as_secs_f64(),
            );
        }
    }

    fig5.print("Fig. 5 — accuracy-moderated configurations");
    fig6.print("Fig. 6 — accuracy parity (paper: all methods ~equal per config)");
    fig7.print("Fig. 7 — cost comparison (paper: FastPPV fastest online AND offline)");
}

fn push_accuracy(t: &mut Table, label: &str, row: &MethodRow) {
    t.row(vec![
        label.to_string(),
        row.method.clone(),
        format!("{:.4}", row.accuracy.kendall),
        format!("{:.4}", row.accuracy.precision),
        format!("{:.4}", row.accuracy.rag),
        format!("{:.4}", row.accuracy.l1_similarity),
    ]);
}

fn push_costs(t: &mut Table, label: &str, row: &MethodRow) {
    t.row(vec![
        label.to_string(),
        row.method.clone(),
        fmt_ms(row.online_per_query),
        fmt_mb(row.offline_bytes),
        fmt_s(row.offline_time),
    ]);
}
