//! Extension experiment: dynamic graphs (the paper's future-work §7).
//!
//! "A simple idea to process graph updates is to only re-compute the
//! affected prime PPVs, without touching the unaffected ones." This
//! experiment inserts batches of random edges into the LiveJournal-like
//! graph and compares the incremental refresh (`fastppv_core::dynamic`)
//! against a full index rebuild: affected-hub fraction, wall-clock speedup,
//! and equality of the resulting indexes.
//!
//! ```text
//! cargo run --release -p fastppv-bench --bin exp_dynamic [--scale F]
//! ```

use fastppv_bench::cli::CommonArgs;
use fastppv_bench::datasets;
use fastppv_bench::table::{fmt_ratio, fmt_s, Table};
use fastppv_core::dynamic::refresh_index;
use fastppv_core::hubs::{select_hubs_with_pagerank, HubPolicy};
use fastppv_core::offline::build_index_parallel;
use fastppv_core::Config;
use fastppv_graph::{pagerank, Graph, GraphBuilder, NodeId, PageRankOptions};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let args = CommonArgs::parse(30);
    println!("# Dynamic updates: incremental refresh vs full rebuild");
    let dataset = datasets::livejournal(args.scale, args.seed);
    let graph = dataset.graph;
    println!("{} nodes, {} edges", graph.num_nodes(), graph.num_edges());
    let pr = pagerank(&graph, PageRankOptions::default());
    let hubs = select_hubs_with_pagerank(
        &graph,
        HubPolicy::ExpectedUtility,
        datasets::default_hub_count(&fastppv_bench::datasets::Dataset {
            name: "lj",
            graph: graph.clone(),
            kind: fastppv_bench::datasets::DatasetKind::LiveJournal,
            bib: None,
            social: None,
        }),
        0,
        Some(&pr),
    );
    let config = Config::default().with_epsilon(1e-6);
    let (index, build_stats) = build_index_parallel(&graph, &hubs, &config, args.threads);
    println!(
        "|H| = {}, initial build {:.2}s",
        hubs.len(),
        build_stats.build_time.as_secs_f64()
    );

    let mut table = Table::new(vec![
        "batch size",
        "affected hubs",
        "refresh time",
        "rebuild time",
        "speedup",
        "identical",
    ]);
    let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
    for batch in [1usize, 4, 16, 64] {
        // Insert `batch` random edges (from non-hub tails, the common case).
        let n = graph.num_nodes() as NodeId;
        let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(batch);
        while edges.len() < batch {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v && !graph.has_edge(u, v) {
                edges.push((u, v));
            }
        }
        let new_graph = insert_edges(&graph, &edges);
        let tails: Vec<NodeId> = edges.iter().map(|&(u, _)| u).collect();

        let t = std::time::Instant::now();
        let (refreshed, stats) = refresh_index(&index, &graph, &new_graph, &hubs, &tails, &config);
        let refresh_time = t.elapsed();

        let t = std::time::Instant::now();
        let (rebuilt, _) = build_index_parallel(&new_graph, &hubs, &config, 1);
        let rebuild_time = t.elapsed();

        let identical = hubs.ids().iter().all(|&h| {
            refreshed.get(h).map(|p| p.entries.clone()) == rebuilt.get(h).map(|p| p.entries.clone())
        });
        table.row(vec![
            batch.to_string(),
            format!(
                "{} / {} ({:.1}%)",
                stats.recomputed,
                hubs.len(),
                100.0 * stats.recomputed as f64 / hubs.len() as f64
            ),
            fmt_s(refresh_time),
            fmt_s(rebuild_time),
            fmt_ratio(rebuild_time.as_secs_f64(), refresh_time.as_secs_f64()),
            identical.to_string(),
        ]);
    }
    table.print(
        "Dynamic updates — refresh touches only upstream hubs and matches \
         a full rebuild exactly",
    );
}

/// Returns `graph` plus the given edges (dropping dangling-fix self-loops
/// on tails that gain a real edge).
fn insert_edges(graph: &Graph, new_edges: &[(NodeId, NodeId)]) -> Graph {
    let mut b = GraphBuilder::new(graph.num_nodes())
        .with_edge_capacity(graph.num_edges() + new_edges.len());
    let gains: std::collections::HashSet<NodeId> = new_edges.iter().map(|&(u, _)| u).collect();
    for (u, v) in graph.edges() {
        if u == v && gains.contains(&u) {
            continue;
        }
        b.add_edge(u, v);
    }
    for &(u, v) in new_edges {
        b.add_edge(u, v);
    }
    b.build()
}
