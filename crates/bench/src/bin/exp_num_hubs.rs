//! Figures 10 and 11: effect of the number of hubs |H|.
//!
//! The paper's findings: more hubs drastically reduce online query time
//! while every accuracy metric stays robust (Fig. 10); offline, total space
//! grows sublinearly while total precompute time *decreases* with |H|
//! (Fig. 11) — prime subgraphs shrink faster than their count grows.
//!
//! ```text
//! cargo run --release -p fastppv-bench --bin exp_num_hubs [--scale F]
//! ```

use fastppv_bench::cli::CommonArgs;
use fastppv_bench::datasets::{self, DatasetKind};
use fastppv_bench::runner::{build_fastppv, eval_fastppv};
use fastppv_bench::table::{fmt_mb, fmt_ms, fmt_s, Table};
use fastppv_bench::workload::{ground_truth, sample_queries};
use fastppv_core::hubs::HubPolicy;
use fastppv_core::query::StoppingCondition;
use fastppv_core::Config;
use fastppv_graph::{pagerank, PageRankOptions};

fn main() {
    let args = CommonArgs::parse(40);
    println!("# Fig. 10–11: effect of the number of hubs");
    // Paper sweeps 10K–35K (DBLP) and 100K–150K (LiveJournal); these are
    // the corresponding operating-point fractions on the default graphs.
    let sweeps: [(DatasetKind, &[f64]); 2] = [
        (DatasetKind::Dblp, &[0.01, 0.02, 0.04, 0.06, 0.08]),
        (DatasetKind::LiveJournal, &[0.04, 0.08, 0.125, 0.16, 0.20]),
    ];
    let mut fig10 = Table::new(vec![
        "dataset",
        "|H|",
        "Kendall",
        "Precision",
        "RAG",
        "L1 sim",
        "time/query",
    ]);
    let mut fig11 = Table::new(vec!["dataset", "|H|", "total space", "total time"]);
    for (kind, fractions) in sweeps {
        let dataset = match kind {
            DatasetKind::Dblp => datasets::dblp(args.scale, args.seed),
            DatasetKind::LiveJournal => datasets::livejournal(args.scale, args.seed),
        };
        let graph = &dataset.graph;
        println!(
            "\n## {}: {} nodes, {} edges",
            dataset.name,
            graph.num_nodes(),
            graph.num_edges()
        );
        let pr = pagerank(graph, PageRankOptions::default());
        let queries = sample_queries(graph, args.queries, args.seed);
        let truth = ground_truth(graph, &queries);
        let stop = StoppingCondition::iterations(2);
        for &f in fractions {
            let hub_count = ((graph.num_nodes() as f64 * f) as usize).max(1);
            let setup = build_fastppv(
                graph,
                hub_count,
                Config::default().with_epsilon(1e-6),
                HubPolicy::ExpectedUtility,
                args.threads,
                Some(&pr),
            );
            let row = eval_fastppv(graph, &setup, &queries, &truth, &stop);
            fig10.row(vec![
                dataset.name.to_string(),
                hub_count.to_string(),
                format!("{:.4}", row.accuracy.kendall),
                format!("{:.4}", row.accuracy.precision),
                format!("{:.4}", row.accuracy.rag),
                format!("{:.4}", row.accuracy.l1_similarity),
                fmt_ms(row.online_per_query),
            ]);
            fig11.row(vec![
                dataset.name.to_string(),
                hub_count.to_string(),
                fmt_mb(row.offline_bytes),
                fmt_s(row.offline_time),
            ]);
        }
    }
    fig10.print("Fig. 10 — |H| vs online (paper: time drops, accuracy robust)");
    fig11.print("Fig. 11 — |H| vs offline (paper: space sublinear, time decreases)");
}
