//! Figures 1–4 and the §4.1 error-bound table, on the paper's running
//! example.
//!
//! Regenerates, from the actual implementation:
//! * Fig. 1(b) — tour reachabilities from `a` to `c`;
//! * Fig. 2/3 — the hub-length partition of all tours from `a` under
//!   `H = {b, d, f}` and the scheduled per-iteration estimates;
//! * Fig. 4 / Eq. 9–12 — the assembled increments vs. naive enumeration;
//! * the Theorem 2 bound values quoted in §4.1.
//!
//! ```text
//! cargo run --release -p fastppv-bench --bin exp_toy
//! ```

use fastppv_baselines::exact::{exact_ppv, ExactOptions};
use fastppv_baselines::naive::partition_by_hub_length;
use fastppv_bench::table::Table;
use fastppv_core::error::l1_error_bound;
use fastppv_core::hubs::HubSet;
use fastppv_core::offline::build_index;
use fastppv_core::query::{QueryEngine, StoppingCondition};
use fastppv_core::Config;
use fastppv_graph::toy;

const ALPHA: f64 = 0.15;

fn main() {
    println!("# Fig. 1–4 + §4.1: the running example");

    // Fig. 1(b): tour reachabilities a -> c.
    let g_raw = toy::graph_raw();
    let tours: [(&str, &[u32]); 7] = [
        ("t1: a->c", &[toy::A, toy::C]),
        ("t2: a->h->c", &[toy::A, toy::H, toy::C]),
        ("t3: a->d->c", &[toy::A, toy::D, toy::C]),
        ("t4: a->b->c", &[toy::A, toy::B, toy::C]),
        ("t5: a->f->d->c", &[toy::A, toy::F, toy::D, toy::C]),
        ("t6: a->b->d->c", &[toy::A, toy::B, toy::D, toy::C]),
        (
            "t7: a->f->g->d->c",
            &[toy::A, toy::F, toy::G, toy::D, toy::C],
        ),
    ];
    let mut fig1 = Table::new(vec!["tour", "R(t) measured", "R(t) paper"]);
    let paper_vals = [
        "0.0255", "0.0216", "0.0108", "0.0072", "0.0046", "0.0046*", "0.0017*",
    ];
    for ((name, tour), paper) in tours.iter().zip(paper_vals) {
        let mut r = ALPHA * (1.0 - ALPHA).powi(tour.len() as i32 - 1);
        for w in tour.windows(2) {
            r /= g_raw.out_degree(w[0]) as f64;
        }
        fig1.row(vec![name.to_string(), format!("{r:.4}"), paper.to_string()]);
    }
    fig1.print(
        "Fig. 1(b) — tour reachabilities (*: the printed t6/t7 values are \
         inconsistent with the figure's own out-degrees; see DESIGN.md §3)",
    );

    // Fig. 3: hub-length partition of all tours from a, H = {b, d, f}.
    let g = toy::graph();
    let hubs = HubSet::from_ids(8, toy::PAPER_HUBS.to_vec());
    let parts = partition_by_hub_length(&g, toy::A, hubs.mask(), ALPHA, 1e-13);
    let mut fig3 = Table::new(vec!["partition", "tour mass", "share"]);
    let total: f64 = parts.iter().map(|p| p.iter().sum::<f64>()).sum();
    for (i, p) in parts.iter().enumerate() {
        let mass: f64 = p.iter().sum();
        fig3.row(vec![
            format!("T{i} (hub length {i})"),
            format!("{mass:.4}"),
            format!("{:.1}%", 100.0 * mass / total),
        ]);
    }
    fig3.print("Fig. 3 — partition by hub length (decreasing importance)");

    // Fig. 2: scheduled approximation — per-iteration estimates vs exact.
    let config = Config::exhaustive();
    let (index, _) = build_index(&g, &hubs, &config);
    let engine = QueryEngine::new(&g, &hubs, &index, config);
    let exact = exact_ppv(&g, toy::A, ExactOptions::default());
    let mut fig2 = Table::new(vec![
        "node",
        "after T0",
        "after T0..T1",
        "after T0..T2",
        "exact r_a",
    ]);
    let snapshots: Vec<_> = (0..3)
        .map(|eta| {
            engine
                .query(toy::A, &StoppingCondition::iterations(eta))
                .scores
        })
        .collect();
    for v in g.nodes() {
        fig2.row(vec![
            toy::NAMES[v as usize].to_string(),
            format!("{:.4}", snapshots[0].get(v)),
            format!("{:.4}", snapshots[1].get(v)),
            format!("{:.4}", snapshots[2].get(v)),
            format!("{:.4}", exact[v as usize]),
        ]);
    }
    fig2.print("Fig. 2 — scheduled approximation (query a, H = {b, d, f})");

    // Fig. 4 / Theorem 4: increments == naive partitions, level by level.
    let mut fig4 = Table::new(vec![
        "level",
        "assembled increment",
        "naive tour mass",
        "abs diff",
    ]);
    let result = engine.query(toy::A, &StoppingCondition::iterations(8));
    for stat in &result.iteration_stats {
        let naive: f64 = parts
            .get(stat.iteration)
            .map(|p| p.iter().sum())
            .unwrap_or(0.0);
        fig4.row(vec![
            format!("T{}", stat.iteration),
            format!("{:.6}", stat.increment_mass),
            format!("{naive:.6}"),
            format!("{:.2e}", (stat.increment_mass - naive).abs()),
        ]);
    }
    fig4.print("Fig. 4 / Thm. 4 — tour assembly vs naive enumeration");

    // §4.1: Theorem 2 bound values.
    let mut bound = Table::new(vec!["k", "bound (1-a)^(k+2)", "paper"]);
    for (k, paper) in [(10usize, "0.143"), (20, "0.0280"), (30, "0.00552")] {
        bound.row(vec![
            k.to_string(),
            format!("{:.5}", l1_error_bound(ALPHA, k)),
            paper.to_string(),
        ]);
    }
    bound.print("§4.1 — Theorem 2 error bound at α = 0.15");
}
