//! Ablations beyond the paper: the ε / δ / clip truncation knobs.
//!
//! DESIGN.md §3 calls out three design choices whose effect the paper
//! leaves implicit; this experiment quantifies each on the DBLP-like graph:
//!
//! * `ε` — prime-subgraph prune threshold: drives subgraph size (and hence
//!   both offline and online time); top-10 accuracy is insensitive across
//!   orders of magnitude.
//! * `δ` — border-hub expansion threshold: trades hub expansions per
//!   iteration against covered mass.
//! * `clip` — index storage threshold: trades index size against the mass
//!   recovered by each expansion.
//!
//! ```text
//! cargo run --release -p fastppv-bench --bin exp_ablation [--scale F]
//! ```

use fastppv_bench::cli::CommonArgs;
use fastppv_bench::datasets;
use fastppv_bench::runner::{build_fastppv, eval_fastppv};
use fastppv_bench::table::{fmt_mb, fmt_ms, fmt_s, Table};
use fastppv_bench::workload::{ground_truth, sample_queries};
use fastppv_core::hubs::HubPolicy;
use fastppv_core::query::StoppingCondition;
use fastppv_core::Config;
use fastppv_graph::{pagerank, PageRankOptions};

fn main() {
    let args = CommonArgs::parse(30);
    println!("# Ablations: ε / δ / clip (DBLP-like)");
    let dataset = datasets::dblp(args.scale, args.seed);
    let graph = &dataset.graph;
    println!("{} nodes, {} edges", graph.num_nodes(), graph.num_edges());
    let pr = pagerank(graph, PageRankOptions::default());
    let queries = sample_queries(graph, args.queries, args.seed);
    let truth = ground_truth(graph, &queries);
    let hub_count = datasets::default_hub_count(&dataset);
    let stop = StoppingCondition::iterations(2);
    let base = Config::default().with_epsilon(1e-6);

    let run = |table: &mut Table, label: String, config: Config| {
        let setup = build_fastppv(
            graph,
            hub_count,
            config,
            HubPolicy::ExpectedUtility,
            args.threads,
            Some(&pr),
        );
        let row = eval_fastppv(graph, &setup, &queries, &truth, &stop);
        table.row(vec![
            label,
            format!("{:.4}", row.accuracy.kendall),
            format!("{:.4}", row.accuracy.precision),
            format!("{:.4}", row.accuracy.l1_similarity),
            fmt_ms(row.online_per_query),
            fmt_s(row.offline_time),
            fmt_mb(row.offline_bytes),
            format!("{:.0}", setup.stats.avg_subgraph_nodes),
        ]);
    };
    let headers = vec![
        "value",
        "Kendall",
        "Precision",
        "L1 sim",
        "online/query",
        "offline time",
        "offline space",
        "avg subgraph",
    ];

    let mut eps_table = Table::new(headers.clone());
    for eps in [1e-4, 1e-5, 1e-6, 1e-7, 1e-8] {
        run(
            &mut eps_table,
            format!("eps={eps:.0e}"),
            base.with_epsilon(eps),
        );
    }
    eps_table.print("Ablation: prime-subgraph prune threshold ε");

    let mut delta_table = Table::new(headers.clone());
    for delta in [0.05, 0.01, 0.005, 0.001, 0.0] {
        run(
            &mut delta_table,
            format!("delta={delta}"),
            base.with_delta(delta),
        );
    }
    delta_table.print("Ablation: border-hub expansion threshold δ");

    let mut clip_table = Table::new(headers);
    for clip in [1e-3, 1e-4, 1e-5, 0.0] {
        run(
            &mut clip_table,
            format!("clip={clip:.0e}"),
            base.with_clip(clip),
        );
    }
    clip_table.print("Ablation: index storage clip threshold");

    // On-disk format comparison: plain vs compressed (delta-varint ids),
    // f32 vs log-u16 scores.
    use fastppv_core::codec::{write_compressed, ScoreQuantization};
    use fastppv_core::offline::build_index_parallel;
    use fastppv_core::select_hubs_with_pagerank;
    let hubs =
        select_hubs_with_pagerank(graph, HubPolicy::ExpectedUtility, hub_count, 0, Some(&pr));
    let (index, _) = build_index_parallel(graph, &hubs, &base, args.threads);
    let tmp = std::env::temp_dir();
    let plain = tmp.join(format!("fastppv-abl-{}.idx", std::process::id()));
    let f32c = tmp.join(format!("fastppv-abl-{}.idx2", std::process::id()));
    let u16c = tmp.join(format!("fastppv-abl-{}.idx2q", std::process::id()));
    index.write_to_file(&plain).expect("write plain");
    write_compressed(&index, &f32c, ScoreQuantization::F32).expect("write f32");
    write_compressed(&index, &u16c, ScoreQuantization::LogU16).expect("write u16");
    let mut fmt_table = Table::new(vec!["format", "bytes", "vs plain"]);
    let plain_len = std::fs::metadata(&plain).unwrap().len();
    for (name, path) in [
        ("plain (u32+f32)", &plain),
        ("compressed (varint+f32)", &f32c),
        ("compressed (varint+log-u16)", &u16c),
    ] {
        let len = std::fs::metadata(path).unwrap().len();
        fmt_table.row(vec![
            name.to_string(),
            len.to_string(),
            format!("{:.0}%", 100.0 * len as f64 / plain_len as f64),
        ]);
        std::fs::remove_file(path).ok();
    }
    fmt_table.print("Ablation: on-disk index format");
}
