//! Figure 16: disk-based online query processing.
//!
//! The graph is segmented into clusters (anchor-based PPR clustering,
//! §5.3); at query time only one cluster is memory-resident and the prime-
//! subgraph search swaps clusters on demand, capped at one fault per
//! cluster. The PPV index is also read from disk (`DiskIndex`).
//!
//! Paper findings: query time stays roughly stable as the cluster count
//! grows (more faults × smaller clusters), while the memory need (largest
//! cluster / graph size) falls from ~15–20% at 10 clusters to ~3–5% at 50.
//!
//! ```text
//! cargo run --release -p fastppv-bench --bin exp_disk [--scale F]
//! ```

use std::time::Duration;

use fastppv_bench::cli::CommonArgs;
use fastppv_bench::datasets::{self, DatasetKind};
use fastppv_bench::table::{fmt_ms, Table};
use fastppv_bench::workload::sample_queries;
use fastppv_cluster::partition::{cluster_graph, ClusteringOptions};
use fastppv_cluster::query::{disk_query, DiskQueryWorkspace};
use fastppv_cluster::store::{write_clustered_graph, DiskGraph};
use fastppv_core::hubs::{select_hubs_with_pagerank, HubPolicy};
use fastppv_core::index::DiskIndex;
use fastppv_core::offline::build_index_parallel;
use fastppv_core::query::StoppingCondition;
use fastppv_core::Config;
use fastppv_graph::{pagerank, PageRankOptions};

fn main() {
    let args = CommonArgs::parse(30);
    println!("# Fig. 16: disk-based online query processing");
    let tmp = std::env::temp_dir();
    let mut fig16 = Table::new(vec![
        "dataset",
        "#clusters",
        "faults/query",
        "time/query",
        "memory need",
    ]);
    for kind in [DatasetKind::Dblp, DatasetKind::LiveJournal] {
        let dataset = match kind {
            DatasetKind::Dblp => datasets::dblp(args.scale, args.seed),
            DatasetKind::LiveJournal => datasets::livejournal(args.scale, args.seed),
        };
        let graph = &dataset.graph;
        println!(
            "\n## {}: {} nodes, {} edges",
            dataset.name,
            graph.num_nodes(),
            graph.num_edges()
        );
        let pr = pagerank(graph, PageRankOptions::default());
        let hubs = select_hubs_with_pagerank(
            graph,
            HubPolicy::ExpectedUtility,
            datasets::default_hub_count(&dataset),
            0,
            Some(&pr),
        );
        let config = Config::default().with_epsilon(1e-6);
        let (index, _) = build_index_parallel(graph, &hubs, &config, args.threads);
        // The PPV index lives on disk too (small read cache).
        let idx_path = tmp.join(format!(
            "fastppv-exp-disk-{}-{}.idx",
            std::process::id(),
            dataset.name
        ));
        index.write_to_file(&idx_path).expect("write index");
        let disk_index = DiskIndex::open(&idx_path, 64).expect("open disk index");
        let queries = sample_queries(graph, args.queries, args.seed);

        for n_clusters in [10usize, 15, 25, 35, 50] {
            let clustering = cluster_graph(graph, n_clusters, ClusteringOptions::default());
            let clg_path = tmp.join(format!(
                "fastppv-exp-disk-{}-{}-{n_clusters}.clg",
                std::process::id(),
                dataset.name
            ));
            write_clustered_graph(graph, &clustering, &clg_path).expect("write clustered graph");
            // One resident cluster: the paper's reduced memory budget.
            let mut disk = DiskGraph::open(&clg_path, 1).expect("open clustered graph");
            let mut ws = DiskQueryWorkspace::new(graph.num_nodes());
            let mut faults = 0u64;
            let mut elapsed = Duration::ZERO;
            for &q in &queries {
                let res = disk_query(
                    &mut disk,
                    &hubs,
                    &disk_index,
                    &config,
                    q,
                    &StoppingCondition::iterations(2),
                    Some(n_clusters as u64), // fault cap = #clusters (§5.3)
                    &mut ws,
                );
                faults += res.faults;
                elapsed += res.elapsed;
            }
            let nq = queries.len() as u64;
            fig16.row(vec![
                dataset.name.to_string(),
                n_clusters.to_string(),
                format!("{:.1}", faults as f64 / nq as f64),
                fmt_ms(elapsed / nq as u32),
                format!(
                    "{:.1}%",
                    100.0 * disk.largest_cluster_bytes() as f64 / disk.total_cluster_bytes() as f64
                ),
            ]);
            std::fs::remove_file(&clg_path).ok();
        }
        std::fs::remove_file(&idx_path).ok();
    }
    fig16.print(
        "Fig. 16 — disk-based processing (paper: stable time, \
         falling memory need as #clusters grows)",
    );
}
