//! Figure 12: incremental online processing as η grows.
//!
//! More iterations → better accuracy, more time, with the biggest gains in
//! the earliest iterations (Theorem 2); η only affects the online phase.
//! The paper reports all four metrics above 0.9 at η = 2.
//!
//! Also prints the per-iteration accuracy-aware φ (Eq. 6) against the
//! Theorem 2 bound — the quantity that makes the trade-off controllable at
//! query time.
//!
//! ```text
//! cargo run --release -p fastppv-bench --bin exp_iterations [--scale F]
//! ```

use fastppv_bench::cli::CommonArgs;
use fastppv_bench::datasets::{self, DatasetKind};
use fastppv_bench::runner::{build_fastppv, eval_fastppv};
use fastppv_bench::table::{fmt_ms, Table};
use fastppv_bench::workload::{ground_truth, sample_queries};
use fastppv_core::error::l1_error_bound;
use fastppv_core::hubs::HubPolicy;
use fastppv_core::query::{QueryEngine, StoppingCondition};
use fastppv_core::Config;
use fastppv_graph::{pagerank, PageRankOptions};

fn main() {
    let args = CommonArgs::parse(40);
    println!("# Fig. 12: incremental online processing (varying η)");
    let mut fig12 = Table::new(vec![
        "dataset",
        "eta",
        "Kendall",
        "Precision",
        "RAG",
        "L1 sim",
        "time/query",
    ]);
    let mut phi = Table::new(vec!["dataset", "k", "mean φ(k) (Eq. 6)", "Theorem 2 bound"]);
    for kind in [DatasetKind::Dblp, DatasetKind::LiveJournal] {
        let dataset = match kind {
            DatasetKind::Dblp => datasets::dblp(args.scale, args.seed),
            DatasetKind::LiveJournal => datasets::livejournal(args.scale, args.seed),
        };
        let graph = &dataset.graph;
        println!(
            "\n## {}: {} nodes, {} edges",
            dataset.name,
            graph.num_nodes(),
            graph.num_edges()
        );
        let pr = pagerank(graph, PageRankOptions::default());
        let queries = sample_queries(graph, args.queries, args.seed);
        let truth = ground_truth(graph, &queries);
        let hub_count = datasets::default_hub_count(&dataset);
        let setup = build_fastppv(
            graph,
            hub_count,
            Config::default().with_epsilon(1e-6),
            HubPolicy::ExpectedUtility,
            args.threads,
            Some(&pr),
        );
        for eta in 0..=3 {
            let row = eval_fastppv(
                graph,
                &setup,
                &queries,
                &truth,
                &StoppingCondition::iterations(eta),
            );
            fig12.row(vec![
                dataset.name.to_string(),
                eta.to_string(),
                format!("{:.4}", row.accuracy.kendall),
                format!("{:.4}", row.accuracy.precision),
                format!("{:.4}", row.accuracy.rag),
                format!("{:.4}", row.accuracy.l1_similarity),
                fmt_ms(row.online_per_query),
            ]);
        }
        // φ(k) vs the Theorem 2 bound, with truncation disabled so the
        // bound applies exactly.
        let exact_cfg = Config::default()
            .with_epsilon(1e-10)
            .with_delta(0.0)
            .with_clip(0.0);
        let setup_exact = build_fastppv(
            graph,
            hub_count,
            exact_cfg,
            HubPolicy::ExpectedUtility,
            args.threads,
            Some(&pr),
        );
        let engine = QueryEngine::new(
            graph,
            &setup_exact.hubs,
            &setup_exact.index,
            setup_exact.config,
        );
        let mut phis = [0.0f64; 4];
        let sample = &queries[..queries.len().min(10)];
        for &q in sample {
            let r = engine.query(q, &StoppingCondition::iterations(3));
            for (k, phi_k) in phis.iter_mut().enumerate() {
                let p = r
                    .iteration_stats
                    .get(k)
                    .map(|s| s.l1_error_after)
                    .unwrap_or(0.0);
                *phi_k += p / sample.len() as f64;
            }
        }
        for (k, &p) in phis.iter().enumerate() {
            phi.row(vec![
                dataset.name.to_string(),
                k.to_string(),
                format!("{p:.4}"),
                format!("{:.4}", l1_error_bound(0.15, k)),
            ]);
        }
    }
    fig12.print("Fig. 12 — accuracy and time vs η (top-10 metrics)");
    phi.print("Accuracy-awareness: mean φ(k) vs Theorem 2 (untruncated)");
}
