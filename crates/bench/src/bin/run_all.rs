//! Runs every experiment binary in sequence, mirroring the paper's §6.
//!
//! ```text
//! cargo run --release -p fastppv-bench --bin run_all [-- --scale F --queries N]
//! ```
//!
//! Flags after `--` are forwarded to every experiment. Output goes to
//! stdout; `tee` it into `EXPERIMENTS.md` material.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "exp_toy",
    "exp_datasets",
    "exp_baselines",
    "exp_hub_policy",
    "exp_num_hubs",
    "exp_iterations",
    "exp_scalability",
    "exp_disk",
    "exp_ablation",
    "exp_dynamic",
    "exp_throughput",
];

fn main() {
    let forwarded: Vec<String> = std::env::args().skip(1).collect();
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin dir");
    let mut failures = Vec::new();
    for exp in EXPERIMENTS {
        println!("\n{:=<78}", "");
        println!("== {exp}");
        println!("{:=<78}", "");
        let status = Command::new(bin_dir.join(exp))
            .args(&forwarded)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {exp}: {e}"));
        if !status.success() {
            eprintln!("!! {exp} exited with {status}");
            failures.push(*exp);
        }
    }
    println!("\n{:=<78}", "");
    if failures.is_empty() {
        println!("all {} experiments completed", EXPERIMENTS.len());
    } else {
        println!("FAILED: {failures:?}");
        std::process::exit(1);
    }
}
