//! Dataset-substitution audit: structural statistics of the generated
//! graphs next to the published properties of the paper's real datasets.
//!
//! The substitution argument (DESIGN.md §4) is that FastPPV's behaviour
//! depends on degree skew, directedness/reciprocity, and heavy out-degree
//! tails (hub "decaying power") — not on dataset identity. This table makes
//! those properties inspectable.
//!
//! ```text
//! cargo run --release -p fastppv-bench --bin exp_datasets [--scale F]
//! ```

use fastppv_bench::cli::CommonArgs;
use fastppv_bench::datasets;
use fastppv_bench::table::Table;
use fastppv_graph::stats::{graph_stats, out_degree_histogram};

fn main() {
    let args = CommonArgs::parse(1);
    println!("# Dataset audit: generated vs paper datasets");
    let dblp = datasets::dblp(args.scale, args.seed);
    let lj = datasets::livejournal(args.scale, args.seed);

    let mut t = Table::new(vec![
        "property",
        "DBLP-like (gen)",
        "LiveJournal-like (gen)",
        "paper DBLP",
        "paper LJ sample",
    ]);
    let ds = graph_stats(&dblp.graph);
    let ls = graph_stats(&lj.graph);
    let row = |t: &mut Table, name: &str, d: String, l: String, pd: &str, pl: &str| {
        t.row(vec![name.to_string(), d, l, pd.to_string(), pl.to_string()]);
    };
    row(
        &mut t,
        "nodes",
        ds.nodes.to_string(),
        ls.nodes.to_string(),
        "2.0M",
        "1.2M",
    );
    row(
        &mut t,
        "directed edges",
        ds.edges.to_string(),
        ls.edges.to_string(),
        "17.6M (8.8M undirected)",
        "4.8M",
    );
    row(
        &mut t,
        "mean out-degree",
        format!("{:.2}", ds.mean_out_degree),
        format!("{:.2}", ls.mean_out_degree),
        "8.8",
        "4.0",
    );
    row(
        &mut t,
        "reciprocity",
        format!("{:.2}", ds.reciprocity),
        format!("{:.2}", ls.reciprocity),
        "1.00 (undirected)",
        "<1 (directed)",
    );
    row(
        &mut t,
        "max out-degree",
        ds.max_out_degree.to_string(),
        ls.max_out_degree.to_string(),
        "10^3-10^4 (venues)",
        "10^2-10^3",
    );
    row(
        &mut t,
        "out-degree Gini",
        format!("{:.3}", ds.out_degree_gini),
        format!("{:.3}", ls.out_degree_gini),
        "high (power law)",
        "high (power law)",
    );
    row(
        &mut t,
        "Hill tail exponent",
        format!("{:.2}", ds.out_tail_exponent),
        format!("{:.2}", ls.out_tail_exponent),
        "~2-3",
        "~2-3",
    );
    t.print("Generated datasets vs the paper's (published/typical values)");

    for (name, graph) in [("DBLP-like", &dblp.graph), ("LiveJournal-like", &lj.graph)] {
        let hist = out_degree_histogram(graph);
        let mut ht = Table::new(vec!["out-degree range", "nodes"]);
        for (i, &count) in hist.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let lo = 1usize << i;
            let hi = (1usize << (i + 1)) - 1;
            let label = if i == 0 {
                "0-1".to_string()
            } else {
                format!("{lo}-{hi}")
            };
            ht.row(vec![label, count.to_string()]);
        }
        ht.print(&format!("{name} out-degree histogram (powers of two)"));
    }
}
