//! Extension experiment: the zero-copy flat-arena hot path.
//!
//! Measures exactly what the SoA index refactor is for: the same Zipf
//! closed-loop workload served from the Arc/AoS [`MemoryIndex`] and from
//! the flat SoA [`FlatIndex`] arena, on a BA-50k graph by default. Writes
//! `BENCH_hotpath.json` (build time, index bytes, QPS, p50/p99, plus a
//! deterministic result digest) so later PRs have a perf trajectory to
//! beat.
//!
//! ```text
//! cargo run --release -p fastppv-bench --bin exp_hotpath \
//!     [--scale F] [--queries N] [--seed S] [--threads T] [--out FILE]
//! ```
//!
//! `--scale 0.02` is the CI smoke mode (BA-1k, a few seconds).

use std::sync::Arc;
use std::time::Instant;

use fastppv_bench::cli::CommonArgs;
use fastppv_bench::driver::{run_closed_loop, RunSpec};
use fastppv_bench::hotpath::{results_digest, HotpathReport, HotpathRun};
use fastppv_bench::table::Table;
use fastppv_bench::workload::sample_queries_zipf;
use fastppv_core::hubs::{select_hubs_with_pagerank, HubPolicy};
use fastppv_core::index::FlatIndex;
use fastppv_core::offline::build_index_parallel;
use fastppv_core::{Config, HubSet, MemoryIndex, PpvStore};
use fastppv_graph::gen::barabasi_albert;
use fastppv_graph::{pagerank, PageRankOptions};

/// Zipf exponent of the query mix (≈ web/social traffic skew).
const ZIPF_EXPONENT: f64 = 1.0;
/// Iteration budget η per request (the paper's default online setting).
const ETA: usize = 2;
/// Queries digested for the determinism fingerprint.
const DIGEST_QUERIES: usize = 64;

fn main() {
    // Peel off `--out FILE`; everything else is the shared vocabulary.
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_hotpath.json");
    if let Some(i) = raw.iter().position(|a| a == "--out") {
        raw.remove(i);
        if i < raw.len() {
            out_path = raw.remove(i);
        } else {
            eprintln!("missing value for --out");
            std::process::exit(2);
        }
    }
    let args = CommonArgs::parse_from(raw, 2000);

    let n = ((50_000.0 * args.scale) as usize).max(200);
    let dataset = format!("BA-{}k", (n as f64 / 1000.0).round().max(1.0) as usize);
    println!("# Hot path: flat SoA arena vs Arc/AoS store ({dataset})");
    let graph = Arc::new(barabasi_albert(n, 4, args.seed));
    let hub_count = n / 25;
    let pr = pagerank(&graph, PageRankOptions::default());
    let hubs: Arc<HubSet> = Arc::new(select_hubs_with_pagerank(
        &graph,
        HubPolicy::ExpectedUtility,
        hub_count,
        0,
        Some(&pr),
    ));
    let config = Config::default().with_epsilon(1e-6);

    let build_started = Instant::now();
    let (memory, stats) = build_index_parallel(&graph, &hubs, &config, args.threads);
    let build = build_started.elapsed();
    let convert_started = Instant::now();
    let flat = FlatIndex::from_memory(&memory, &hubs);
    let flat_convert = convert_started.elapsed();
    println!(
        "built |H| = {} ({} entries, {:.2} MB) in {:.2?}; arena conversion {:.2?}",
        stats.hubs,
        stats.total_entries,
        stats.storage_bytes as f64 / (1024.0 * 1024.0),
        build,
        flat_convert
    );

    let queries = sample_queries_zipf(&graph, args.queries, ZIPF_EXPONENT, args.seed);
    let digest_queries = &queries[..queries.len().min(DIGEST_QUERIES)];
    let digest_mem = results_digest(&graph, &hubs, &memory, config, digest_queries, ETA);
    let digest_flat = results_digest(&graph, &hubs, &flat, config, digest_queries, ETA);
    assert_eq!(
        digest_mem, digest_flat,
        "flat arena must serve bit-identical results"
    );

    let memory: Arc<MemoryIndex> = Arc::new(memory);
    let flat: Arc<FlatIndex> = Arc::new(flat);
    let index_bytes = memory.storage_bytes();
    let flat_arena_bytes = flat.arena_bytes();

    let mut runs: Vec<HotpathRun> = Vec::new();
    let spec = |cache_capacity: usize, warm_cache: bool| RunSpec {
        eta: ETA,
        workers: args.threads,
        cache_capacity,
        warm_cache,
    };
    runs.push(HotpathRun {
        store: "arc_aos",
        cache: "off",
        report: run_closed_loop(&graph, &hubs, &memory, config, &queries, spec(0, false)),
    });
    runs.push(HotpathRun {
        store: "flat_soa",
        cache: "off",
        report: run_closed_loop(&graph, &hubs, &flat, config, &queries, spec(0, false)),
    });
    runs.push(HotpathRun {
        store: "flat_soa",
        cache: "warm",
        report: run_closed_loop(&graph, &hubs, &flat, config, &queries, spec(8192, true)),
    });

    let mut table = Table::new(vec![
        "store",
        "cache",
        "workers",
        "queries",
        "wall",
        "QPS",
        "p50",
        "p99",
        "hub p99",
        "non-hub p50",
        "non-hub p99",
    ]);
    for run in &runs {
        let r = &run.report;
        table.row(vec![
            run.store.to_string(),
            run.cache.to_string(),
            r.workers.to_string(),
            r.queries.to_string(),
            format!("{:.2?}", r.wall),
            format!("{:.0}", r.qps),
            format!("{:.2?}", r.p50),
            format!("{:.2?}", r.p99),
            format!("{:.2?}", r.hub.p99),
            format!("{:.2?}", r.nonhub.p50),
            format!("{:.2?}", r.nonhub.p99),
        ]);
    }
    table.print("Closed-loop hot path — Zipf mix, η = 2 (hub vs non-hub sources split)");

    let report = HotpathReport {
        dataset,
        nodes: graph.num_nodes(),
        edges: graph.num_edges(),
        hubs: hubs.len(),
        eta: ETA,
        queries: queries.len(),
        zipf_exponent: ZIPF_EXPONENT,
        seed: args.seed,
        build,
        flat_convert,
        build_threads: args.threads,
        index_bytes,
        flat_arena_bytes,
        results_digest: digest_flat,
        runs,
    };
    std::fs::write(&out_path, report.to_json()).expect("write BENCH json");
    println!("\nwrote {out_path}");
}
