//! Scale-out experiment: four loopback shards behind the scatter/gather
//! router versus one process, plus a kill-timeline goodput trace.
//!
//! Budgeting is **equal per process**: every serving process — the one
//! single-process server, and each of the four shard servers — gets the
//! same worker count and the same hot-answer cache capacity. The
//! scale-out win this experiment measures is *working-set partitioning*:
//! the router sends each query to its owner shard, so four equal caches
//! hold four disjoint quarters of the hot set, while the single process's
//! one cache thrashes on the same workload. (On a single box the cluster
//! cannot win on CPU — aggregate cores are fixed and the router adds
//! scatter/merge work on the same cores.) The router itself is
//! stateless: its merged-answer cache is disabled so every routed
//! request really scatters.
//!
//! Three measurements:
//!
//! 1. **Single vs routed throughput**: the same zipf-skewed prime-PPV
//!    (η = 0) workload, closed loop over the TCP front-end, cold pass
//!    then warm pass (steady-state, caches populated). The acceptance
//!    claim is `cluster_warm_qps >= single_warm_qps`.
//! 2. **Worst-shard p99** read off each shard's stats wire op after the
//!    routed run, plus the hedge count the backend accumulated.
//! 3. **Kill timeline**: closed-loop senders hammer the router while a
//!    shard is shut down mid-run and revived on its old address three
//!    seconds later. Outcomes are bucketed over time; every response
//!    must be a certified answer (`errors == 0` — a dead shard degrades
//!    φ, it never surfaces as a client-visible error), and a fresh
//!    full-accuracy answer must arrive after revival (`recovered`).
//!
//! Writes `BENCH_cluster.json` (validated by CI's perf-smoke job).
//!
//! ```text
//! cargo run --release -p fastppv-bench --bin exp_cluster \
//!     [--scale F] [--queries N] [--seed S] [--threads T]
//! ```

use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fastppv_bench::cli::CommonArgs;
use fastppv_bench::driver::{run_closed_loop_socket, SocketRunSpec, ThroughputReport};
use fastppv_bench::table::Table;
use fastppv_bench::workload::sample_queries_zipf;
use fastppv_cluster::{slice_store, ShardMap};
use fastppv_core::hubs::{select_hubs_with_pagerank, HubPolicy};
use fastppv_core::offline::build_index_parallel;
use fastppv_core::{Config, MemoryIndex};
use fastppv_graph::gen::barabasi_albert;
use fastppv_graph::{pagerank, NodeId, PageRankOptions};
use fastppv_router::{
    serve_router, HealthOptions, Router, RouterConfig, RouterOptions, TcpBackend, TcpBackendOptions,
};
use fastppv_server::net::{
    serve, serve_with_options, Client, NetOptions, NetServer, WireRequest, WireResponse,
};
use fastppv_server::{OverloadOptions, QueryService, ServiceOptions};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Iteration budget η for the throughput passes: η = 0 is the paper's
/// prime-PPV serving mode — iteration 0 only, φ certified as the
/// unconverted hub mass. Each routed request is then one sub-request to
/// the query's owner shard, so ownership *partitions* the cached working
/// set across shards; that partitioning is the whole scale-out claim.
const ETA_THROUGHPUT: u32 = 0;
/// Iteration budget η for the kill timeline: deep enough that every
/// query traverses owned hub sublists, making a dead shard observable.
const ETA_KILL: u32 = 4;
/// Top-k entries per answer: isolates serving cost from payload size.
const TOP_K: u32 = 8;
/// Shards in the routed topology.
const NUM_SHARDS: u32 = 4;
/// Worker threads per serving process (single and each shard alike).
const WORKERS: usize = 1;
/// Hot-answer cache entries per serving process — the *same* for the
/// single process and for every shard. The cluster's advantage is not a
/// bigger per-process cache: it is that the router routes each query to
/// its owner, so the four equal caches hold four disjoint quarters of
/// the working set.
const CACHE_PER_PROCESS: usize = 512;
/// Closed-loop client connections per throughput pass.
const CLIENTS: usize = 4;
/// Closed-loop senders during the kill timeline.
const KILL_SENDERS: usize = 2;
/// Kill-timeline bucket width.
const BUCKET_MS: u64 = 500;
/// Shard shut down mid-run.
const KILL_SHARD: usize = 2;
/// When the shard dies / comes back / the window ends.
const KILL_AT_S: f64 = 3.0;
const REVIVE_AT_S: f64 = 6.0;
const KILL_WINDOW_S: f64 = 9.0;

/// One kill-phase outcome class.
#[derive(Clone, Copy, PartialEq)]
enum Class {
    Full,
    Degraded,
    Shed,
    Error,
}

/// Per-bucket tallies of the kill timeline.
#[derive(Clone, Copy, Default)]
struct Bucket {
    answered: usize,
    degraded: usize,
    shed: usize,
    errors: usize,
}

fn main() {
    let args = CommonArgs::parse(4000);
    let n = ((50_000.0 * args.scale) as usize).max(1000);
    let hub_count = n / 25;
    println!(
        "# Cluster scale-out: {NUM_SHARDS} shards behind the router vs one process, BA-{}k",
        n / 1000
    );

    let graph = Arc::new(barabasi_albert(n, 4, args.seed));
    println!(
        "graph: {} nodes, {} edges, {} hubs",
        graph.num_nodes(),
        graph.num_edges(),
        hub_count
    );
    let pr = pagerank(&graph, PageRankOptions::default());
    let hubs = Arc::new(select_hubs_with_pagerank(
        &graph,
        HubPolicy::ExpectedUtility,
        hub_count,
        0,
        Some(&pr),
    ));
    // δ well below the default so hub frontiers stay non-empty at this
    // scale: queries really traverse owned sublists every iteration,
    // which is what makes a dead shard's absence observable (degraded
    // answers) rather than vacuously exact.
    let config = Config::default().with_epsilon(1e-6).with_delta(1e-4);
    let build_started = Instant::now();
    let (index, _) = build_index_parallel(&graph, &hubs, &config, args.threads);
    println!("index built in {:.2?}", build_started.elapsed());
    let store: Arc<MemoryIndex> = Arc::new(index);
    let queries = sample_queries_zipf(&graph, args.queries, 1.0, args.seed);
    let spec = SocketRunSpec {
        eta: ETA_THROUGHPUT as usize,
        clients: CLIENTS,
        top_k: TOP_K,
    };

    // ------------------------------------------------------------------
    // Single process: one service, `WORKERS` workers, `CACHE_PER_PROCESS`
    // cached answers. Cold pass, then warm (steady-state) pass.
    // ------------------------------------------------------------------
    let single = Arc::new(QueryService::new(
        Arc::clone(&graph),
        Arc::clone(&hubs),
        Arc::clone(&store),
        config,
        ServiceOptions {
            workers: WORKERS,
            queue_capacity: 1024,
            cache_capacity: CACHE_PER_PROCESS,
        },
    ));
    let server = serve(
        single,
        TcpListener::bind("127.0.0.1:0").expect("bind loopback"),
    )
    .expect("start single front-end");
    let single_cold =
        run_closed_loop_socket(server.local_addr(), &hubs, &queries, spec).expect("single cold");
    let single_warm =
        run_closed_loop_socket(server.local_addr(), &hubs, &queries, spec).expect("single warm");
    server.shutdown();
    print_pass("single cold", &single_cold);
    print_pass("single warm", &single_warm);

    // ------------------------------------------------------------------
    // Routed: NUM_SHARDS sliced services on loopback, scatter/gather
    // router in front (merged-answer cache off — stateless).
    // ------------------------------------------------------------------
    let map = ShardMap::round_robin(n, NUM_SHARDS);
    let shard_options = ServiceOptions {
        workers: WORKERS,
        queue_capacity: 1024,
        cache_capacity: CACHE_PER_PROCESS,
    };
    let mut shards: Vec<(
        Arc<QueryService<MemoryIndex>>,
        Option<NetServer>,
        SocketAddr,
    )> = Vec::new();
    for shard in 0..NUM_SHARDS {
        let slice = slice_store(store.as_ref(), &hubs, &map, shard);
        // Watermarks far above anything this run reaches: the overload
        // policy never fires, but its load tracker is live, so each
        // shard's stats op reports an honest recent p99.
        let service = Arc::new(
            QueryService::new(
                Arc::clone(&graph),
                Arc::clone(&hubs),
                Arc::new(slice),
                config,
                shard_options,
            )
            .with_overload(OverloadOptions {
                degrade_in_flight: 1 << 20,
                shed_in_flight: 1 << 21,
                ..OverloadOptions::default()
            }),
        );
        let server = serve_shard(
            &service,
            TcpListener::bind("127.0.0.1:0").expect("bind shard"),
        );
        let addr = server.local_addr();
        shards.push((service, Some(server), addr));
    }
    let addrs: Vec<SocketAddr> = shards.iter().map(|(_, _, a)| *a).collect();
    let backend = TcpBackend::new(
        addrs.clone(),
        TcpBackendOptions {
            health: HealthOptions {
                base_backoff: Duration::from_millis(100),
                max_backoff: Duration::from_millis(500),
                ..HealthOptions::default()
            },
            ..TcpBackendOptions::default()
        },
    );
    let _prober = backend.spawn_prober(Duration::from_millis(200));
    let router = Arc::new(Router::new(
        backend.clone(),
        map,
        RouterConfig {
            alpha: config.alpha,
            delta: config.delta,
            num_nodes: n,
        },
        RouterOptions {
            cache_capacity: 0,
            ..RouterOptions::default()
        },
    ));
    let router_server = serve_router(
        router,
        TcpListener::bind("127.0.0.1:0").expect("bind router"),
    )
    .expect("start router");
    let router_addr = router_server.local_addr();
    let cluster_cold =
        run_closed_loop_socket(router_addr, &hubs, &queries, spec).expect("cluster cold");
    let cluster_warm =
        run_closed_loop_socket(router_addr, &hubs, &queries, spec).expect("cluster warm");
    print_pass("cluster cold", &cluster_cold);
    print_pass("cluster warm", &cluster_warm);
    let hedges = backend.hedges_sent();

    // Worst-shard p99 straight off each shard's stats wire op.
    let mut worst_shard_p99 = Duration::ZERO;
    for &addr in &addrs {
        let stats = Client::connect(addr)
            .expect("connect shard for stats")
            .stats()
            .expect("shard stats");
        worst_shard_p99 = worst_shard_p99.max(stats.recent_p99);
    }

    let ratio = cluster_warm.qps / single_warm.qps.max(1e-9);
    Table::new(vec!["topology", "pass", "qps", "p50 ms", "p99 ms"])
        .row(pass_row("single", "cold", &single_cold))
        .row(pass_row("single", "warm", &single_warm))
        .row(pass_row(
            &format!("router+{NUM_SHARDS}"),
            "cold",
            &cluster_cold,
        ))
        .row(pass_row(
            &format!("router+{NUM_SHARDS}"),
            "warm",
            &cluster_warm,
        ))
        .print("throughput, equal per-process budgets");
    println!(
        "warm cluster/single: {ratio:.2}x; worst shard p99 {:.2?}; {hedges} hedges sent",
        worst_shard_p99
    );

    // ------------------------------------------------------------------
    // Kill timeline: shut a shard down mid-run, revive it on its old
    // address, and bucket the router's client-visible outcomes.
    // ------------------------------------------------------------------
    println!(
        "kill timeline: shard {KILL_SHARD} down at {KILL_AT_S}s, back at {REVIVE_AT_S}s, \
         window {KILL_WINDOW_S}s"
    );
    // Uniform (unskewed, mostly uncached) queries so the outage is
    // visible as degraded answers, not cache hits.
    let mut rng = ChaCha8Rng::seed_from_u64(args.seed ^ 0xC1A5);
    let kill_queries: Vec<NodeId> = (0..4096).map(|_| rng.gen_range(0..n as NodeId)).collect();
    let window = Duration::from_secs_f64(KILL_WINDOW_S);
    let stop_flag = AtomicBool::new(false);
    let started = Instant::now();
    let outcomes: Vec<Vec<(Duration, Class)>> = std::thread::scope(|scope| {
        let senders: Vec<_> = (0..KILL_SENDERS)
            .map(|s| {
                let kill_queries = &kill_queries;
                let stop_flag = &stop_flag;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut client = Client::connect(router_addr).ok();
                    let mut i = s;
                    while !stop_flag.load(Ordering::Relaxed) {
                        let q = kill_queries[i % kill_queries.len()];
                        i += KILL_SENDERS;
                        let request = WireRequest::iterations(q, ETA_KILL).with_top_k(TOP_K);
                        let class = match client.as_mut().map(|c| c.request_one(request)) {
                            Some(Ok(WireResponse::Answer(a))) => {
                                assert!(
                                    (0.0..=1.0 + 1e-9).contains(&a.l1_error),
                                    "phi out of range: {}",
                                    a.l1_error
                                );
                                if a.degraded {
                                    Class::Degraded
                                } else {
                                    Class::Full
                                }
                            }
                            Some(Ok(r)) if r.retry_after().is_some() => Class::Shed,
                            // A typed Error response or a connection-level
                            // failure: both are the client-visible errors
                            // the router promises not to surface.
                            _ => {
                                client = Client::connect(router_addr).ok();
                                Class::Error
                            }
                        };
                        out.push((started.elapsed(), class));
                    }
                    out
                })
            })
            .collect();

        // Controller: kill, revive, end the window.
        std::thread::sleep(Duration::from_secs_f64(KILL_AT_S).saturating_sub(started.elapsed()));
        let (service, server, addr) = &mut shards[KILL_SHARD];
        server.take().expect("shard still up").shutdown();
        std::thread::sleep(Duration::from_secs_f64(REVIVE_AT_S).saturating_sub(started.elapsed()));
        let listener = TcpListener::bind(*addr).expect("rebind revived shard");
        *server = Some(serve_shard(service, listener));
        std::thread::sleep(window.saturating_sub(started.elapsed()));
        stop_flag.store(true, Ordering::Relaxed);
        senders
            .into_iter()
            .map(|h| h.join().expect("sender panicked"))
            .collect()
    });

    let num_buckets = (KILL_WINDOW_S * 1000.0 / BUCKET_MS as f64).ceil() as usize;
    let mut buckets = vec![Bucket::default(); num_buckets];
    for (at, class) in outcomes.iter().flatten() {
        let b = ((at.as_millis() as u64 / BUCKET_MS) as usize).min(num_buckets - 1);
        match class {
            Class::Full => buckets[b].answered += 1,
            Class::Degraded => {
                buckets[b].answered += 1;
                buckets[b].degraded += 1;
            }
            Class::Shed => buckets[b].shed += 1,
            Class::Error => buckets[b].errors += 1,
        }
    }
    let mut table = Table::new(vec!["t (s)", "answered", "degraded", "shed", "errors"]);
    for (i, b) in buckets.iter().enumerate() {
        table.row(vec![
            format!("{:.1}", (i as u64 * BUCKET_MS) as f64 / 1000.0),
            b.answered.to_string(),
            b.degraded.to_string(),
            b.shed.to_string(),
            b.errors.to_string(),
        ]);
    }
    table.print("kill timeline goodput");
    let errors_total: usize = buckets.iter().map(|b| b.errors).sum();
    let degraded_total: usize = buckets.iter().map(|b| b.degraded).sum();
    let answered_total: usize = buckets.iter().map(|b| b.answered).sum();

    // Recovery: a fresh full-accuracy answer must arrive post-revival.
    let recovery_started = Instant::now();
    let mut recovered = false;
    while recovery_started.elapsed() < Duration::from_secs(10) && !recovered {
        let q = rng.gen_range(0..n as NodeId);
        if let Ok(mut client) = Client::connect(router_addr) {
            if let Ok(WireResponse::Answer(a)) =
                client.request_one(WireRequest::iterations(q, ETA_KILL).with_top_k(TOP_K))
            {
                recovered = !a.degraded;
            }
        }
        if !recovered {
            std::thread::sleep(Duration::from_millis(100));
        }
    }
    println!(
        "kill window: {answered_total} answered ({degraded_total} degraded), \
         {errors_total} errors, recovered={recovered}"
    );

    let json = to_json(
        n,
        &graph,
        hub_count,
        &args,
        &single_cold,
        &single_warm,
        &cluster_cold,
        &cluster_warm,
        worst_shard_p99,
        hedges,
        &buckets,
        recovered,
    );
    std::fs::write("BENCH_cluster.json", json).expect("write BENCH_cluster.json");
    println!("wrote BENCH_cluster.json");
    router_server.shutdown();
}

/// Serves one shard with a short frame-stall timeout, so an in-bench
/// "kill" (`NetServer::shutdown`) severs the router's pooled
/// connections within a fraction of a second — approximating a killed
/// process instead of a drained one.
fn serve_shard(service: &Arc<QueryService<MemoryIndex>>, listener: TcpListener) -> NetServer {
    serve_with_options(
        Arc::clone(service),
        listener,
        NetOptions {
            frame_stall_timeout: Duration::from_millis(250),
            ..NetOptions::default()
        },
    )
    .expect("start shard front-end")
}

fn print_pass(label: &str, report: &ThroughputReport) {
    println!(
        "{label}: {:.0} QPS ({} queries, p50 {:.2?}, p99 {:.2?}, {} cache hits / {} misses)",
        report.qps, report.queries, report.p50, report.p99, report.cache_hits, report.cache_misses
    );
}

fn pass_row(topology: &str, pass: &str, report: &ThroughputReport) -> Vec<String> {
    vec![
        topology.to_string(),
        pass.to_string(),
        format!("{:.0}", report.qps),
        format!("{:.2}", report.p50.as_secs_f64() * 1e3),
        format!("{:.2}", report.p99.as_secs_f64() * 1e3),
    ]
}

#[allow(clippy::too_many_arguments)]
fn to_json(
    n: usize,
    graph: &fastppv_graph::Graph,
    hub_count: usize,
    args: &CommonArgs,
    single_cold: &ThroughputReport,
    single_warm: &ThroughputReport,
    cluster_cold: &ThroughputReport,
    cluster_warm: &ThroughputReport,
    worst_shard_p99: Duration,
    hedges: u64,
    buckets: &[Bucket],
    recovered: bool,
) -> String {
    let pass = |r: &ThroughputReport| {
        format!(
            "{{\"qps\": {:.3}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"cache_hits\": {}, \"cache_misses\": {}}}",
            r.qps,
            r.p50.as_secs_f64() * 1e3,
            r.p99.as_secs_f64() * 1e3,
            r.cache_hits,
            r.cache_misses
        )
    };
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"cluster\",\n");
    out.push_str(&format!("  \"dataset\": \"BA-{}k\",\n", n / 1000));
    out.push_str(&format!("  \"nodes\": {},\n", graph.num_nodes()));
    out.push_str(&format!("  \"edges\": {},\n", graph.num_edges()));
    out.push_str(&format!("  \"hubs\": {hub_count},\n"));
    out.push_str(&format!("  \"seed\": {},\n", args.seed));
    out.push_str(&format!("  \"num_shards\": {NUM_SHARDS},\n"));
    out.push_str(&format!("  \"workers_per_process\": {WORKERS},\n"));
    out.push_str(&format!(
        "  \"cache_entries_per_process\": {CACHE_PER_PROCESS},\n"
    ));
    out.push_str(&format!("  \"eta_throughput\": {ETA_THROUGHPUT},\n"));
    out.push_str(&format!("  \"eta_kill\": {ETA_KILL},\n"));
    out.push_str(&format!("  \"queries\": {},\n", args.queries));
    out.push_str(&format!("  \"single_cold\": {},\n", pass(single_cold)));
    out.push_str(&format!("  \"single_warm\": {},\n", pass(single_warm)));
    out.push_str(&format!("  \"cluster_cold\": {},\n", pass(cluster_cold)));
    out.push_str(&format!("  \"cluster_warm\": {},\n", pass(cluster_warm)));
    out.push_str(&format!(
        "  \"cluster_over_single_warm\": {:.4},\n",
        cluster_warm.qps / single_warm.qps.max(1e-9)
    ));
    out.push_str(&format!(
        "  \"worst_shard_p99_ms\": {:.3},\n",
        worst_shard_p99.as_secs_f64() * 1e3
    ));
    out.push_str(&format!("  \"hedges_sent\": {hedges},\n"));
    out.push_str("  \"kill\": {\n");
    out.push_str(&format!("    \"shard\": {KILL_SHARD},\n"));
    out.push_str(&format!("    \"kill_at_s\": {KILL_AT_S},\n"));
    out.push_str(&format!("    \"revive_at_s\": {REVIVE_AT_S},\n"));
    out.push_str(&format!("    \"window_s\": {KILL_WINDOW_S},\n"));
    out.push_str(&format!("    \"bucket_ms\": {BUCKET_MS},\n"));
    out.push_str("    \"buckets\": [\n");
    for (i, b) in buckets.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"t_s\": {:.1}, \"answered\": {}, \"degraded\": {}, \
             \"shed\": {}, \"errors\": {}}}{}\n",
            (i as u64 * BUCKET_MS) as f64 / 1000.0,
            b.answered,
            b.degraded,
            b.shed,
            b.errors,
            if i + 1 < buckets.len() { "," } else { "" }
        ));
    }
    out.push_str("    ],\n");
    out.push_str(&format!(
        "    \"answered_total\": {},\n",
        buckets.iter().map(|b| b.answered).sum::<usize>()
    ));
    out.push_str(&format!(
        "    \"degraded_total\": {},\n",
        buckets.iter().map(|b| b.degraded).sum::<usize>()
    ));
    out.push_str(&format!(
        "    \"errors_total\": {},\n",
        buckets.iter().map(|b| b.errors).sum::<usize>()
    ));
    out.push_str(&format!("    \"recovered\": {recovered}\n"));
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}
