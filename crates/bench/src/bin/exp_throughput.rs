//! Extension experiment: concurrent query service throughput.
//!
//! The paper evaluates single-query latency; a production deployment cares
//! about served queries per second under concurrent, skewed traffic. The
//! online phase is read-only, so one engine (graph + hub set + index) is
//! shared by every worker of the `fastppv-server` pool; this experiment
//! drives it closed-loop with a Zipf query mix and reports QPS, p50/p99
//! service latency, and speedup versus one worker — cache off (pure engine
//! scaling) and cache warm (steady-state serving).
//!
//! ```text
//! cargo run --release -p fastppv-bench --bin exp_throughput \
//!     [--scale F] [--queries N] [--seed S] [--threads T]
//! ```

use std::sync::Arc;

use fastppv_bench::cli::CommonArgs;
use fastppv_bench::datasets;
use fastppv_bench::driver::{run_closed_loop, RunSpec};
use fastppv_bench::table::Table;
use fastppv_bench::workload::sample_queries_zipf;
use fastppv_core::hubs::{select_hubs_with_pagerank, HubPolicy};
use fastppv_core::offline::build_index_parallel;
use fastppv_core::{Config, HubSet, MemoryIndex};
use fastppv_graph::gen::barabasi_albert;
use fastppv_graph::{pagerank, Graph, PageRankOptions};

/// Zipf exponent of the query mix (≈ web/social traffic skew).
const ZIPF_EXPONENT: f64 = 1.0;
/// Iteration budget η per request (the paper's default online setting).
const ETA: usize = 2;

struct WorkloadSpec {
    name: String,
    graph: Graph,
    hub_count: usize,
}

fn main() {
    let args = CommonArgs::parse(2000);
    println!("# Service throughput: closed-loop QPS vs worker threads");
    println!(
        "(host exposes {} core(s); speedup is bounded by that)",
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    );
    let mut specs = Vec::new();
    {
        let dataset = datasets::dblp(args.scale, args.seed);
        let hub_count = datasets::default_hub_count(&dataset);
        specs.push(WorkloadSpec {
            name: dataset.name.to_string(),
            graph: dataset.graph,
            hub_count,
        });
    }
    {
        let dataset = datasets::livejournal(args.scale, args.seed);
        let hub_count = datasets::default_hub_count(&dataset);
        specs.push(WorkloadSpec {
            name: dataset.name.to_string(),
            graph: dataset.graph,
            hub_count,
        });
    }
    // The acceptance workload: a 5k-node Barabási–Albert graph.
    {
        let n = ((5000.0 * args.scale) as usize).max(100);
        specs.push(WorkloadSpec {
            name: format!("BA-{}k", n / 1000),
            graph: barabasi_albert(n, 4, args.seed),
            hub_count: n / 25,
        });
    }

    let mut table = Table::new(vec![
        "workload", "cache", "workers", "queries", "wall", "QPS", "p50", "p99", "hit%", "speedup",
    ]);
    for spec in specs {
        let graph = Arc::new(spec.graph);
        println!(
            "\n## {}: {} nodes, {} edges, {} hubs",
            spec.name,
            graph.num_nodes(),
            graph.num_edges(),
            spec.hub_count
        );
        let pr = pagerank(&graph, PageRankOptions::default());
        let hubs: Arc<HubSet> = Arc::new(select_hubs_with_pagerank(
            &graph,
            HubPolicy::ExpectedUtility,
            spec.hub_count,
            0,
            Some(&pr),
        ));
        let config = Config::default().with_epsilon(1e-6);
        let (index, _) = build_index_parallel(&graph, &hubs, &config, args.threads);
        let store: Arc<MemoryIndex> = Arc::new(index);
        let queries = sample_queries_zipf(&graph, args.queries, ZIPF_EXPONENT, args.seed);

        for (cache_label, cache_capacity, warm) in
            [("off", 0usize, false), ("warm", 8192usize, true)]
        {
            let mut baseline_qps = 0.0;
            for workers in [1usize, 2, 4, 8] {
                let report = run_closed_loop(
                    &graph,
                    &hubs,
                    &store,
                    config,
                    &queries,
                    RunSpec {
                        eta: ETA,
                        workers,
                        cache_capacity,
                        warm_cache: warm,
                    },
                );
                if workers == 1 {
                    baseline_qps = report.qps;
                }
                let served = report.cache_hits + report.cache_misses;
                table.row(vec![
                    spec.name.clone(),
                    cache_label.to_string(),
                    workers.to_string(),
                    report.queries.to_string(),
                    format!("{:.2?}", report.wall),
                    format!("{:.0}", report.qps),
                    format!("{:.2?}", report.p50),
                    format!("{:.2?}", report.p99),
                    if served == 0 {
                        "-".to_string()
                    } else {
                        format!("{:.0}", 100.0 * report.cache_hits as f64 / served as f64)
                    },
                    format!("{:.2}x", report.qps / baseline_qps),
                ]);
            }
        }
    }
    table.print("Closed-loop service throughput — Zipf-skewed mix, shared read-only engine");
}
