//! Extension experiment: multi-threaded query throughput.
//!
//! The paper evaluates single-query latency; a production deployment cares
//! about served queries per second. FastPPV's online phase is read-only
//! over the graph + index, so engines parallelize trivially — this
//! experiment measures QPS scaling with worker threads on both datasets
//! (one engine per thread, shared index).
//!
//! ```text
//! cargo run --release -p fastppv-bench --bin exp_throughput [--scale F]
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use fastppv_bench::cli::CommonArgs;
use fastppv_bench::datasets::{self, DatasetKind};
use fastppv_bench::table::Table;
use fastppv_bench::workload::sample_queries;
use fastppv_core::hubs::select_hubs_with_pagerank;
use fastppv_core::hubs::HubPolicy;
use fastppv_core::offline::build_index_parallel;
use fastppv_core::query::{QueryEngine, StoppingCondition};
use fastppv_core::Config;
use fastppv_graph::{pagerank, PageRankOptions};

fn main() {
    let args = CommonArgs::parse(2000);
    println!("# Throughput: queries/second vs worker threads");
    println!(
        "(host exposes {} core(s); speedup is bounded by that)",
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    );
    let mut table = Table::new(vec![
        "dataset",
        "threads",
        "queries",
        "wall time",
        "QPS",
        "speedup",
    ]);
    for kind in [DatasetKind::Dblp, DatasetKind::LiveJournal] {
        let dataset = match kind {
            DatasetKind::Dblp => datasets::dblp(args.scale, args.seed),
            DatasetKind::LiveJournal => datasets::livejournal(args.scale, args.seed),
        };
        let graph = &dataset.graph;
        println!(
            "\n## {}: {} nodes, {} edges",
            dataset.name,
            graph.num_nodes(),
            graph.num_edges()
        );
        let pr = pagerank(graph, PageRankOptions::default());
        let hubs = select_hubs_with_pagerank(
            graph,
            HubPolicy::ExpectedUtility,
            datasets::default_hub_count(&dataset),
            0,
            Some(&pr),
        );
        let config = Config::default().with_epsilon(1e-6);
        let (index, _) = build_index_parallel(graph, &hubs, &config, args.threads);
        let queries = sample_queries(graph, args.queries, args.seed);
        let stop = StoppingCondition::iterations(2);

        let mut single_thread_qps = 0.0;
        for threads in [1usize, 2, 4, 8] {
            let next = AtomicUsize::new(0);
            let started = Instant::now();
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| {
                        let mut engine = QueryEngine::new(graph, &hubs, &index, config);
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= queries.len() {
                                break;
                            }
                            std::hint::black_box(engine.query(queries[i], &stop));
                        }
                    });
                }
            });
            let elapsed = started.elapsed();
            let qps = queries.len() as f64 / elapsed.as_secs_f64();
            if threads == 1 {
                single_thread_qps = qps;
            }
            table.row(vec![
                dataset.name.to_string(),
                threads.to_string(),
                queries.len().to_string(),
                format!("{:.2?}", elapsed),
                format!("{qps:.0}"),
                format!("{:.2}x", qps / single_thread_qps),
            ]);
        }
    }
    table.print("Query throughput — read-only online phase scales with threads");
}
