//! Extension experiment: concurrent query service throughput.
//!
//! The paper evaluates single-query latency; a production deployment cares
//! about served queries per second under concurrent, skewed traffic. The
//! online phase is read-only, so one engine (graph + hub set + index) is
//! shared by every worker of the `fastppv-server` pool; this experiment
//! drives it closed-loop with a Zipf query mix and reports QPS, p50/p99
//! service latency, and speedup versus one worker — cache off (pure engine
//! scaling) and cache warm (steady-state serving).
//!
//! The final section replays the acceptance workload **over the TCP
//! front-end** (`fastppv_server::net`) on a loopback socket: latencies are
//! client-side round trips, so framing and queueing effects are included,
//! split by hub / non-hub source — the regime split the in-process driver
//! reports, now as a remote caller sees it.
//!
//! ```text
//! cargo run --release -p fastppv-bench --bin exp_throughput \
//!     [--scale F] [--queries N] [--seed S] [--threads T]
//! ```

use std::sync::Arc;

use fastppv_bench::cli::CommonArgs;
use fastppv_bench::datasets;
use fastppv_bench::driver::{run_closed_loop, run_closed_loop_socket, RunSpec, SocketRunSpec};
use fastppv_bench::table::Table;
use fastppv_bench::workload::sample_queries_zipf;
use fastppv_core::hubs::{select_hubs_with_pagerank, HubPolicy};
use fastppv_core::offline::build_index_parallel;
use fastppv_core::{Config, HubSet, MemoryIndex};
use fastppv_graph::gen::barabasi_albert;
use fastppv_graph::{pagerank, Graph, PageRankOptions};
use fastppv_server::{net, QueryService, ServiceOptions};

/// Zipf exponent of the query mix (≈ web/social traffic skew).
const ZIPF_EXPONENT: f64 = 1.0;
/// Iteration budget η per request (the paper's default online setting).
const ETA: usize = 2;

struct WorkloadSpec {
    name: String,
    graph: Graph,
    hub_count: usize,
}

/// The deployment handles the socket section replays: graph, hubs, store,
/// and the Zipf query mix of the acceptance (BA) workload.
type SocketDeployment = (Arc<Graph>, Arc<HubSet>, Arc<MemoryIndex>, Vec<u32>);

fn main() {
    let args = CommonArgs::parse(2000);
    println!("# Service throughput: closed-loop QPS vs worker threads");
    println!(
        "(host exposes {} core(s); speedup is bounded by that)",
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    );
    let mut specs = Vec::new();
    {
        let dataset = datasets::dblp(args.scale, args.seed);
        let hub_count = datasets::default_hub_count(&dataset);
        specs.push(WorkloadSpec {
            name: dataset.name.to_string(),
            graph: dataset.graph,
            hub_count,
        });
    }
    {
        let dataset = datasets::livejournal(args.scale, args.seed);
        let hub_count = datasets::default_hub_count(&dataset);
        specs.push(WorkloadSpec {
            name: dataset.name.to_string(),
            graph: dataset.graph,
            hub_count,
        });
    }
    // The acceptance workload: a 5k-node Barabási–Albert graph.
    {
        let n = ((5000.0 * args.scale) as usize).max(100);
        specs.push(WorkloadSpec {
            name: format!("BA-{}k", n / 1000),
            graph: barabasi_albert(n, 4, args.seed),
            hub_count: n / 25,
        });
    }

    let mut table = Table::new(vec![
        "workload", "cache", "workers", "queries", "wall", "QPS", "p50", "p99", "hit%", "speedup",
    ]);
    // The acceptance (BA) deployment is kept for the socket section below.
    let mut socket_deployment: Option<SocketDeployment> = None;
    for spec in specs {
        let is_socket_workload = spec.name.starts_with("BA");
        let graph = Arc::new(spec.graph);
        println!(
            "\n## {}: {} nodes, {} edges, {} hubs",
            spec.name,
            graph.num_nodes(),
            graph.num_edges(),
            spec.hub_count
        );
        let pr = pagerank(&graph, PageRankOptions::default());
        let hubs: Arc<HubSet> = Arc::new(select_hubs_with_pagerank(
            &graph,
            HubPolicy::ExpectedUtility,
            spec.hub_count,
            0,
            Some(&pr),
        ));
        let config = Config::default().with_epsilon(1e-6);
        let (index, _) = build_index_parallel(&graph, &hubs, &config, args.threads);
        let store: Arc<MemoryIndex> = Arc::new(index);
        let queries = sample_queries_zipf(&graph, args.queries, ZIPF_EXPONENT, args.seed);
        if is_socket_workload {
            socket_deployment = Some((
                Arc::clone(&graph),
                Arc::clone(&hubs),
                Arc::clone(&store),
                queries.clone(),
            ));
        }

        for (cache_label, cache_capacity, warm) in
            [("off", 0usize, false), ("warm", 8192usize, true)]
        {
            let mut baseline_qps = 0.0;
            for workers in [1usize, 2, 4, 8] {
                let report = run_closed_loop(
                    &graph,
                    &hubs,
                    &store,
                    config,
                    &queries,
                    RunSpec {
                        eta: ETA,
                        workers,
                        cache_capacity,
                        warm_cache: warm,
                    },
                );
                if workers == 1 {
                    baseline_qps = report.qps;
                }
                let served = report.cache_hits + report.cache_misses;
                table.row(vec![
                    spec.name.clone(),
                    cache_label.to_string(),
                    workers.to_string(),
                    report.queries.to_string(),
                    format!("{:.2?}", report.wall),
                    format!("{:.0}", report.qps),
                    format!("{:.2?}", report.p50),
                    format!("{:.2?}", report.p99),
                    if served == 0 {
                        "-".to_string()
                    } else {
                        format!("{:.0}", 100.0 * report.cache_hits as f64 / served as f64)
                    },
                    format!("{:.2}x", report.qps / baseline_qps),
                ]);
            }
        }
    }
    table.print("Closed-loop service throughput — Zipf-skewed mix, shared read-only engine");

    // ----------------------------------------------------------------------
    // Socket section: the same closed loop, but through the TCP front-end.
    // ----------------------------------------------------------------------
    let (graph, hubs, store, queries) = socket_deployment.expect("BA workload always runs");
    println!(
        "\n## TCP front-end (loopback): client-side round trips, \
         queueing effects included"
    );
    let config = Config::default().with_epsilon(1e-6);
    let service = Arc::new(QueryService::new(
        Arc::clone(&graph),
        Arc::clone(&hubs),
        store,
        config,
        ServiceOptions {
            workers: args.threads,
            queue_capacity: 1024,
            cache_capacity: 0, // every round trip exercises the engine
        },
    ));
    let server = net::serve(
        service,
        std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback"),
    )
    .expect("start TCP front-end");
    let mut socket_table = Table::new(vec![
        "clients",
        "queries",
        "wall",
        "QPS",
        "p50",
        "p99",
        "hub q",
        "hub p50",
        "hub p99",
        "nonhub q",
        "nonhub p50",
        "nonhub p99",
    ]);
    for clients in [1usize, 2, 4] {
        let report = run_closed_loop_socket(
            server.local_addr(),
            &hubs,
            &queries,
            SocketRunSpec {
                eta: ETA,
                clients,
                top_k: 8,
            },
        )
        .expect("socket closed loop");
        socket_table.row(vec![
            clients.to_string(),
            report.queries.to_string(),
            format!("{:.2?}", report.wall),
            format!("{:.0}", report.qps),
            format!("{:.2?}", report.p50),
            format!("{:.2?}", report.p99),
            report.hub.queries.to_string(),
            format!("{:.2?}", report.hub.p50),
            format!("{:.2?}", report.hub.p99),
            report.nonhub.queries.to_string(),
            format!("{:.2?}", report.nonhub.p50),
            format!("{:.2?}", report.nonhub.p99),
        ]);
    }
    server.shutdown();
    socket_table
        .print("Socket closed loop — hub vs non-hub tail latency as a remote caller sees it");
}
