//! Robustness experiment: offered load past capacity must bend the
//! accuracy knob, not the latency knob.
//!
//! The serving stack's overload story is that φ — the certified L1 error
//! every answer carries — is the degradation lever: past the degrade
//! watermark admitted requests run fewer hub increments (looser φ,
//! still certified), and past the shed watermark requests get an
//! immediate typed `Overloaded { retry_after }` instead of queueing.
//! This experiment measures both claims end to end over the TCP
//! front-end on a loopback socket:
//!
//! 1. **Capacity**: closed-loop QPS of the plain service (no overload
//!    policy) — the denominator for every multiplier below.
//! 2. **Sweep**: open-loop *paced* offered load at 0.5×, 1×, 2×, and 5×
//!    capacity against an overload-aware service. Senders pace by
//!    wall-clock (catching up with bounded bursts when they fall
//!    behind), so the offered rate is honest even when the server pushes
//!    back. Per point: goodput (admitted/s, split full-φ vs degraded-φ),
//!    shed fraction, and the p50/p99 of *admitted* requests — queue wait
//!    included, measured by the service clock that also enforces the
//!    per-request deadline.
//!
//! The acceptance claim: at 5× capacity, admitted p99 stays under the
//! configured deadline and goodput stays ≥ 70% of capacity — the
//! goodput plateaus instead of collapsing. Writes `BENCH_overload.json`
//! (validated by CI's perf-smoke job).
//!
//! ```text
//! cargo run --release -p fastppv-bench --bin exp_overload \
//!     [--scale F] [--queries N] [--seed S] [--threads T]
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use fastppv_bench::cli::CommonArgs;
use fastppv_bench::table::Table;
use fastppv_bench::workload::sample_queries_zipf;
use fastppv_core::hubs::{select_hubs_with_pagerank, HubPolicy};
use fastppv_core::offline::build_index_parallel;
use fastppv_core::{Config, MemoryIndex};
use fastppv_graph::gen::barabasi_albert;
use fastppv_graph::{pagerank, NodeId, PageRankOptions};
use fastppv_server::net::{serve, Client, WireRequest};
use fastppv_server::{percentile, OverloadOptions, QueryService, ServiceOptions};

/// Iteration budget η per request when the service is not degrading.
const ETA: u32 = 2;
/// Top-k entries per answer: isolates serving cost from payload size.
const TOP_K: u32 = 8;
/// The latency SLO the run is judged against (admitted p99 ≤ this).
const SLO_MS: f64 = 50.0;
/// Per-request deadline on the wire, under the SLO so the increment
/// loop cuts early enough to leave head-room for framing and queueing.
const REQUEST_DEADLINE_MS: u32 = 40;
/// Offered-load duration per sweep point.
const POINT_SECONDS: f64 = 3.0;
/// Offered-load multipliers over measured capacity.
const MULTIPLIERS: [f64; 4] = [0.5, 1.0, 2.0, 5.0];
/// Paced senders per sweep point.
const SENDERS: usize = 2;
/// Largest catch-up burst a sender may emit in one frame.
const MAX_BURST: usize = 128;

/// One sweep point's tallies.
struct Point {
    multiplier: f64,
    offered: usize,
    admitted: usize,
    degraded: usize,
    shed: usize,
    errors: usize,
    wall: Duration,
    /// Service-clock latency of every admitted request (queue wait
    /// included — the same clock the deadline is enforced on).
    admitted_latency: Vec<Duration>,
}

impl Point {
    fn offered_qps(&self) -> f64 {
        self.offered as f64 / self.wall.as_secs_f64().max(1e-9)
    }
    fn goodput_qps(&self) -> f64 {
        self.admitted as f64 / self.wall.as_secs_f64().max(1e-9)
    }
    fn goodput_full_qps(&self) -> f64 {
        (self.admitted - self.degraded) as f64 / self.wall.as_secs_f64().max(1e-9)
    }
    fn goodput_degraded_qps(&self) -> f64 {
        self.degraded as f64 / self.wall.as_secs_f64().max(1e-9)
    }
    fn shed_fraction(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }
    fn p50_ms(&self) -> f64 {
        percentile(&self.admitted_latency, 0.50).as_secs_f64() * 1e3
    }
    fn p99_ms(&self) -> f64 {
        percentile(&self.admitted_latency, 0.99).as_secs_f64() * 1e3
    }
}

fn main() {
    let args = CommonArgs::parse(2000);
    let n = ((50_000.0 * args.scale) as usize).max(1000);
    let hub_count = n / 25;
    println!(
        "# Overload sweep: offered load past capacity, BA-{}k",
        n / 1000
    );

    let graph = Arc::new(barabasi_albert(n, 4, args.seed));
    println!(
        "graph: {} nodes, {} edges, {} hubs",
        graph.num_nodes(),
        graph.num_edges(),
        hub_count
    );
    let pr = pagerank(&graph, PageRankOptions::default());
    let hubs = Arc::new(select_hubs_with_pagerank(
        &graph,
        HubPolicy::ExpectedUtility,
        hub_count,
        0,
        Some(&pr),
    ));
    let config = Config::default().with_epsilon(1e-6);
    let build_started = Instant::now();
    let (index, _) = build_index_parallel(&graph, &hubs, &config, args.threads);
    println!("index built in {:.2?}", build_started.elapsed());
    let store: Arc<MemoryIndex> = Arc::new(index);
    let queries = sample_queries_zipf(&graph, args.queries, 1.0, args.seed);

    let service_options = ServiceOptions {
        workers: args.threads,
        queue_capacity: 1024,
        cache_capacity: 0, // every request exercises the engine
    };

    // ------------------------------------------------------------------
    // Capacity: closed-loop QPS of the *plain* service. This is the
    // denominator for every multiplier below.
    // ------------------------------------------------------------------
    let plain = Arc::new(QueryService::new(
        Arc::clone(&graph),
        Arc::clone(&hubs),
        Arc::clone(&store),
        config,
        service_options,
    ));
    let server = serve(
        plain,
        std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback"),
    )
    .expect("start plain front-end");
    let report = fastppv_bench::driver::run_closed_loop_socket(
        server.local_addr(),
        &hubs,
        &queries,
        fastppv_bench::driver::SocketRunSpec {
            eta: ETA as usize,
            clients: SENDERS,
            top_k: TOP_K,
        },
    )
    .expect("capacity closed loop");
    server.shutdown();
    let capacity_qps = report.qps;
    println!(
        "capacity: {capacity_qps:.0} QPS closed-loop ({} queries, p50 {:.2?}, p99 {:.2?})",
        report.queries, report.p50, report.p99
    );

    // ------------------------------------------------------------------
    // Sweep: paced offered load against the overload-aware service.
    // ------------------------------------------------------------------
    let overload = OverloadOptions {
        degrade_in_flight: (2 * args.threads).max(2),
        shed_in_flight: (8 * args.threads).max(8),
        degraded_max_iterations: 1,
        deadline_p99: Some(Duration::from_millis(SLO_MS as u64)),
        ..OverloadOptions::default()
    };
    let service = Arc::new(
        QueryService::new(
            Arc::clone(&graph),
            Arc::clone(&hubs),
            Arc::clone(&store),
            config,
            service_options,
        )
        .with_overload(overload),
    );
    let server = serve(
        service,
        std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback"),
    )
    .expect("start overload front-end");
    let addr = server.local_addr();

    let mut points: Vec<Point> = Vec::new();
    for multiplier in MULTIPLIERS {
        let rate = capacity_qps * multiplier;
        let target = ((rate * POINT_SECONDS) as usize).max(SENDERS * 10);
        let point = run_paced_point(addr, &queries, rate, target);
        println!(
            "{multiplier:>4.1}x: offered {:.0}/s, goodput {:.0}/s \
             ({:.0} full + {:.0} degraded), shed {:.1}%, \
             admitted p50 {:.1} ms p99 {:.1} ms",
            point.offered_qps(),
            point.goodput_qps(),
            point.goodput_full_qps(),
            point.goodput_degraded_qps(),
            100.0 * point.shed_fraction(),
            point.p50_ms(),
            point.p99_ms(),
        );
        points.push(Point {
            multiplier,
            ..point
        });
    }
    server.shutdown();

    let mut table = Table::new(vec![
        "offered",
        "offered/s",
        "goodput/s",
        "full/s",
        "degraded/s",
        "shed%",
        "p50 ms",
        "p99 ms",
    ]);
    for p in &points {
        table.row(vec![
            format!("{:.1}x", p.multiplier),
            format!("{:.0}", p.offered_qps()),
            format!("{:.0}", p.goodput_qps()),
            format!("{:.0}", p.goodput_full_qps()),
            format!("{:.0}", p.goodput_degraded_qps()),
            format!("{:.1}", 100.0 * p.shed_fraction()),
            format!("{:.1}", p.p50_ms()),
            format!("{:.1}", p.p99_ms()),
        ]);
    }
    table.print("Offered-load sweep — goodput must plateau, not collapse");

    let peak = points.last().expect("sweep ran");
    let goodput_vs_capacity = peak.goodput_qps() / capacity_qps.max(1e-9);
    println!(
        "\nat {}x: goodput is {:.0}% of capacity (acceptance: ≥ 70%), \
         admitted p99 {:.1} ms (SLO {SLO_MS} ms)",
        peak.multiplier,
        100.0 * goodput_vs_capacity,
        peak.p99_ms()
    );

    let json = to_json(
        n,
        &graph,
        hub_count,
        &args,
        capacity_qps,
        &overload,
        &points,
        goodput_vs_capacity,
    );
    std::fs::write("BENCH_overload.json", json).expect("write BENCH_overload.json");
    println!("wrote BENCH_overload.json");
}

/// One paced offered-load point: `SENDERS` connections jointly offer
/// `target` requests at `rate`/s. Each sender paces by wall-clock and
/// catches up with bounded bursts when a round trip put it behind
/// schedule, so aggregate offered rate tracks `rate` even under
/// push-back.
fn run_paced_point(
    addr: std::net::SocketAddr,
    queries: &[NodeId],
    rate: f64,
    target: usize,
) -> Point {
    let per_sender_rate = rate / SENDERS as f64;
    let point_started = Instant::now();
    let results: Vec<(usize, usize, usize, usize, usize, Vec<Duration>)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..SENDERS)
                .map(|s| {
                    scope.spawn(move || {
                        let mut client = Client::connect(addr).expect("connect sender");
                        let share = target / SENDERS + usize::from(s < target % SENDERS);
                        let mut sent = 0usize;
                        let (mut admitted, mut degraded, mut shed, mut errors) =
                            (0usize, 0usize, 0usize, 0usize);
                        let mut latencies = Vec::new();
                        let started = Instant::now();
                        while sent < share {
                            let due = ((started.elapsed().as_secs_f64() * per_sender_rate)
                                as usize)
                                .clamp(sent, share)
                                - sent;
                            if due == 0 {
                                std::thread::sleep(Duration::from_micros(500));
                                continue;
                            }
                            let burst = due.min(MAX_BURST);
                            let requests: Vec<WireRequest> = (0..burst)
                                .map(|i| {
                                    let q = queries[(s + (sent + i) * SENDERS) % queries.len()];
                                    WireRequest::iterations(q, ETA)
                                        .with_top_k(TOP_K)
                                        .with_deadline_ms(REQUEST_DEADLINE_MS)
                                })
                                .collect();
                            let responses =
                                client.request_batch(&requests).expect("sweep round trip");
                            for r in &responses {
                                if let Some(a) = r.answer() {
                                    admitted += 1;
                                    if a.degraded {
                                        degraded += 1;
                                    }
                                    latencies.push(a.latency);
                                } else if r.retry_after().is_some() {
                                    shed += 1;
                                } else {
                                    errors += 1;
                                }
                            }
                            sent += burst;
                        }
                        (sent, admitted, degraded, shed, errors, latencies)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sender panicked"))
                .collect()
        });
    let mut point = Point {
        multiplier: 0.0,
        offered: 0,
        admitted: 0,
        degraded: 0,
        shed: 0,
        errors: 0,
        wall: point_started.elapsed(),
        admitted_latency: Vec::new(),
    };
    for (sent, admitted, degraded, shed, errors, latencies) in results {
        point.offered += sent;
        point.admitted += admitted;
        point.degraded += degraded;
        point.shed += shed;
        point.errors += errors;
        point.admitted_latency.extend(latencies);
    }
    assert_eq!(
        point.offered,
        point.admitted + point.shed + point.errors,
        "every offered request is admitted, shed, or errored"
    );
    point
}

/// Hand-rolled JSON (the environment vendors no serde). The top-level
/// convenience keys repeat the 5× (last) sweep point — they are what
/// CI's perf-smoke validates.
#[allow(clippy::too_many_arguments)]
fn to_json(
    n: usize,
    graph: &fastppv_graph::Graph,
    hub_count: usize,
    args: &CommonArgs,
    capacity_qps: f64,
    overload: &OverloadOptions,
    points: &[Point],
    goodput_vs_capacity: f64,
) -> String {
    let peak = points.last().expect("sweep ran");
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"overload\",\n");
    out.push_str(&format!("  \"dataset\": \"BA-{}k\",\n", n / 1000));
    out.push_str(&format!("  \"nodes\": {},\n", graph.num_nodes()));
    out.push_str(&format!("  \"edges\": {},\n", graph.num_edges()));
    out.push_str(&format!("  \"hubs\": {hub_count},\n"));
    out.push_str(&format!("  \"seed\": {},\n", args.seed));
    out.push_str(&format!("  \"workers\": {},\n", args.threads));
    out.push_str(&format!("  \"eta\": {ETA},\n"));
    out.push_str(&format!("  \"deadline_ms\": {SLO_MS},\n"));
    out.push_str(&format!(
        "  \"request_deadline_ms\": {REQUEST_DEADLINE_MS},\n"
    ));
    out.push_str(&format!(
        "  \"degrade_in_flight\": {},\n",
        overload.degrade_in_flight
    ));
    out.push_str(&format!(
        "  \"shed_in_flight\": {},\n",
        overload.shed_in_flight
    ));
    out.push_str(&format!("  \"capacity_qps\": {capacity_qps:.3},\n"));
    out.push_str("  \"sweep\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"multiplier\": {}, \"offered\": {}, \"offered_qps\": {:.3}, \
             \"admitted\": {}, \"degraded\": {}, \"shed\": {}, \"errors\": {}, \
             \"goodput_qps\": {:.3}, \"goodput_full_qps\": {:.3}, \
             \"goodput_degraded_qps\": {:.3}, \"shed_fraction\": {:.6}, \
             \"p50_admitted_ms\": {:.3}, \"p99_admitted_ms\": {:.3}}}{}\n",
            p.multiplier,
            p.offered,
            p.offered_qps(),
            p.admitted,
            p.degraded,
            p.shed,
            p.errors,
            p.goodput_qps(),
            p.goodput_full_qps(),
            p.goodput_degraded_qps(),
            p.shed_fraction(),
            p.p50_ms(),
            p.p99_ms(),
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"peak_multiplier\": {},\n", peak.multiplier));
    out.push_str(&format!("  \"goodput_qps\": {:.3},\n", peak.goodput_qps()));
    out.push_str(&format!(
        "  \"goodput_degraded\": {:.3},\n",
        peak.goodput_degraded_qps()
    ));
    out.push_str(&format!(
        "  \"shed_fraction\": {:.6},\n",
        peak.shed_fraction()
    ));
    out.push_str(&format!("  \"p99_admitted_ms\": {:.3},\n", peak.p99_ms()));
    out.push_str(&format!(
        "  \"goodput_vs_capacity\": {goodput_vs_capacity:.4}\n"
    ));
    out.push_str("}\n");
    out
}
