//! Figures 13, 14 and 15: scaling to larger graphs.
//!
//! * Fig. 13 — the growing-graph series: DBLP snapshots by year and
//!   LiveJournal samples S1–S5 by edge-prefix;
//! * Fig. 14 — near-constant online query time across the series, achieved
//!   by growing |H| with the graph, with accuracy held steady;
//! * Fig. 15 — offline space and time grow (near-)linearly in graph size
//!   (nodes + edges), the cost of keeping online time flat.
//!
//! ```text
//! cargo run --release -p fastppv-bench --bin exp_scalability [--scale F]
//! ```

use fastppv_bench::cli::CommonArgs;
use fastppv_bench::datasets;
use fastppv_bench::runner::{build_fastppv, eval_fastppv};
use fastppv_bench::table::{fmt_mb, fmt_ms, fmt_s, Table};
use fastppv_bench::workload::{ground_truth, sample_queries};
use fastppv_core::hubs::HubPolicy;
use fastppv_core::query::StoppingCondition;
use fastppv_core::Config;
use fastppv_graph::gen::evolve::sample_prefix;
use fastppv_graph::{pagerank, Graph, PageRankOptions};

fn main() {
    let args = CommonArgs::parse(30);
    println!("# Fig. 13–15: scalability on growing graphs");

    let mut fig13 = Table::new(vec!["series", "label", "nodes", "edges"]);
    let mut fig14 = Table::new(vec![
        "series",
        "label",
        "|H|",
        "Kendall",
        "Precision",
        "RAG",
        "L1 sim",
        "time/query",
    ]);
    let mut fig15 = Table::new(vec![
        "series",
        "label",
        "nodes+edges",
        "total space",
        "total time",
    ]);

    // --- DBLP snapshots by year (Fig. 13a), |H| = 4% of each snapshot.
    let dblp = datasets::dblp(args.scale, args.seed);
    let bib = dblp.bib.as_ref().expect("dblp dataset has bib data");
    for year in [1994u16, 1998, 2002, 2006, 2010] {
        let (snap, _) = bib.snapshot(year);
        run_point(
            &args,
            &mut fig13,
            &mut fig14,
            &mut fig15,
            "DBLP-like",
            &year.to_string(),
            &snap.graph,
            ((snap.graph.num_nodes() as f64) * 0.04) as usize,
        );
    }

    // --- LiveJournal samples S1..S5 by edge prefix (Fig. 13b),
    //     |H| = 12.5% of each sample.
    let lj = datasets::livejournal(args.scale, args.seed);
    let social = lj.social.as_ref().expect("lj dataset has social data");
    let m = social.edges.len();
    for (i, frac) in [0.16, 0.34, 0.52, 0.76, 1.0].iter().enumerate() {
        let (graph, _) = sample_prefix(&social.edges, (m as f64 * frac) as usize);
        run_point(
            &args,
            &mut fig13,
            &mut fig14,
            &mut fig15,
            "LiveJournal-like",
            &format!("S{}", i + 1),
            &graph,
            ((graph.num_nodes() as f64) * 0.125) as usize,
        );
    }

    fig13.print("Fig. 13 — growing-graph series");
    fig14.print(
        "Fig. 14 — near-constant online time via growing |H| \
         (paper: ~15ms DBLP / ~29ms LJ at every size)",
    );
    fig15.print("Fig. 15 — offline costs vs graph size (paper: linear growth)");
}

#[allow(clippy::too_many_arguments)]
fn run_point(
    args: &CommonArgs,
    fig13: &mut Table,
    fig14: &mut Table,
    fig15: &mut Table,
    series: &str,
    label: &str,
    graph: &Graph,
    hub_count: usize,
) {
    println!(
        "{series} {label}: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );
    fig13.row(vec![
        series.to_string(),
        label.to_string(),
        graph.num_nodes().to_string(),
        graph.num_edges().to_string(),
    ]);
    let pr = pagerank(graph, PageRankOptions::default());
    let queries = sample_queries(graph, args.queries, args.seed);
    let truth = ground_truth(graph, &queries);
    let setup = build_fastppv(
        graph,
        hub_count,
        Config::default().with_epsilon(1e-6),
        HubPolicy::ExpectedUtility,
        args.threads,
        Some(&pr),
    );
    let row = eval_fastppv(
        graph,
        &setup,
        &queries,
        &truth,
        &StoppingCondition::iterations(2),
    );
    fig14.row(vec![
        series.to_string(),
        label.to_string(),
        hub_count.to_string(),
        format!("{:.4}", row.accuracy.kendall),
        format!("{:.4}", row.accuracy.precision),
        format!("{:.4}", row.accuracy.rag),
        format!("{:.4}", row.accuracy.l1_similarity),
        fmt_ms(row.online_per_query),
    ]);
    fig15.row(vec![
        series.to_string(),
        label.to_string(),
        (graph.num_nodes() + graph.num_edges()).to_string(),
        fmt_mb(row.offline_bytes),
        fmt_s(row.offline_time),
    ]);
}
