//! Figures 8 and 9: effect of the hub selection policy.
//!
//! Compares expected utility (the paper's Eq. 7) against PageRank-only and
//! out-degree-only selection (plus in-degree and random as extra ablations)
//! on both the online phase (Fig. 8: accuracy + query time) and the offline
//! phase (Fig. 9: space + precompute time). The paper finds expected
//! utility equal-or-better on accuracy while 1.2–2.4× faster online and
//! 1.3–1.7× faster offline than the second-best policy, with larger gaps on
//! the directed LiveJournal.
//!
//! ```text
//! cargo run --release -p fastppv-bench --bin exp_hub_policy [--scale F]
//! ```

use fastppv_bench::cli::CommonArgs;
use fastppv_bench::datasets::{self, DatasetKind};
use fastppv_bench::runner::{build_fastppv, eval_fastppv};
use fastppv_bench::table::{fmt_mb, fmt_ms, fmt_s, Table};
use fastppv_bench::workload::{ground_truth, sample_queries};
use fastppv_core::hubs::HubPolicy;
use fastppv_core::query::StoppingCondition;
use fastppv_core::Config;
use fastppv_graph::{pagerank, PageRankOptions};

fn main() {
    let args = CommonArgs::parse(40);
    println!("# Fig. 8–9: effect of hub selection policy");
    let policies = [
        HubPolicy::ExpectedUtility,
        HubPolicy::PageRank,
        HubPolicy::OutDegree,
        HubPolicy::InDegree,
        HubPolicy::Random,
    ];
    let mut fig8 = Table::new(vec![
        "dataset",
        "policy",
        "Kendall",
        "Precision",
        "RAG",
        "L1 sim",
        "time/query",
    ]);
    let mut fig9 = Table::new(vec!["dataset", "policy", "offline space", "offline time"]);
    for kind in [DatasetKind::Dblp, DatasetKind::LiveJournal] {
        let dataset = match kind {
            DatasetKind::Dblp => datasets::dblp(args.scale, args.seed),
            DatasetKind::LiveJournal => datasets::livejournal(args.scale, args.seed),
        };
        let graph = &dataset.graph;
        println!(
            "\n## {}: {} nodes, {} edges",
            dataset.name,
            graph.num_nodes(),
            graph.num_edges()
        );
        let pr = pagerank(graph, PageRankOptions::default());
        let queries = sample_queries(graph, args.queries, args.seed);
        let truth = ground_truth(graph, &queries);
        let hub_count = datasets::default_hub_count(&dataset);
        // η = 2 default, as in the paper's policy study.
        let stop = StoppingCondition::iterations(2);
        for policy in policies {
            let setup = build_fastppv(
                graph,
                hub_count,
                Config::default().with_epsilon(1e-6),
                policy,
                args.threads,
                Some(&pr),
            );
            let row = eval_fastppv(graph, &setup, &queries, &truth, &stop);
            fig8.row(vec![
                dataset.name.to_string(),
                policy.name().to_string(),
                format!("{:.4}", row.accuracy.kendall),
                format!("{:.4}", row.accuracy.precision),
                format!("{:.4}", row.accuracy.rag),
                format!("{:.4}", row.accuracy.l1_similarity),
                fmt_ms(row.online_per_query),
            ]);
            fig9.row(vec![
                dataset.name.to_string(),
                policy.name().to_string(),
                fmt_mb(row.offline_bytes),
                fmt_s(row.offline_time),
            ]);
        }
    }
    fig8.print("Fig. 8 — hub policy: online accuracy and query time");
    fig9.print("Fig. 9 — hub policy: offline precomputation costs");
}
