//! Streaming-update experiment: delta-patched index maintenance under a
//! live serving load.
//!
//! Streams seeded single-edge insert/delete events into a serving
//! [`QueryService`] whose refreshes run the delta-propagation path with a
//! per-hub error budget, and measures what the delta path is for: the
//! sustained edge-events/s against the full-recompute baseline (same
//! events, budget 0), the certified budget watermark of every published
//! answer, and the serve-path p99 interference while updates stream.
//! Writes `BENCH_update.json`.
//!
//! ```text
//! cargo run --release -p fastppv-bench --bin exp_update \
//!     [--scale F] [--queries N] [--seed S] [--threads T] [--out FILE] \
//!     [--events N] [--exact-events N] [--budget F]
//! ```
//!
//! `--scale 0.02` is the CI smoke mode (BA-1k, a few seconds). Only the
//! `apply_update` call is timed on both sides — the per-event CSR rebuild
//! is workload synthesis, excluded identically from delta and baseline.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fastppv_bench::cli::CommonArgs;
use fastppv_bench::table::Table;
use fastppv_bench::update::UpdateReport;
use fastppv_bench::workload::sample_queries_zipf;
use fastppv_core::hubs::{select_hubs_with_pagerank, HubPolicy};
use fastppv_core::index::FlatIndex;
use fastppv_core::offline::build_index_parallel;
use fastppv_core::{Config, DeltaConfig, HubSet, PpvStore};
use fastppv_graph::gen::{apply_event, barabasi_albert, synth_events};
use fastppv_graph::NodeId;
use fastppv_server::{LatencySummary, QueryService, Request, ServiceOptions};

/// Zipf exponent of the query mix (≈ web/social traffic skew).
const ZIPF_EXPONENT: f64 = 1.0;
/// Iteration budget η per request (the paper's default online setting).
const ETA: usize = 2;
/// Fraction of events that delete a live edge.
const DELETE_FRACTION: f64 = 0.2;

struct ExtraArgs {
    out_path: String,
    events: usize,
    exact_events: usize,
    budget: f64,
}

/// Peels the experiment-specific flags off before [`CommonArgs`] sees the
/// rest (unknown flags are a hard error there).
fn peel_extra(raw: &mut Vec<String>) -> ExtraArgs {
    let mut extra = ExtraArgs {
        out_path: String::from("BENCH_update.json"),
        events: 300,
        exact_events: 10,
        budget: 0.01,
    };
    let mut take = |flag: &str| -> Option<String> {
        let i = raw.iter().position(|a| a == flag)?;
        raw.remove(i);
        if i < raw.len() {
            Some(raw.remove(i))
        } else {
            eprintln!("missing value for {flag}");
            std::process::exit(2);
        }
    };
    if let Some(v) = take("--out") {
        extra.out_path = v;
    }
    if let Some(v) = take("--events") {
        extra.events = v.parse().expect("--events takes a count");
    }
    if let Some(v) = take("--exact-events") {
        extra.exact_events = v.parse().expect("--exact-events takes a count");
    }
    if let Some(v) = take("--budget") {
        extra.budget = v.parse().expect("--budget takes a float");
    }
    assert!(extra.budget > 0.0, "the delta path needs a positive budget");
    extra
}

/// One closed serving loop over `queries`, recording service-side
/// latencies, until the list is exhausted (`stop` is None) or the updater
/// raises the flag (`stop` is Some — the list repeats).
fn serve_loop(
    service: &QueryService<FlatIndex>,
    queries: &[NodeId],
    stop: Option<&AtomicBool>,
) -> Vec<Duration> {
    let mut latencies = Vec::with_capacity(queries.len());
    loop {
        for &q in queries {
            if stop.is_some_and(|s| s.load(Ordering::Relaxed)) {
                return latencies;
            }
            let resp = service.query(Request::iterations(q, ETA));
            latencies.push(resp.latency);
        }
        if stop.is_none() {
            return latencies;
        }
    }
}

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let extra = peel_extra(&mut raw);
    let args = CommonArgs::parse_from(raw, 400);

    let n = ((50_000.0 * args.scale) as usize).max(200);
    let dataset = format!("BA-{}k", (n as f64 / 1000.0).round().max(1.0) as usize);
    println!(
        "# Streaming updates: delta-patched refresh vs full recompute ({dataset}, \
         {} events, budget {})",
        extra.events, extra.budget
    );
    let graph = Arc::new(barabasi_albert(n, 4, args.seed));
    let hub_count = n / 25;
    let pr = fastppv_graph::pagerank(&graph, fastppv_graph::PageRankOptions::default());
    let hubs: Arc<HubSet> = Arc::new(select_hubs_with_pagerank(
        &graph,
        HubPolicy::ExpectedUtility,
        hub_count,
        0,
        Some(&pr),
    ));
    let config = Config::default().with_epsilon(1e-6);

    let build_started = Instant::now();
    let (memory, stats) = build_index_parallel(&graph, &hubs, &config, args.threads);
    let flat = FlatIndex::from_memory(&memory, &hubs);
    println!(
        "built |H| = {} ({} entries) in {:.2?}",
        stats.hubs,
        stats.total_entries,
        build_started.elapsed()
    );

    // Open-path timing: the single-file arena (mmap, zero-copy) against
    // the record-format deserialize path, over the same index.
    let tmp = std::env::temp_dir();
    let arena_path = tmp.join(format!("fastppv-exp-update-{}.fppv3", std::process::id()));
    let record_path = tmp.join(format!("fastppv-exp-update-{}.fppv", std::process::id()));
    flat.write_to_file(&arena_path).expect("write arena file");
    memory
        .write_to_file(&record_path)
        .expect("write record file");
    drop(memory);
    let started = Instant::now();
    let opened = FlatIndex::open(&arena_path).expect("open arena");
    let open = started.elapsed();
    let started = Instant::now();
    let disk = fastppv_core::DiskIndex::open(&record_path, 4096).expect("open record file");
    let deserialized = FlatIndex::from_store(graph.num_nodes(), &disk, &disk.hub_ids(), &hubs);
    let open_deserialize = started.elapsed();
    drop(disk);
    drop(deserialized);
    // The mmap-opened arena must answer bit-identically to the built one.
    for &h in hubs.ids().iter().step_by((hubs.len() / 64).max(1)) {
        assert_eq!(opened.load(h), flat.load(h), "hub {h} differs after open");
    }
    drop(opened);
    std::fs::remove_file(&arena_path).ok();
    std::fs::remove_file(&record_path).ok();
    println!(
        "open: arena {open:.2?} vs deserialize {open_deserialize:.2?} ({:.1}x)",
        open_deserialize.as_secs_f64() / open.as_secs_f64().max(1e-9)
    );

    let options = ServiceOptions {
        workers: args.threads.max(1),
        queue_capacity: 1024,
        cache_capacity: 0, // measure engine latency, not cache hits
    };
    let delta_service = Arc::new(
        QueryService::new(
            graph.clone(),
            hubs.clone(),
            Arc::new(flat.clone()),
            config,
            options,
        )
        .with_delta_config(DeltaConfig::default().with_budget(extra.budget)),
    );
    let exact_service =
        QueryService::new(graph.clone(), hubs.clone(), Arc::new(flat), config, options);

    // Quiet serving baseline: the same closed loop the interference phase
    // runs, with no updates competing.
    let queries = sample_queries_zipf(&graph, args.queries, ZIPF_EXPONENT, args.seed);
    let mut quiet = serve_loop(&delta_service, &queries, None);
    let serve_quiet = LatencySummary::of_mut(&mut quiet);

    // Delta phase: stream every event through the serving delta service
    // while a background thread keeps querying it.
    let events = synth_events(&graph, extra.events, DELETE_FRACTION, args.seed + 1);
    let stop = Arc::new(AtomicBool::new(false));
    let server = {
        let service = delta_service.clone();
        let queries = queries.clone();
        let stop = stop.clone();
        std::thread::spawn(move || serve_loop(&service, &queries, Some(&stop)))
    };
    let mut delta_wall = Duration::ZERO;
    let mut clone_wall = Duration::ZERO;
    let (mut dirty_hubs, mut delta_patched, mut delta_noop) = (0usize, 0usize, 0usize);
    let (mut recomputed, mut reused) = (0usize, 0usize);
    let (mut cloned_bytes, mut cloned_bytes_max_event) = (0u64, 0u64);
    let mut budget_watermark = 0.0f64;
    let mut cur = delta_service.graph();
    for ev in &events {
        let next = apply_event(&cur, ev);
        let started = Instant::now();
        let stats = delta_service.apply_update(next, &[ev.tail]);
        delta_wall += started.elapsed();
        clone_wall += stats.clone_elapsed;
        dirty_hubs += stats.dirty();
        delta_patched += stats.delta_patched;
        delta_noop += stats.delta_noop;
        recomputed += stats.recomputed;
        reused += stats.reused;
        cloned_bytes += stats.cloned_bytes;
        cloned_bytes_max_event = cloned_bytes_max_event.max(stats.cloned_bytes);
        budget_watermark = budget_watermark.max(stats.budget_watermark);
        cur = delta_service.graph();
    }
    stop.store(true, Ordering::Relaxed);
    let mut updating = server.join().expect("serving thread");
    let serve_updating = LatencySummary::of_mut(&mut updating);
    assert!(
        budget_watermark <= extra.budget,
        "watermark {budget_watermark} exceeds the configured budget"
    );

    // Exact baseline: replay a prefix of the same events through an
    // identical service whose refreshes recompute every dirty hub.
    let exact_events = extra.exact_events.min(events.len());
    let mut exact_wall = Duration::ZERO;
    let mut exact_cur = exact_service.graph();
    for ev in &events[..exact_events] {
        let next = apply_event(&exact_cur, ev);
        let started = Instant::now();
        exact_service.apply_update(next, &[ev.tail]);
        exact_wall += started.elapsed();
        exact_cur = exact_service.graph();
    }

    // Accuracy: max per-hub L1 between the streamed store and a fresh
    // exact build of the final graph. The certified bound is the budget
    // watermark; this adds the ε-frontier difference between patching on
    // the full graph and a fresh ε-pruned extraction.
    let final_graph = delta_service.graph();
    let (rebuilt, _) =
        fastppv_core::offline::build_flat_index(&final_graph, &hubs, &config, args.threads);
    let streamed = delta_service.store();
    let mut max_rebuild_l1 = 0.0f64;
    for &h in hubs.ids() {
        let a = streamed.load(h).expect("streamed hub ppv");
        let b = rebuilt.load(h).expect("rebuilt hub ppv");
        let mut diff = 0.0;
        let (mut i, mut j) = (0, 0);
        let (ae, be) = (a.entries.entries(), b.entries.entries());
        while i < ae.len() || j < be.len() {
            match (ae.get(i), be.get(j)) {
                (Some(&(v, s)), Some(&(w, t))) if v == w => {
                    diff += (s - t).abs();
                    i += 1;
                    j += 1;
                }
                (Some(&(v, s)), Some(&(w, _))) if v < w => {
                    diff += s.abs();
                    i += 1;
                }
                (Some(_), Some(&(_, t))) => {
                    diff += t.abs();
                    j += 1;
                }
                (Some(&(_, s)), None) => {
                    diff += s.abs();
                    i += 1;
                }
                (None, Some(&(_, t))) => {
                    diff += t.abs();
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        max_rebuild_l1 = max_rebuild_l1.max(diff);
    }

    let report = UpdateReport {
        dataset,
        nodes: graph.num_nodes(),
        edges_initial: graph.num_edges(),
        edges_final: final_graph.num_edges(),
        hubs: hubs.len(),
        seed: args.seed,
        budget: extra.budget,
        delete_fraction: DELETE_FRACTION,
        events_delta: events.len(),
        delta_wall,
        events_exact: exact_events,
        exact_wall,
        dirty_hubs,
        delta_patched,
        delta_noop,
        recomputed,
        reused,
        budget_watermark,
        clone_wall,
        cloned_bytes,
        cloned_bytes_max_event,
        arena_bytes: streamed.arena_bytes(),
        resident_bytes: streamed.resident_bytes(),
        mapped_bytes: streamed.mapped_bytes(),
        open,
        open_deserialize,
        noop_update_skips: delta_service.cache_stats().noop_update_skips,
        serve_quiet,
        serve_updating,
        max_rebuild_l1,
    };

    let mut table = Table::new(vec!["path", "events", "wall", "events/s"]);
    table.row(vec![
        "delta".into(),
        report.events_delta.to_string(),
        format!("{:.2?}", report.delta_wall),
        format!("{:.1}", report.events_per_s_delta()),
    ]);
    table.row(vec![
        "exact".into(),
        report.events_exact.to_string(),
        format!("{:.2?}", report.exact_wall),
        format!("{:.1}", report.events_per_s_exact()),
    ]);
    table.print("Streaming updates while serving (apply_update wall-clock only)");
    println!(
        "speedup {:.1}x | dirty {} = patched {} (noop {}) + recomputed {} | \
         watermark {:.2e} of budget {} | rebuild L1 {:.2e}",
        report.speedup(),
        report.dirty_hubs,
        report.delta_patched,
        report.delta_noop,
        report.recomputed,
        report.budget_watermark,
        report.budget,
        report.max_rebuild_l1,
    );
    println!(
        "serve p99: quiet {:.2?} ({} queries) vs updating {:.2?} ({} queries)",
        report.serve_quiet.p99,
        report.serve_quiet.queries,
        report.serve_updating.p99,
        report.serve_updating.queries,
    );
    println!(
        "publish: clone wall {:.2?}, {} bytes copied total (max {} per event) \
         of a {} byte arena; final store {} bytes resident, {} mapped",
        report.clone_wall,
        report.cloned_bytes,
        report.cloned_bytes_max_event,
        report.arena_bytes,
        report.resident_bytes,
        report.mapped_bytes,
    );

    std::fs::write(&extra.out_path, report.to_json()).expect("write BENCH json");
    println!("\nwrote {}", extra.out_path);
}
