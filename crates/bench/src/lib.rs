//! Benchmark harness reproducing the FastPPV paper's evaluation (§6).
//!
//! One binary per paper exhibit lives in `src/bin/` (see `DESIGN.md` §5 for
//! the exhibit → binary map); this library holds what they share:
//!
//! * [`datasets`] — the DBLP-like and LiveJournal-like default graphs (the
//!   substitution for the paper's datasets, scaled for a laptop);
//! * [`workload`] — seeded test-query sampling (uniform and Zipf-skewed)
//!   and parallel ground truth;
//! * [`driver`] — closed-loop throughput driver over the `fastppv-server`
//!   query service (QPS, p50/p99 latency, cache hit rates);
//! * [`hotpath`] — deterministic result digests and the
//!   `BENCH_hotpath.json` report shared with `exp_hotpath`;
//! * [`update`] — the `BENCH_update.json` report shared with `exp_update`
//!   (streaming delta-patched maintenance vs full recompute);
//! * [`runner`] — offline+online evaluation of FastPPV and both baselines,
//!   producing method rows (time, space, four accuracy metrics);
//! * [`configs`] — the four accuracy-moderated configurations (Fig. 5);
//! * [`table`] — fixed-width table printing with paper-vs-measured columns;
//! * [`cli`] — the tiny `--scale`/`--queries` argument parser the binaries
//!   share.

pub mod cli;
pub mod configs;
pub mod datasets;
pub mod driver;
pub mod hotpath;
pub mod runner;
pub mod table;
pub mod update;
pub mod workload;

pub use datasets::{dblp, livejournal, Dataset};
pub use runner::{eval_fastppv, eval_hubrank, eval_montecarlo, FastPpvSetup, MethodRow};
pub use workload::{ground_truth, sample_queries};
