//! Fixed-width table output for experiment binaries.
//!
//! Every experiment prints paper-style tables to stdout; [`Table`] keeps the
//! formatting consistent and `EXPERIMENTS.md`-ready (the output doubles as
//! GitHub-flavored markdown).

/// A simple markdown-compatible table builder.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders as aligned markdown.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            out.push('|');
            for i in 0..cols {
                out.push(' ');
                out.push_str(&format!("{:<w$}", cells[i], w = widths[i]));
                out.push_str(" |");
            }
            out.push('\n');
        };
        emit(&mut out, &self.headers);
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<w$}", "", w = w + 2));
            out.push('|');
        }
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }

    /// Prints to stdout with a title.
    pub fn print(&self, title: &str) {
        println!("\n### {title}\n");
        print!("{}", self.render());
    }
}

/// Formats a duration in the unit the paper uses for the context.
pub fn fmt_ms(d: std::time::Duration) -> String {
    format!("{:.2} ms", d.as_secs_f64() * 1e3)
}

/// Seconds with two decimals.
pub fn fmt_s(d: std::time::Duration) -> String {
    format!("{:.2} s", d.as_secs_f64())
}

/// Mebibytes with two decimals.
pub fn fmt_mb(bytes: usize) -> String {
    format!("{:.2} MB", bytes as f64 / (1024.0 * 1024.0))
}

/// A ratio like `4.3x`.
pub fn fmt_ratio(num: f64, den: f64) -> String {
    if den == 0.0 {
        "n/a".to_string()
    } else {
        format!("{:.1}x", num / den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]).row(vec!["longer", "22"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("| name"));
        assert!(lines[1].starts_with("|---"));
        // All lines equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn rejects_ragged_rows() {
        Table::new(vec!["a", "b"]).row(vec!["only one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_ms(std::time::Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_s(std::time::Duration::from_millis(2500)), "2.50 s");
        assert_eq!(fmt_mb(1024 * 1024), "1.00 MB");
        assert_eq!(fmt_ratio(9.0, 2.0), "4.5x");
        assert_eq!(fmt_ratio(1.0, 0.0), "n/a");
    }
}
