//! Minimal shared argument parsing for the experiment binaries.
//!
//! All binaries accept:
//!
//! * `--scale F` — dataset scale factor (1.0 default; 30 ≈ paper size);
//! * `--queries N` — number of test queries (default varies per binary);
//! * `--seed S` — RNG seed (default 42);
//! * `--threads T` — offline build threads (default: all cores).

/// Parsed common options.
#[derive(Clone, Copy, Debug)]
pub struct CommonArgs {
    /// Dataset scale factor.
    pub scale: f64,
    /// Number of test queries.
    pub queries: usize,
    /// RNG seed.
    pub seed: u64,
    /// Offline build threads.
    pub threads: usize,
}

impl CommonArgs {
    /// Parses `std::env::args`, with a per-binary default query count.
    pub fn parse(default_queries: usize) -> Self {
        Self::parse_from(std::env::args().skip(1), default_queries)
    }

    /// Like [`CommonArgs::parse`] with a per-binary default scale (used by
    /// binaries whose baselines are expensive at full scale).
    pub fn parse_with_scale(default_queries: usize, default_scale: f64) -> Self {
        let mut out = Self::parse(default_queries);
        if !std::env::args().any(|a| a == "--scale") {
            out.scale = default_scale;
        }
        out
    }

    /// Parses from an explicit iterator (testable).
    pub fn parse_from(args: impl IntoIterator<Item = String>, default_queries: usize) -> Self {
        let mut out = CommonArgs {
            scale: 1.0,
            queries: default_queries,
            seed: 42,
            threads: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4),
        };
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut take = |name: &str| -> String {
                it.next().unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--scale" => out.scale = take("--scale").parse().unwrap(),
                "--queries" => out.queries = take("--queries").parse().unwrap(),
                "--seed" => out.seed = take("--seed").parse().unwrap(),
                "--threads" => out.threads = take("--threads").parse().unwrap(),
                "--help" | "-h" => {
                    eprintln!("options: --scale F  --queries N  --seed S  --threads T");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}");
                    std::process::exit(2);
                }
            }
        }
        assert!(out.scale > 0.0, "--scale must be positive");
        assert!(out.queries > 0, "--queries must be positive");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults() {
        let a = CommonArgs::parse_from(strs(&[]), 40);
        assert_eq!(a.scale, 1.0);
        assert_eq!(a.queries, 40);
        assert_eq!(a.seed, 42);
        assert!(a.threads >= 1);
    }

    #[test]
    fn overrides() {
        let a = CommonArgs::parse_from(
            strs(&[
                "--scale",
                "2.5",
                "--queries",
                "7",
                "--seed",
                "9",
                "--threads",
                "3",
            ]),
            40,
        );
        assert_eq!(a.scale, 2.5);
        assert_eq!(a.queries, 7);
        assert_eq!(a.seed, 9);
        assert_eq!(a.threads, 3);
    }
}
