//! Closed-loop throughput driver for the concurrent query service.
//!
//! *Closed loop*: a fixed worker pool serves requests back-to-back — the
//! next request starts the moment a worker frees up — so measured QPS is
//! the service's saturated capacity at that concurrency, and per-request
//! latencies are service-side (queue wait excluded, cache probe included).
//! The workload is the Zipf-skewed mix of
//! [`crate::workload::sample_queries_zipf`], the traffic shape a hot-PPV
//! cache exists for.

use std::sync::Arc;
use std::time::{Duration, Instant};

use fastppv_core::{Config, HubSet, PpvStore};
use fastppv_graph::{Graph, NodeId};
use fastppv_server::{LatencySummary, QueryService, Request, ServiceOptions};

pub use fastppv_server::percentile;

/// One closed-loop measurement.
#[derive(Clone, Copy, Debug)]
pub struct ThroughputReport {
    /// Worker threads used.
    pub workers: usize,
    /// Requests served.
    pub queries: usize,
    /// Wall-clock time for the whole batch.
    pub wall: Duration,
    /// Served queries per second.
    pub qps: f64,
    /// Median service-side latency.
    pub p50: Duration,
    /// 99th-percentile service-side latency.
    pub p99: Duration,
    /// Latencies of requests whose source is a hub (iteration 0 is an
    /// index lookup).
    pub hub: LatencySummary,
    /// Latencies of requests whose source is not a hub (iteration 0 runs
    /// the prime-PPV kernel — the tail-latency regime).
    pub nonhub: LatencySummary,
    /// Hot-PPV cache hits during the run.
    pub cache_hits: u64,
    /// Hot-PPV cache misses during the run.
    pub cache_misses: u64,
}

/// One closed-loop run configuration (see [`run_closed_loop`]).
#[derive(Clone, Copy, Debug)]
pub struct RunSpec {
    /// Iteration budget η per request.
    pub eta: usize,
    /// Worker threads draining the batch.
    pub workers: usize,
    /// Hot-PPV cache entries (0 measures pure engine throughput).
    pub cache_capacity: usize,
    /// Replay the batch once before measuring, so the measured run is the
    /// steady-state (cache-saturated) figure.
    pub warm_cache: bool,
}

/// Runs one closed-loop measurement: `spec.workers` threads drain
/// `queries` (each run for `spec.eta` increments) through a fresh
/// [`QueryService`] built over the shared deployment handles.
pub fn run_closed_loop<S: PpvStore + Send + Sync>(
    graph: &Arc<Graph>,
    hubs: &Arc<HubSet>,
    store: &Arc<S>,
    config: Config,
    queries: &[NodeId],
    spec: RunSpec,
) -> ThroughputReport {
    let service = QueryService::new(
        Arc::clone(graph),
        Arc::clone(hubs),
        Arc::clone(store),
        config,
        ServiceOptions {
            workers: spec.workers,
            queue_capacity: 1024,
            cache_capacity: spec.cache_capacity,
        },
    );
    let requests = || -> Vec<Request> {
        queries
            .iter()
            .map(|&q| Request::iterations(q, spec.eta))
            .collect()
    };
    if spec.warm_cache {
        service.process_batch(requests());
    }
    let before = service.cache_stats();
    let started = Instant::now();
    let responses = service.process_batch(requests());
    let wall = started.elapsed();
    let after = service.cache_stats();
    let latencies: Vec<Duration> = responses.iter().map(|r| r.latency).collect();
    let mut hub_lat: Vec<Duration> = Vec::new();
    let mut nonhub_lat: Vec<Duration> = Vec::new();
    for r in &responses {
        if hubs.is_hub(r.query) {
            hub_lat.push(r.latency);
        } else {
            nonhub_lat.push(r.latency);
        }
    }
    ThroughputReport {
        workers: spec.workers,
        queries: responses.len(),
        wall,
        qps: responses.len() as f64 / wall.as_secs_f64().max(1e-9),
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
        hub: LatencySummary::of(&hub_lat),
        nonhub: LatencySummary::of(&nonhub_lat),
        cache_hits: after.hits - before.hits,
        cache_misses: after.misses - before.misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastppv_core::offline::build_index;
    use fastppv_core::{select_hubs, HubPolicy};
    use fastppv_graph::gen::barabasi_albert;

    #[test]
    fn percentile_nearest_rank() {
        let ms = |v: u64| Duration::from_millis(v);
        let sample = vec![ms(5), ms(1), ms(3), ms(2), ms(4)];
        assert_eq!(percentile(&sample, 0.5), ms(3));
        assert_eq!(percentile(&sample, 0.99), ms(5));
        assert_eq!(percentile(&sample, 1.0), ms(5));
        assert_eq!(percentile(&sample, 0.2), ms(1));
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
    }

    #[test]
    fn closed_loop_reports_consistent_counts() {
        let graph = Arc::new(barabasi_albert(300, 3, 11));
        let config = Config::default();
        let hubs = Arc::new(select_hubs(&graph, HubPolicy::ExpectedUtility, 25, 0));
        let (index, _) = build_index(&graph, &hubs, &config);
        let store = Arc::new(index);
        let queries: Vec<NodeId> = crate::workload::sample_queries_zipf(&graph, 60, 1.0, 7);

        let cold = run_closed_loop(
            &graph,
            &hubs,
            &store,
            config,
            &queries,
            RunSpec {
                eta: 2,
                workers: 2,
                cache_capacity: 0,
                warm_cache: false,
            },
        );
        assert_eq!(cold.queries, 60);
        assert!(cold.qps > 0.0);
        assert!(cold.p50 <= cold.p99);
        assert_eq!((cold.cache_hits, cold.cache_misses), (0, 0), "cache off");

        let warm = run_closed_loop(
            &graph,
            &hubs,
            &store,
            config,
            &queries,
            RunSpec {
                eta: 2,
                workers: 2,
                cache_capacity: 4096,
                warm_cache: true,
            },
        );
        assert_eq!(
            warm.cache_hits, 60,
            "after a warm-up replay every request must hit"
        );
        assert_eq!(warm.cache_misses, 0);
    }
}
