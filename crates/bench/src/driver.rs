//! Closed-loop throughput drivers for the concurrent query service —
//! in-process ([`run_closed_loop`]) and over the TCP front-end
//! ([`run_closed_loop_socket`]).
//!
//! *Closed loop*: a fixed set of workers serves requests back-to-back —
//! the next request starts the moment a worker frees up — so measured QPS
//! is the service's saturated capacity at that concurrency. In-process,
//! per-request latencies are service-side (queue wait excluded, cache
//! probe included); over the socket they are client-side round trips, so
//! framing, kernel scheduling, and queueing effects are all *included* —
//! the number a remote caller actually experiences. The workload is the
//! Zipf-skewed mix of [`crate::workload::sample_queries_zipf`], the
//! traffic shape a hot-PPV cache exists for.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use fastppv_core::{Config, HubSet, PpvStore};
use fastppv_graph::{Graph, NodeId};
use fastppv_server::net::{Client, WireRequest};
use fastppv_server::{LatencySummary, QueryService, Request, ServiceOptions};

pub use fastppv_server::{percentile, percentile_of_sorted};

/// One closed-loop measurement.
#[derive(Clone, Copy, Debug)]
pub struct ThroughputReport {
    /// Worker threads used.
    pub workers: usize,
    /// Requests served.
    pub queries: usize,
    /// Wall-clock time for the whole batch.
    pub wall: Duration,
    /// Served queries per second.
    pub qps: f64,
    /// Median service-side latency.
    pub p50: Duration,
    /// 99th-percentile service-side latency.
    pub p99: Duration,
    /// Latencies of requests whose source is a hub (iteration 0 is an
    /// index lookup).
    pub hub: LatencySummary,
    /// Latencies of requests whose source is not a hub (iteration 0 runs
    /// the prime-PPV kernel — the tail-latency regime).
    pub nonhub: LatencySummary,
    /// Hot-PPV cache hits during the run.
    pub cache_hits: u64,
    /// Hot-PPV cache misses during the run.
    pub cache_misses: u64,
}

/// One closed-loop run configuration (see [`run_closed_loop`]).
#[derive(Clone, Copy, Debug)]
pub struct RunSpec {
    /// Iteration budget η per request.
    pub eta: usize,
    /// Worker threads draining the batch.
    pub workers: usize,
    /// Hot-PPV cache entries (0 measures pure engine throughput).
    pub cache_capacity: usize,
    /// Replay the batch once before measuring, so the measured run is the
    /// steady-state (cache-saturated) figure.
    pub warm_cache: bool,
}

/// Runs one closed-loop measurement: `spec.workers` threads drain
/// `queries` (each run for `spec.eta` increments) through a fresh
/// [`QueryService`] built over the shared deployment handles.
pub fn run_closed_loop<S: PpvStore + Send + Sync>(
    graph: &Arc<Graph>,
    hubs: &Arc<HubSet>,
    store: &Arc<S>,
    config: Config,
    queries: &[NodeId],
    spec: RunSpec,
) -> ThroughputReport {
    let service = QueryService::new(
        Arc::clone(graph),
        Arc::clone(hubs),
        Arc::clone(store),
        config,
        ServiceOptions {
            workers: spec.workers,
            queue_capacity: 1024,
            cache_capacity: spec.cache_capacity,
        },
    );
    let requests = || -> Vec<Request> {
        queries
            .iter()
            .map(|&q| Request::iterations(q, spec.eta))
            .collect()
    };
    if spec.warm_cache {
        service.process_batch(requests());
    }
    let before = service.cache_stats();
    let started = Instant::now();
    let responses = service.process_batch(requests());
    let wall = started.elapsed();
    let after = service.cache_stats();
    let samples = responses.iter().map(|r| (r.query, r.latency));
    summarize(
        samples,
        hubs,
        spec.workers,
        wall,
        after.hits - before.hits,
        after.misses - before.misses,
    )
}

/// Aggregates `(query, latency)` samples into a [`ThroughputReport`]: one
/// sort per class (hub / non-hub), every quantile — including the pooled
/// p50/p99, via the sorted-pair merge walk — taken from those two sorted
/// samples without re-sorting or cloning.
fn summarize(
    samples: impl Iterator<Item = (NodeId, Duration)>,
    hubs: &HubSet,
    workers: usize,
    wall: Duration,
    cache_hits: u64,
    cache_misses: u64,
) -> ThroughputReport {
    let mut hub_lat: Vec<Duration> = Vec::new();
    let mut nonhub_lat: Vec<Duration> = Vec::new();
    for (query, latency) in samples {
        if hubs.is_hub(query) {
            hub_lat.push(latency);
        } else {
            nonhub_lat.push(latency);
        }
    }
    let hub = LatencySummary::of_mut(&mut hub_lat);
    let nonhub = LatencySummary::of_mut(&mut nonhub_lat);
    let queries = hub_lat.len() + nonhub_lat.len();
    ThroughputReport {
        workers,
        queries,
        wall,
        qps: queries as f64 / wall.as_secs_f64().max(1e-9),
        p50: fastppv_server::percentile_of_sorted_pair(&hub_lat, &nonhub_lat, 0.50),
        p99: fastppv_server::percentile_of_sorted_pair(&hub_lat, &nonhub_lat, 0.99),
        hub,
        nonhub,
        cache_hits,
        cache_misses,
    }
}

/// Per-connection socket samples: `(query, round trip)` pairs plus cache
/// hit and miss counts read off the wire.
type ClientSamples = (Vec<(NodeId, Duration)>, u64, u64);

/// One socket closed-loop run configuration (see
/// [`run_closed_loop_socket`]).
#[derive(Clone, Copy, Debug)]
pub struct SocketRunSpec {
    /// Iteration budget η per request.
    pub eta: usize,
    /// Concurrent client connections, each running its share of the
    /// workload back-to-back (closed loop).
    pub clients: usize,
    /// Top-`k` entries to request per answer (0 = full score vector);
    /// smaller answers isolate serving latency from payload size.
    pub top_k: u32,
}

/// Runs one closed-loop measurement **over the TCP front-end**:
/// `spec.clients` connections split `queries` round-robin and each sends
/// its share one request frame at a time, timing every round trip
/// client-side — so the reported p50/p99 include framing and queueing
/// effects, split by hub and non-hub source exactly like
/// [`run_closed_loop`]. Cache hit/miss counts come from the per-answer
/// `cached` flag on the wire.
pub fn run_closed_loop_socket(
    addr: SocketAddr,
    hubs: &HubSet,
    queries: &[NodeId],
    spec: SocketRunSpec,
) -> std::io::Result<ThroughputReport> {
    assert!(spec.clients >= 1, "need at least one client connection");
    // Connect before starting the clock so the measured window is pure
    // request traffic.
    let mut connections: Vec<Client> = (0..spec.clients)
        .map(|_| Client::connect(addr))
        .collect::<std::io::Result<_>>()?;
    let started = Instant::now();
    let results: Vec<ClientSamples> = std::thread::scope(|scope| {
        let handles: Vec<_> = connections
            .iter_mut()
            .enumerate()
            .map(|(c, client)| {
                scope.spawn(move || -> std::io::Result<ClientSamples> {
                    let mut samples = Vec::new();
                    let (mut hits, mut misses) = (0u64, 0u64);
                    for &q in queries.iter().skip(c).step_by(spec.clients) {
                        let request =
                            WireRequest::iterations(q, spec.eta as u32).with_top_k(spec.top_k);
                        let sent = Instant::now();
                        let response = client.request_one(request)?;
                        let rtt = sent.elapsed();
                        let answer = response.answer().ok_or_else(|| {
                            std::io::Error::other(
                                response.error().unwrap_or("rejected").to_string(),
                            )
                        })?;
                        if answer.cached {
                            hits += 1;
                        } else {
                            misses += 1;
                        }
                        samples.push((q, rtt));
                    }
                    Ok((samples, hits, misses))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect::<std::io::Result<_>>()
    })?;
    let wall = started.elapsed();
    let (mut hits, mut misses) = (0u64, 0u64);
    for (_, h, m) in &results {
        hits += h;
        misses += m;
    }
    Ok(summarize(
        results.iter().flat_map(|(s, _, _)| s.iter().copied()),
        hubs,
        spec.clients,
        wall,
        hits,
        misses,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastppv_core::offline::build_index;
    use fastppv_core::{select_hubs, HubPolicy};
    use fastppv_graph::gen::barabasi_albert;

    #[test]
    fn percentile_nearest_rank() {
        let ms = |v: u64| Duration::from_millis(v);
        let sample = vec![ms(5), ms(1), ms(3), ms(2), ms(4)];
        assert_eq!(percentile(&sample, 0.5), ms(3));
        assert_eq!(percentile(&sample, 0.99), ms(5));
        assert_eq!(percentile(&sample, 1.0), ms(5));
        assert_eq!(percentile(&sample, 0.2), ms(1));
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
    }

    #[test]
    fn closed_loop_reports_consistent_counts() {
        let graph = Arc::new(barabasi_albert(300, 3, 11));
        let config = Config::default();
        let hubs = Arc::new(select_hubs(&graph, HubPolicy::ExpectedUtility, 25, 0));
        let (index, _) = build_index(&graph, &hubs, &config);
        let store = Arc::new(index);
        let queries: Vec<NodeId> = crate::workload::sample_queries_zipf(&graph, 60, 1.0, 7);

        let cold = run_closed_loop(
            &graph,
            &hubs,
            &store,
            config,
            &queries,
            RunSpec {
                eta: 2,
                workers: 2,
                cache_capacity: 0,
                warm_cache: false,
            },
        );
        assert_eq!(cold.queries, 60);
        assert!(cold.qps > 0.0);
        assert!(cold.p50 <= cold.p99);
        assert_eq!((cold.cache_hits, cold.cache_misses), (0, 0), "cache off");

        let warm = run_closed_loop(
            &graph,
            &hubs,
            &store,
            config,
            &queries,
            RunSpec {
                eta: 2,
                workers: 2,
                cache_capacity: 4096,
                warm_cache: true,
            },
        );
        assert_eq!(
            warm.cache_hits, 60,
            "after a warm-up replay every request must hit"
        );
        assert_eq!(warm.cache_misses, 0);
    }

    #[test]
    fn socket_closed_loop_reports_consistent_counts() {
        let graph = Arc::new(barabasi_albert(300, 3, 11));
        let config = Config::default();
        let hubs = Arc::new(select_hubs(&graph, HubPolicy::ExpectedUtility, 25, 0));
        let (index, _) = build_index(&graph, &hubs, &config);
        let service = Arc::new(QueryService::new(
            Arc::clone(&graph),
            Arc::clone(&hubs),
            Arc::new(index),
            config,
            ServiceOptions {
                workers: 2,
                queue_capacity: 64,
                cache_capacity: 4096,
            },
        ));
        let server = fastppv_server::net::serve(
            Arc::clone(&service),
            std::net::TcpListener::bind("127.0.0.1:0").unwrap(),
        )
        .unwrap();
        let queries: Vec<NodeId> = crate::workload::sample_queries_zipf(&graph, 40, 1.0, 7);

        let spec = SocketRunSpec {
            eta: 2,
            clients: 2,
            top_k: 4,
        };
        let cold = run_closed_loop_socket(server.local_addr(), &hubs, &queries, spec).unwrap();
        assert_eq!(cold.queries, 40);
        assert!(cold.qps > 0.0);
        assert!(cold.p50 <= cold.p99);
        assert_eq!(cold.hub.queries + cold.nonhub.queries, 40);
        assert_eq!(cold.cache_hits + cold.cache_misses, 40);

        // Same mix again: the server's hot-PPV cache answers everything.
        let warm = run_closed_loop_socket(server.local_addr(), &hubs, &queries, spec).unwrap();
        assert_eq!(warm.cache_hits, 40, "repeat mix must be all cache hits");
        assert_eq!(warm.cache_misses, 0);
        server.shutdown();
    }
}
