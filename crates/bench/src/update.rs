//! Shared pieces of the streaming-update experiment (`exp_update`): the
//! `BENCH_update.json` report.
//!
//! The report's headline figure is the sustained edge-events/s of the
//! delta-patched maintenance path against the full-recompute baseline —
//! both measured as the wall-clock of `QueryService::apply_update` alone
//! (the per-event CSR rebuild is workload synthesis, not index
//! maintenance, and is excluded from both sides identically). The serve
//! percentiles quantify update/read interference: the same closed serving
//! loop measured on a quiet service and again while the event stream runs.

use std::time::Duration;

use fastppv_server::LatencySummary;

/// Everything `BENCH_update.json` records.
pub struct UpdateReport {
    /// Workload label, e.g. `BA-50k`.
    pub dataset: String,
    /// Graph size (fixed node set; only the adjacency evolves).
    pub nodes: usize,
    /// Edge count before the event stream.
    pub edges_initial: usize,
    /// Edge count after the event stream.
    pub edges_final: usize,
    /// Hub count |H|.
    pub hubs: usize,
    /// RNG seed (events use `seed + 1`).
    pub seed: u64,
    /// Per-hub delta error budget (score-L1 units).
    pub budget: f64,
    /// Fraction of events that delete a live edge.
    pub delete_fraction: f64,
    /// Events streamed through the delta-patched service.
    pub events_delta: usize,
    /// Summed `apply_update` wall-clock on the delta service.
    pub delta_wall: Duration,
    /// Events replayed through the exact (budget-0) baseline service.
    pub events_exact: usize,
    /// Summed `apply_update` wall-clock on the exact service.
    pub exact_wall: Duration,
    /// Σ dirty hubs over all delta events (= delta_patched + recomputed).
    pub dirty_hubs: usize,
    /// Σ hubs patched by delta propagation.
    pub delta_patched: usize,
    /// Of those, patches that changed no entry (pure budget spend).
    pub delta_noop: usize,
    /// Σ hubs recomputed exactly (budget exceeded or push truncated).
    pub recomputed: usize,
    /// Σ hubs untouched by any event.
    pub reused: usize,
    /// Max accumulated per-hub budget spend observed across the stream —
    /// the certified error bound of every served answer; ≤ `budget` by
    /// construction.
    pub budget_watermark: f64,
    /// Summed snapshot-clone time inside `delta_wall` (a shallow
    /// chunk-sharing clone since the arena went copy-on-write).
    pub clone_wall: Duration,
    /// Σ bytes actually copied by publishes across the stream (compaction
    /// only under chunked COW; appends and tombstones copy nothing).
    pub cloned_bytes: u64,
    /// Max bytes copied by any single event's publish; CI asserts
    /// `cloned_bytes_max_event <= arena_bytes` (one event never costs a
    /// whole-arena deep clone again).
    pub cloned_bytes_max_event: u64,
    /// Final arena size (chunk data + directory) after the stream.
    pub arena_bytes: usize,
    /// Heap-resident bytes of the final arena (< `arena_bytes` when chunks
    /// still borrow from an mmap'd file).
    pub resident_bytes: usize,
    /// File-mapped bytes of the final arena.
    pub mapped_bytes: usize,
    /// Wall-clock of `FlatIndex::open` on the single-file arena format.
    pub open: Duration,
    /// Wall-clock of the deserialize path (record file → `DiskIndex` →
    /// `FlatIndex::from_store`) over the same index; `open_deserialize_ms /
    /// open_ms` is the ≥ 10× open-speed criterion.
    pub open_deserialize: Duration,
    /// Batches that skipped the publish (expected 0: every synthesized
    /// event changes the adjacency).
    pub noop_update_skips: u64,
    /// Serve-path latency with no updates running.
    pub serve_quiet: LatencySummary,
    /// Serve-path latency while the event stream runs.
    pub serve_updating: LatencySummary,
    /// Max per-hub L1 between the streamed store and a fresh exact build
    /// of the final graph. Informational: it adds the ε-frontier pruning
    /// difference between a patch (pushed on the full graph) and a fresh
    /// extraction, on top of the certified `budget_watermark`.
    pub max_rebuild_l1: f64,
}

impl UpdateReport {
    /// Sustained edge-events/s of the delta-patched path.
    pub fn events_per_s_delta(&self) -> f64 {
        rate(self.events_delta, self.delta_wall)
    }

    /// Sustained edge-events/s of the full-recompute baseline.
    pub fn events_per_s_exact(&self) -> f64 {
        rate(self.events_exact, self.exact_wall)
    }

    /// Delta-vs-full-recompute throughput ratio (the ≥ 10× criterion).
    pub fn speedup(&self) -> f64 {
        let exact = self.events_per_s_exact();
        if exact == 0.0 {
            0.0
        } else {
            self.events_per_s_delta() / exact
        }
    }

    /// Hand-rolled JSON (the environment vendors no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"experiment\": \"update\",\n");
        out.push_str(&format!("  \"dataset\": \"{}\",\n", self.dataset));
        out.push_str(&format!("  \"nodes\": {},\n", self.nodes));
        out.push_str(&format!("  \"edges_initial\": {},\n", self.edges_initial));
        out.push_str(&format!("  \"edges_final\": {},\n", self.edges_final));
        out.push_str(&format!("  \"hubs\": {},\n", self.hubs));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"budget\": {},\n", self.budget));
        out.push_str(&format!(
            "  \"delete_fraction\": {},\n",
            self.delete_fraction
        ));
        // apply_update wall-clock only; the per-event CSR rebuild is
        // workload synthesis and is excluded on both sides.
        out.push_str("  \"csr_rebuild_excluded\": true,\n");
        out.push_str(&format!("  \"events_delta\": {},\n", self.events_delta));
        out.push_str(&format!(
            "  \"delta_wall_ms\": {:.3},\n",
            ms(self.delta_wall)
        ));
        out.push_str(&format!("  \"events_exact\": {},\n", self.events_exact));
        out.push_str(&format!(
            "  \"exact_wall_ms\": {:.3},\n",
            ms(self.exact_wall)
        ));
        out.push_str(&format!(
            "  \"events_per_s_delta\": {:.3},\n",
            self.events_per_s_delta()
        ));
        out.push_str(&format!(
            "  \"events_per_s_exact\": {:.3},\n",
            self.events_per_s_exact()
        ));
        out.push_str(&format!("  \"speedup\": {:.3},\n", self.speedup()));
        out.push_str(&format!("  \"dirty_hubs\": {},\n", self.dirty_hubs));
        out.push_str(&format!("  \"delta_patched\": {},\n", self.delta_patched));
        out.push_str(&format!("  \"delta_noop\": {},\n", self.delta_noop));
        out.push_str(&format!("  \"recomputed\": {},\n", self.recomputed));
        out.push_str(&format!("  \"reused\": {},\n", self.reused));
        out.push_str(&format!(
            "  \"budget_watermark\": {:e},\n",
            self.budget_watermark
        ));
        out.push_str(&format!(
            "  \"clone_wall_ms\": {:.3},\n",
            ms(self.clone_wall)
        ));
        out.push_str(&format!("  \"cloned_bytes\": {},\n", self.cloned_bytes));
        out.push_str(&format!(
            "  \"cloned_bytes_max_event\": {},\n",
            self.cloned_bytes_max_event
        ));
        out.push_str(&format!("  \"arena_bytes\": {},\n", self.arena_bytes));
        out.push_str(&format!("  \"resident_bytes\": {},\n", self.resident_bytes));
        out.push_str(&format!("  \"mapped_bytes\": {},\n", self.mapped_bytes));
        out.push_str(&format!("  \"open_ms\": {:.3},\n", ms(self.open)));
        out.push_str(&format!(
            "  \"open_deserialize_ms\": {:.3},\n",
            ms(self.open_deserialize)
        ));
        out.push_str(&format!(
            "  \"noop_update_skips\": {},\n",
            self.noop_update_skips
        ));
        out.push_str(&format!(
            "  \"serve_quiet_queries\": {},\n",
            self.serve_quiet.queries
        ));
        out.push_str(&format!(
            "  \"serve_quiet_p50_us\": {:.1},\n",
            us(self.serve_quiet.p50)
        ));
        out.push_str(&format!(
            "  \"serve_quiet_p99_us\": {:.1},\n",
            us(self.serve_quiet.p99)
        ));
        out.push_str(&format!(
            "  \"serve_updating_queries\": {},\n",
            self.serve_updating.queries
        ));
        out.push_str(&format!(
            "  \"serve_updating_p50_us\": {:.1},\n",
            us(self.serve_updating.p50)
        ));
        out.push_str(&format!(
            "  \"serve_updating_p99_us\": {:.1},\n",
            us(self.serve_updating.p99)
        ));
        out.push_str(&format!(
            "  \"max_rebuild_l1\": {:e}\n",
            self.max_rebuild_l1
        ));
        out.push_str("}\n");
        out
    }
}

fn rate(events: usize, wall: Duration) -> f64 {
    let secs = wall.as_secs_f64();
    if secs == 0.0 {
        0.0
    } else {
        events as f64 / secs
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> UpdateReport {
        UpdateReport {
            dataset: "BA-1k".into(),
            nodes: 1000,
            edges_initial: 4000,
            edges_final: 4100,
            hubs: 40,
            seed: 42,
            budget: 0.01,
            delete_fraction: 0.2,
            events_delta: 200,
            delta_wall: Duration::from_millis(500),
            events_exact: 10,
            exact_wall: Duration::from_millis(2500),
            dirty_hubs: 320,
            delta_patched: 300,
            delta_noop: 120,
            recomputed: 20,
            reused: 7680,
            budget_watermark: 0.004,
            clone_wall: Duration::from_millis(40),
            cloned_bytes: 65536,
            cloned_bytes_max_event: 4096,
            arena_bytes: 1 << 20,
            resident_bytes: 1 << 18,
            mapped_bytes: 3 << 18,
            open: Duration::from_millis(2),
            open_deserialize: Duration::from_millis(120),
            noop_update_skips: 0,
            serve_quiet: LatencySummary {
                queries: 400,
                p50: Duration::from_micros(80),
                p99: Duration::from_micros(900),
            },
            serve_updating: LatencySummary {
                queries: 1200,
                p50: Duration::from_micros(95),
                p99: Duration::from_micros(1200),
            },
            max_rebuild_l1: 0.005,
        }
    }

    #[test]
    fn rates_and_speedup() {
        let r = sample();
        assert!((r.events_per_s_delta() - 400.0).abs() < 1e-9);
        assert!((r.events_per_s_exact() - 4.0).abs() < 1e-9);
        assert!((r.speedup() - 100.0).abs() < 1e-9);
        // Degenerate wall-clocks never divide by zero.
        let mut z = sample();
        z.exact_wall = Duration::ZERO;
        assert_eq!(z.events_per_s_exact(), 0.0);
        assert_eq!(z.speedup(), 0.0);
    }

    #[test]
    fn json_has_required_keys() {
        let json = sample().to_json();
        for key in [
            "\"experiment\"",
            "\"dataset\"",
            "\"budget\"",
            "\"csr_rebuild_excluded\"",
            "\"events_delta\"",
            "\"events_exact\"",
            "\"events_per_s_delta\"",
            "\"events_per_s_exact\"",
            "\"speedup\"",
            "\"dirty_hubs\"",
            "\"delta_patched\"",
            "\"delta_noop\"",
            "\"recomputed\"",
            "\"reused\"",
            "\"budget_watermark\"",
            "\"clone_wall_ms\"",
            "\"cloned_bytes\"",
            "\"cloned_bytes_max_event\"",
            "\"arena_bytes\"",
            "\"resident_bytes\"",
            "\"mapped_bytes\"",
            "\"open_ms\"",
            "\"open_deserialize_ms\"",
            "\"noop_update_skips\"",
            "\"serve_quiet_p99_us\"",
            "\"serve_updating_p99_us\"",
            "\"max_rebuild_l1\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // The counter invariant CI validates from the committed report.
        let r = sample();
        assert_eq!(r.dirty_hubs, r.delta_patched + r.recomputed);
    }
}
