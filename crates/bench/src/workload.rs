//! Test queries and exact ground truth.
//!
//! The paper samples 1000 random query nodes per graph and reports averages.
//! Exact PPVs (the accuracy reference) are the expensive part at any scale,
//! so the default query count here is smaller (see `DESIGN.md` §4) and the
//! ground-truth solves run on all cores.

use fastppv_baselines::exact::{exact_ppv, ExactOptions};
use fastppv_graph::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Samples `count` distinct query nodes uniformly at random (seeded).
pub fn sample_queries(graph: &Graph, count: usize, seed: u64) -> Vec<NodeId> {
    let n = graph.num_nodes();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut all: Vec<NodeId> = (0..n as NodeId).collect();
    all.shuffle(&mut rng);
    all.truncate(count.min(n));
    all
}

/// Exact PPVs for every query (parallel power iteration).
pub fn ground_truth(graph: &Graph, queries: &[NodeId]) -> Vec<Vec<f64>> {
    ground_truth_with(graph, queries, ExactOptions::default())
}

/// Like [`ground_truth`] with explicit solver options.
pub fn ground_truth_with(graph: &Graph, queries: &[NodeId], opts: ExactOptions) -> Vec<Vec<f64>> {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(queries.len().max(1));
    let chunk = queries.len().div_ceil(threads).max(1);
    std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .chunks(chunk)
            .map(|qs| {
                scope.spawn(move || {
                    qs.iter()
                        .map(|&q| exact_ppv(graph, q, opts))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastppv_graph::gen::barabasi_albert;

    #[test]
    fn queries_are_distinct_and_seeded() {
        let g = barabasi_albert(100, 2, 1);
        let a = sample_queries(&g, 20, 7);
        let b = sample_queries(&g, 20, 7);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
    }

    #[test]
    fn count_clamped() {
        let g = barabasi_albert(10, 2, 1);
        assert_eq!(sample_queries(&g, 100, 0).len(), 10);
    }

    #[test]
    fn ground_truth_matches_serial() {
        let g = barabasi_albert(150, 3, 2);
        let queries = sample_queries(&g, 8, 3);
        let parallel = ground_truth(&g, &queries);
        for (i, &q) in queries.iter().enumerate() {
            let serial = exact_ppv(&g, q, ExactOptions::default());
            assert_eq!(parallel[i], serial);
        }
    }
}
