//! Test queries and exact ground truth.
//!
//! The paper samples 1000 random query nodes per graph and reports averages.
//! Exact PPVs (the accuracy reference) are the expensive part at any scale,
//! so the default query count here is smaller (see `DESIGN.md` §4) and the
//! ground-truth solves run on all cores.

use fastppv_baselines::exact::{exact_ppv, ExactOptions};
use fastppv_graph::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Samples `count` distinct query nodes uniformly at random (seeded).
pub fn sample_queries(graph: &Graph, count: usize, seed: u64) -> Vec<NodeId> {
    let n = graph.num_nodes();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut all: Vec<NodeId> = (0..n as NodeId).collect();
    all.shuffle(&mut rng);
    all.truncate(count.min(n));
    all
}

/// Samples `count` query nodes from a Zipf-skewed popularity distribution
/// (with repetition — repeats are the point: they model the hot keys a
/// serving cache exists for). Nodes are ranked by out-degree descending and
/// rank `r` is drawn with probability ∝ `1/r^exponent`; `exponent = 0` is
/// uniform, ~1 matches typical web/social query traffic.
pub fn sample_queries_zipf(graph: &Graph, count: usize, exponent: f64, seed: u64) -> Vec<NodeId> {
    assert!(exponent >= 0.0, "zipf exponent must be non-negative");
    let n = graph.num_nodes();
    assert!(n > 0, "empty graph");
    let mut by_degree: Vec<NodeId> = (0..n as NodeId).collect();
    by_degree.sort_by_key(|&v| (std::cmp::Reverse(graph.out_degree(v)), v));
    // Cumulative weights over ranks; inverse-CDF sampling by binary search.
    let mut cdf = Vec::with_capacity(n);
    let mut total = 0.0f64;
    for r in 1..=n {
        total += (r as f64).powf(-exponent);
        cdf.push(total);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5a1f);
    (0..count)
        .map(|_| {
            let u: f64 = rand::Rng::gen::<f64>(&mut rng) * total;
            let rank = cdf.partition_point(|&c| c < u).min(n - 1);
            by_degree[rank]
        })
        .collect()
}

/// Exact PPVs for every query (parallel power iteration).
pub fn ground_truth(graph: &Graph, queries: &[NodeId]) -> Vec<Vec<f64>> {
    ground_truth_with(graph, queries, ExactOptions::default())
}

/// Like [`ground_truth`] with explicit solver options.
pub fn ground_truth_with(graph: &Graph, queries: &[NodeId], opts: ExactOptions) -> Vec<Vec<f64>> {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(queries.len().max(1));
    let chunk = queries.len().div_ceil(threads).max(1);
    std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .chunks(chunk)
            .map(|qs| {
                scope.spawn(move || {
                    qs.iter()
                        .map(|&q| exact_ppv(graph, q, opts))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastppv_graph::gen::barabasi_albert;

    #[test]
    fn queries_are_distinct_and_seeded() {
        let g = barabasi_albert(100, 2, 1);
        let a = sample_queries(&g, 20, 7);
        let b = sample_queries(&g, 20, 7);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
    }

    #[test]
    fn count_clamped() {
        let g = barabasi_albert(10, 2, 1);
        assert_eq!(sample_queries(&g, 100, 0).len(), 10);
    }

    #[test]
    fn zipf_queries_are_seeded_and_skewed() {
        let g = barabasi_albert(500, 3, 9);
        let a = sample_queries_zipf(&g, 400, 1.0, 3);
        let b = sample_queries_zipf(&g, 400, 1.0, 3);
        assert_eq!(a, b, "same seed, same workload");
        assert!(a.iter().all(|&q| (q as usize) < 500));
        // Skew: the most frequent node must appear far above the uniform
        // expectation (400/500 < 1, so > 10 repeats means real skew).
        let mut counts = vec![0usize; 500];
        for &q in &a {
            counts[q as usize] += 1;
        }
        let max = counts.iter().copied().max().unwrap();
        assert!(max > 10, "hot key appeared only {max} times");
        // Exponent 0 is uniform: far less concentrated.
        let u = sample_queries_zipf(&g, 400, 0.0, 3);
        let mut ucounts = vec![0usize; 500];
        for &q in &u {
            ucounts[q as usize] += 1;
        }
        assert!(*ucounts.iter().max().unwrap() < max);
    }

    #[test]
    fn ground_truth_matches_serial() {
        let g = barabasi_albert(150, 3, 2);
        let queries = sample_queries(&g, 8, 3);
        let parallel = ground_truth(&g, &queries);
        for (i, &q) in queries.iter().enumerate() {
            let serial = exact_ppv(&g, q, ExactOptions::default());
            assert_eq!(parallel[i], serial);
        }
    }
}
