//! Offline + online evaluation of FastPPV and the two baselines.
//!
//! Each `eval_*` function runs the method's offline phase (timed), answers
//! every test query (timed), and scores the results against exact ground
//! truth with the paper's four metrics at top-10 — producing one table row
//! of Fig. 6/7.

use std::time::{Duration, Instant};

use fastppv_baselines::hubrank::{
    build_hubrank_index, hubrank_query, select_hubs_by_benefit, HubRankOptions,
};
use fastppv_baselines::montecarlo::{build_fingerprint_index, montecarlo_query, MonteCarloOptions};
use fastppv_core::hubs::{select_hubs_with_pagerank, HubPolicy, HubSet};
use fastppv_core::offline::{build_index_parallel, OfflineStats};
use fastppv_core::query::{QueryEngine, StoppingCondition};
use fastppv_core::{Config, MemoryIndex};
use fastppv_graph::{Graph, NodeId, ScoreScratch};
use fastppv_metrics::AccuracyReport;

/// The paper's accuracy cutoff for top-k metrics.
pub const TOP_K: usize = 10;

/// One method's row in a comparison table.
#[derive(Clone, Debug)]
pub struct MethodRow {
    /// Method name.
    pub method: String,
    /// Mean of the four accuracy metrics over the queries.
    pub accuracy: AccuracyReport,
    /// Mean online time per query.
    pub online_per_query: Duration,
    /// Offline precomputation wall-clock time.
    pub offline_time: Duration,
    /// Offline index size in bytes.
    pub offline_bytes: usize,
}

/// A built FastPPV deployment: hubs, index, config, and build stats.
pub struct FastPpvSetup {
    /// The hub set.
    pub hubs: HubSet,
    /// The PPV index.
    pub index: MemoryIndex,
    /// The configuration used to build (and to query).
    pub config: Config,
    /// Offline build statistics.
    pub stats: OfflineStats,
}

/// Builds a FastPPV deployment.
pub fn build_fastppv(
    graph: &Graph,
    hub_count: usize,
    config: Config,
    policy: HubPolicy,
    threads: usize,
    pagerank: Option<&[f64]>,
) -> FastPpvSetup {
    let hubs = select_hubs_with_pagerank(graph, policy, hub_count, 0, pagerank);
    let (index, stats) = build_index_parallel(graph, &hubs, &config, threads);
    FastPpvSetup {
        hubs,
        index,
        config,
        stats,
    }
}

/// Evaluates a built FastPPV deployment on the queries.
pub fn eval_fastppv(
    graph: &Graph,
    setup: &FastPpvSetup,
    queries: &[NodeId],
    truth: &[Vec<f64>],
    stop: &StoppingCondition,
) -> MethodRow {
    let engine = QueryEngine::new(graph, &setup.hubs, &setup.index, setup.config);
    let mut ws = engine.workspace();
    let mut reports = Vec::with_capacity(queries.len());
    let mut total = Duration::ZERO;
    for (i, &q) in queries.iter().enumerate() {
        let started = Instant::now();
        let result = engine.query_with(&mut ws, q, stop);
        total += started.elapsed();
        reports.push(AccuracyReport::compute(&truth[i], &result.scores, TOP_K));
    }
    MethodRow {
        method: "FastPPV".to_string(),
        accuracy: AccuracyReport::mean(&reports),
        online_per_query: total / queries.len().max(1) as u32,
        offline_time: setup.stats.build_time,
        offline_bytes: setup.stats.storage_bytes,
    }
}

/// Builds and evaluates HubRankP (paper baseline 1).
pub fn eval_hubrank(
    graph: &Graph,
    hub_count: usize,
    push: f64,
    opts: HubRankOptions,
    queries: &[NodeId],
    truth: &[Vec<f64>],
    pagerank: &[f64],
) -> MethodRow {
    let hubs = select_hubs_by_benefit(hub_count, pagerank);
    let index = build_hubrank_index(graph, &hubs, opts);
    let mut reports = Vec::with_capacity(queries.len());
    let mut total = Duration::ZERO;
    for (i, &q) in queries.iter().enumerate() {
        let started = Instant::now();
        let result = hubrank_query(graph, &index, q, push, opts.alpha);
        total += started.elapsed();
        reports.push(AccuracyReport::compute(&truth[i], &result.estimate, TOP_K));
    }
    MethodRow {
        method: "HubRankP".to_string(),
        accuracy: AccuracyReport::mean(&reports),
        online_per_query: total / queries.len().max(1) as u32,
        offline_time: index.build_time(),
        offline_bytes: index.storage_bytes(),
    }
}

/// Builds and evaluates the Monte Carlo fingerprint baseline (baseline 2).
pub fn eval_montecarlo(
    graph: &Graph,
    hub_count: usize,
    samples_per_query: usize,
    opts: MonteCarloOptions,
    queries: &[NodeId],
    truth: &[Vec<f64>],
    pagerank: &[f64],
) -> MethodRow {
    let hubs = select_hubs_by_benefit(hub_count, pagerank);
    let index = build_fingerprint_index(graph, &hubs, opts);
    let mut scratch = ScoreScratch::new(graph.num_nodes());
    let mut reports = Vec::with_capacity(queries.len());
    let mut total = Duration::ZERO;
    for (i, &q) in queries.iter().enumerate() {
        let started = Instant::now();
        let result = montecarlo_query(
            graph,
            Some(&index),
            q,
            samples_per_query,
            opts,
            &mut scratch,
        );
        total += started.elapsed();
        reports.push(AccuracyReport::compute(&truth[i], &result.estimate, TOP_K));
    }
    MethodRow {
        method: "MonteCarlo".to_string(),
        accuracy: AccuracyReport::mean(&reports),
        online_per_query: total / queries.len().max(1) as u32,
        offline_time: index.build_time(),
        offline_bytes: index.storage_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{ground_truth, sample_queries};
    use fastppv_graph::gen::barabasi_albert;
    use fastppv_graph::{pagerank, PageRankOptions};

    #[test]
    fn all_three_methods_produce_sane_rows() {
        let g = barabasi_albert(400, 3, 33);
        let pr = pagerank(&g, PageRankOptions::default());
        let queries = sample_queries(&g, 5, 1);
        let truth = ground_truth(&g, &queries);

        let setup = build_fastppv(
            &g,
            40,
            Config::default(),
            HubPolicy::ExpectedUtility,
            2,
            Some(&pr),
        );
        let f = eval_fastppv(
            &g,
            &setup,
            &queries,
            &truth,
            &StoppingCondition::iterations(2),
        );
        let h = eval_hubrank(
            &g,
            40,
            0.01,
            HubRankOptions::default(),
            &queries,
            &truth,
            &pr,
        );
        let m = eval_montecarlo(
            &g,
            40,
            20_000,
            MonteCarloOptions::default(),
            &queries,
            &truth,
            &pr,
        );
        for row in [&f, &h, &m] {
            assert!(row.accuracy.precision > 0.5, "{row:?}");
            assert!(row.accuracy.rag > 0.8, "{row:?}");
            assert!(row.offline_bytes > 0);
            assert!(row.online_per_query > Duration::ZERO);
        }
        assert_eq!(f.method, "FastPPV");
        assert_eq!(h.method, "HubRankP");
        assert_eq!(m.method, "MonteCarlo");
    }
}
