//! The `fastppv` subcommands.

use std::time::Instant;

use fastppv_cluster::partition::{cluster_graph, ClusteringOptions};
use fastppv_cluster::store::write_clustered_graph;
use fastppv_core::autotune::{suggest_hub_count, AutotuneOptions};
use fastppv_core::hubs::{select_hubs_with_pagerank, HubPolicy, HubSet};
use fastppv_core::index::{DiskIndex, PpvStore};
use fastppv_core::offline::build_index_parallel;
use fastppv_core::query::{QueryEngine, StoppingCondition};
use fastppv_core::Config;
use fastppv_graph::gen::{
    barabasi_albert, erdos_renyi, BibNetwork, DblpParams, SocialNetwork, SocialParams,
};
use fastppv_graph::io::{read_edge_list_file, write_edge_list_file};
use fastppv_graph::{pagerank, DanglingPolicy, Graph, PageRankOptions};

use crate::args::Args;

type CmdResult = Result<(), String>;

fn load_graph(args: &Args) -> Result<Graph, String> {
    let path: String = args.require("graph")?;
    let undirected = args.has("undirected");
    read_edge_list_file(&path, undirected, DanglingPolicy::SelfLoop)
        .map_err(|e| format!("reading {path}: {e}"))
}

fn parse_policy(name: &str) -> Result<HubPolicy, String> {
    Ok(match name {
        "eu" | "expected-utility" => HubPolicy::ExpectedUtility,
        "pagerank" | "pr" => HubPolicy::PageRank,
        "outdeg" | "out-degree" => HubPolicy::OutDegree,
        "indeg" | "in-degree" => HubPolicy::InDegree,
        "random" => HubPolicy::Random,
        other => return Err(format!("unknown hub policy `{other}`")),
    })
}

fn config_from_args(args: &Args) -> Result<Config, String> {
    let mut config = Config::default();
    if let Some(eps) = args.get::<f64>("epsilon")? {
        config = config.with_epsilon(eps);
    }
    if let Some(delta) = args.get::<f64>("delta")? {
        config = config.with_delta(delta);
    }
    if let Some(clip) = args.get::<f64>("clip")? {
        config = config.with_clip(clip);
    }
    if let Some(alpha) = args.get::<f64>("alpha")? {
        config = config.with_alpha(alpha);
    }
    Ok(config)
}

/// `fastppv generate`
pub fn generate(argv: &[String]) -> CmdResult {
    let usage = "fastppv generate --kind dblp|lj|ba|er --out edges.txt \
                 [--nodes N] [--seed S]\n\
                 dblp: tripartite author-paper-venue (undirected)\n\
                 lj:   directed social network\n\
                 ba:   Barabasi-Albert (undirected)\n\
                 er:   Erdos-Renyi G(n, 5n) (directed)";
    let args = Args::parse(argv, &[], usage)?;
    let kind: String = args.require("kind")?;
    let out: String = args.require("out")?;
    let nodes: usize = args.get_or("nodes", 50_000)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let graph = match kind.as_str() {
        "dblp" => {
            BibNetwork::generate(
                DblpParams {
                    papers: nodes / 2,
                    ..Default::default()
                },
                seed,
            )
            .graph
        }
        "lj" => {
            SocialNetwork::generate(
                SocialParams {
                    nodes,
                    ..Default::default()
                },
                seed,
            )
            .graph
        }
        "ba" => barabasi_albert(nodes, 4, seed),
        "er" => erdos_renyi(nodes, nodes * 5, seed),
        other => return Err(format!("unknown kind `{other}`")),
    };
    write_edge_list_file(&graph, &out).map_err(|e| e.to_string())?;
    println!(
        "wrote {}: {} nodes, {} edges",
        out,
        graph.num_nodes(),
        graph.num_edges()
    );
    Ok(())
}

/// `fastppv pagerank`
pub fn pagerank_cmd(argv: &[String]) -> CmdResult {
    let usage = "fastppv pagerank --graph edges.txt [--undirected] [--top K]";
    let args = Args::parse(argv, &["undirected"], usage)?;
    let graph = load_graph(&args)?;
    let top: usize = args.get_or("top", 10)?;
    let pr = pagerank(&graph, PageRankOptions::default());
    let mut order: Vec<u32> = (0..graph.num_nodes() as u32).collect();
    order.sort_by(|&a, &b| pr[b as usize].total_cmp(&pr[a as usize]));
    println!("top {top} nodes by global PageRank:");
    for (rank, &v) in order.iter().take(top).enumerate() {
        println!(
            "{:>4}. node {v:<10} pagerank {:.6}  (out-degree {})",
            rank + 1,
            pr[v as usize],
            graph.out_degree(v)
        );
    }
    Ok(())
}

/// `fastppv build`
pub fn build(argv: &[String]) -> CmdResult {
    let usage = "fastppv build --graph edges.txt [--undirected] --out index.fppv\n\
                 (--hubs N | --auto-target SUBGRAPH_NODES)\n\
                 [--policy eu|pagerank|outdeg|indeg|random] [--alpha A]\n\
                 [--epsilon E] [--delta D] [--clip C] [--threads T] [--seed S]";
    let args = Args::parse(argv, &["undirected"], usage)?;
    let graph = load_graph(&args)?;
    let out: String = args.require("out")?;
    let config = config_from_args(&args)?;
    let policy = parse_policy(&args.get_or("policy", "eu".to_string())?)?;
    let threads: usize = args.get_or(
        "threads",
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4),
    )?;
    let seed: u64 = args.get_or("seed", 0)?;
    let hub_count = match args.get::<usize>("hubs")? {
        Some(h) => h,
        None => {
            let target: f64 = args
                .require("auto-target")
                .map_err(|_| "give either --hubs N or --auto-target NODES".to_string())?;
            let started = Instant::now();
            let tuned = suggest_hub_count(
                &graph,
                &config,
                AutotuneOptions {
                    target_subgraph_nodes: target,
                    policy,
                    seed,
                    ..Default::default()
                },
            );
            println!(
                "autotune: |H| = {} (mean prime subgraph {:.0} nodes, \
                 {} probes, {:.2?})",
                tuned.hub_count,
                tuned.mean_subgraph_nodes,
                tuned.probes.len(),
                started.elapsed()
            );
            tuned.hub_count
        }
    };
    let hubs = select_hubs_with_pagerank(&graph, policy, hub_count, seed, None);
    let (index, stats) = build_index_parallel(&graph, &hubs, &config, threads);
    index.write_to_file(&out).map_err(|e| e.to_string())?;
    println!(
        "built {}: {} hubs, {} entries, {:.2} MB in {:.2?} \
         (avg subgraph {:.0} nodes, avg border hubs {:.1})",
        out,
        stats.hubs,
        stats.total_entries,
        stats.storage_bytes as f64 / (1024.0 * 1024.0),
        stats.build_time,
        stats.avg_subgraph_nodes,
        stats.avg_border_hubs
    );
    Ok(())
}

fn open_index_and_hubs(args: &Args, graph: &Graph) -> Result<(DiskIndex, HubSet), String> {
    let path: String = args.require("index")?;
    let cache: usize = args.get_or("cache", 4096)?;
    let index = DiskIndex::open(&path, cache).map_err(|e| format!("{path}: {e}"))?;
    let hubs = HubSet::from_ids(graph.num_nodes(), index.hub_ids());
    Ok((index, hubs))
}

/// `fastppv query`
pub fn query(argv: &[String]) -> CmdResult {
    let usage = "fastppv query --graph edges.txt [--undirected] \
                 --index index.fppv --node Q\n\
                 [--eta K | --l1 ERR] [--top K] [--alpha A] [--epsilon E] \
                 [--delta D]";
    let args = Args::parse(argv, &["undirected"], usage)?;
    let graph = load_graph(&args)?;
    let q: u32 = args.require("node")?;
    if q as usize >= graph.num_nodes() {
        return Err(format!(
            "node {q} out of range ({} nodes)",
            graph.num_nodes()
        ));
    }
    let config = config_from_args(&args)?;
    let top: usize = args.get_or("top", 10)?;
    let (index, hubs) = open_index_and_hubs(&args, &graph)?;
    let stop = match (args.get::<usize>("eta")?, args.get::<f64>("l1")?) {
        (Some(_), Some(_)) => return Err("give --eta or --l1, not both".to_string()),
        (Some(eta), None) => StoppingCondition::iterations(eta),
        (None, Some(l1)) => StoppingCondition::l1_error(l1),
        (None, None) => StoppingCondition::iterations(2),
    };
    let mut engine = QueryEngine::new(&graph, &hubs, &index, config);
    let result = engine.query(q, &stop);
    println!(
        "query {q}: {} iterations, guaranteed L1 error <= {:.5}, {:.2?}{}",
        result.iterations,
        result.l1_error,
        result.elapsed,
        if result.exhausted {
            " (frontier exhausted)"
        } else {
            ""
        }
    );
    for (rank, (node, score)) in result.top_k(top).into_iter().enumerate() {
        println!("{:>4}. node {node:<10} score {score:.6}", rank + 1);
    }
    Ok(())
}

/// `fastppv topk`
pub fn topk(argv: &[String]) -> CmdResult {
    let usage = "fastppv topk --graph edges.txt [--undirected] \
                 --index index.fppv --node Q --k K [--max-eta K]";
    let args = Args::parse(argv, &["undirected"], usage)?;
    let graph = load_graph(&args)?;
    let q: u32 = args.require("node")?;
    let k: usize = args.require("k")?;
    let max_eta: usize = args.get_or("max-eta", 10)?;
    let config = config_from_args(&args)?;
    let (index, hubs) = open_index_and_hubs(&args, &graph)?;
    let mut engine = QueryEngine::new(&graph, &hubs, &index, config);
    let res = engine.query_top_k(q, k, max_eta);
    println!(
        "top-{k} for query {q}: {} after {} iterations (phi = {:.5})",
        if res.certified {
            "CERTIFIED exact"
        } else {
            "not certified"
        },
        res.iterations,
        res.l1_error
    );
    for (rank, (node, score)) in res.nodes.into_iter().enumerate() {
        println!("{:>4}. node {node:<10} score >= {score:.6}", rank + 1);
    }
    Ok(())
}

/// `fastppv stats`
pub fn stats(argv: &[String]) -> CmdResult {
    let usage = "fastppv stats --index index.fppv";
    let args = Args::parse(argv, &[], usage)?;
    let path: String = args.require("index")?;
    let index = DiskIndex::open(&path, 1).map_err(|e| format!("{path}: {e}"))?;
    let ids = index.hub_ids();
    println!("index {path}:");
    println!("  hubs:          {}", index.hub_count());
    println!("  total entries: {}", index.total_entries());
    println!(
        "  size:          {:.2} MB",
        index.storage_bytes() as f64 / (1024.0 * 1024.0)
    );
    println!(
        "  entries/hub:   {:.1}",
        index.total_entries() as f64 / index.hub_count().max(1) as f64
    );
    if let (Some(first), Some(last)) = (ids.first(), ids.last()) {
        println!("  hub id range:  {first}..={last}");
    }
    Ok(())
}

/// `fastppv cluster`
pub fn cluster(argv: &[String]) -> CmdResult {
    let usage = "fastppv cluster --graph edges.txt [--undirected] \
                 --clusters K --out graph.clg [--seed S]";
    let args = Args::parse(argv, &["undirected"], usage)?;
    let graph = load_graph(&args)?;
    let k: usize = args.require("clusters")?;
    let out: String = args.require("out")?;
    let seed: u64 = args.get_or("seed", 0)?;
    let clustering = cluster_graph(
        &graph,
        k,
        ClusteringOptions {
            seed,
            ..Default::default()
        },
    );
    let sizes = write_clustered_graph(&graph, &clustering, &out).map_err(|e| e.to_string())?;
    let largest = sizes.iter().copied().max().unwrap_or(0);
    let total: u64 = sizes.iter().sum();
    println!(
        "wrote {out}: {k} clusters, largest {:.1} KB ({:.1}% of graph)",
        largest as f64 / 1024.0,
        100.0 * largest as f64 / total.max(1) as f64
    );
    Ok(())
}
