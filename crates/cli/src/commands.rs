//! The `fastppv` subcommands.

use std::path::{Path, PathBuf};
use std::time::Instant;

use fastppv_cluster::partition::{cluster_graph, ClusteringOptions};
use fastppv_cluster::store::write_clustered_graph;
use fastppv_cluster::ShardMap;
use fastppv_core::atomic_io;
use fastppv_core::autotune::{suggest_hub_count, AutotuneOptions};
use fastppv_core::hubs::{select_hubs_with_pagerank, HubPolicy, HubSet};
use fastppv_core::index::{DiskIndex, FlatIndex, PpvStore};
use fastppv_core::offline::build_index_parallel;
use fastppv_core::query::{QueryEngine, StoppingCondition};
use fastppv_core::{Config, DeltaConfig, Manifest, Wal, WalBatch};
use fastppv_graph::gen::{
    apply_event, barabasi_albert, erdos_renyi, synth_events, BibNetwork, DblpParams, EdgeEvent,
    SocialNetwork, SocialParams,
};
use fastppv_graph::io::{read_edge_list_file, write_edge_list, write_edge_list_file};
use fastppv_graph::{pagerank, DanglingPolicy, Graph, PageRankOptions};
use fastppv_server::{QueryService, Request, ServiceOptions};

use crate::args::{Args, CliError};

type CmdResult = Result<(), CliError>;

/// Config flags every index-touching command accepts (see
/// [`config_from_args`]).
const CONFIG_FLAGS: [&str; 4] = ["alpha", "epsilon", "delta", "clip"];

fn with_config_flags(base: &[&'static str]) -> Vec<&'static str> {
    let mut v = CONFIG_FLAGS.to_vec();
    v.extend_from_slice(base);
    v
}

fn load_graph(args: &Args) -> Result<Graph, String> {
    let path: String = args.require("graph")?;
    let undirected = args.has("undirected");
    read_edge_list_file(&path, undirected, DanglingPolicy::SelfLoop)
        .map_err(|e| format!("reading {path}: {e}"))
}

fn parse_policy(name: &str) -> Result<HubPolicy, String> {
    Ok(match name {
        "eu" | "expected-utility" => HubPolicy::ExpectedUtility,
        "pagerank" | "pr" => HubPolicy::PageRank,
        "outdeg" | "out-degree" => HubPolicy::OutDegree,
        "indeg" | "in-degree" => HubPolicy::InDegree,
        "random" => HubPolicy::Random,
        other => return Err(format!("unknown hub policy `{other}`")),
    })
}

/// Resolves the `--eta K | --l1 ERR` stopping condition (default η = 2).
fn stop_from_args(args: &Args) -> Result<StoppingCondition, CliError> {
    Ok(match (args.get::<usize>("eta")?, args.get::<f64>("l1")?) {
        (Some(_), Some(_)) => return Err(CliError::Usage("give --eta or --l1, not both".into())),
        (Some(eta), None) => StoppingCondition::iterations(eta),
        (None, Some(l1)) => StoppingCondition::l1_error(l1),
        (None, None) => StoppingCondition::iterations(2),
    })
}

fn config_from_args(args: &Args) -> Result<Config, String> {
    let mut config = Config::default();
    if let Some(eps) = args.get::<f64>("epsilon")? {
        config = config.with_epsilon(eps);
    }
    if let Some(delta) = args.get::<f64>("delta")? {
        config = config.with_delta(delta);
    }
    if let Some(clip) = args.get::<f64>("clip")? {
        config = config.with_clip(clip);
    }
    if let Some(alpha) = args.get::<f64>("alpha")? {
        config = config.with_alpha(alpha);
    }
    Ok(config)
}

/// `fastppv generate`
pub fn generate(argv: &[String]) -> CmdResult {
    let usage = "fastppv generate --kind dblp|lj|ba|er --out edges.txt \
                 [--nodes N] [--seed S]\n\
                 dblp: tripartite author-paper-venue (undirected)\n\
                 lj:   directed social network\n\
                 ba:   Barabasi-Albert (undirected)\n\
                 er:   Erdos-Renyi G(n, 5n) (directed)";
    let args = Args::parse(argv, &["kind", "out", "nodes", "seed"], &[], usage)?;
    let kind: String = args.require("kind")?;
    let out: String = args.require("out")?;
    let nodes: usize = args.get_or("nodes", 50_000)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let graph = match kind.as_str() {
        "dblp" => {
            BibNetwork::generate(
                DblpParams {
                    papers: nodes / 2,
                    ..Default::default()
                },
                seed,
            )
            .graph
        }
        "lj" => {
            SocialNetwork::generate(
                SocialParams {
                    nodes,
                    ..Default::default()
                },
                seed,
            )
            .graph
        }
        "ba" => barabasi_albert(nodes, 4, seed),
        "er" => erdos_renyi(nodes, nodes * 5, seed),
        other => return Err(format!("unknown kind `{other}`").into()),
    };
    write_edge_list_file(&graph, &out).map_err(|e| e.to_string())?;
    println!(
        "wrote {}: {} nodes, {} edges",
        out,
        graph.num_nodes(),
        graph.num_edges()
    );
    Ok(())
}

/// `fastppv pagerank`
pub fn pagerank_cmd(argv: &[String]) -> CmdResult {
    let usage = "fastppv pagerank --graph edges.txt [--undirected] [--top K]";
    let args = Args::parse(argv, &["graph", "top"], &["undirected"], usage)?;
    let graph = load_graph(&args)?;
    let top: usize = args.get_or("top", 10)?;
    let pr = pagerank(&graph, PageRankOptions::default());
    let mut order: Vec<u32> = (0..graph.num_nodes() as u32).collect();
    order.sort_by(|&a, &b| pr[b as usize].total_cmp(&pr[a as usize]));
    println!("top {top} nodes by global PageRank:");
    for (rank, &v) in order.iter().take(top).enumerate() {
        println!(
            "{:>4}. node {v:<10} pagerank {:.6}  (out-degree {})",
            rank + 1,
            pr[v as usize],
            graph.out_degree(v)
        );
    }
    Ok(())
}

/// `fastppv build`
pub fn build(argv: &[String]) -> CmdResult {
    let usage = "fastppv build --graph edges.txt [--undirected] --out index.fppv\n\
                 (--hubs N | --auto-target SUBGRAPH_NODES)\n\
                 [--arena-out arena.fppv3]\n\
                 [--policy eu|pagerank|outdeg|indeg|random] [--alpha A]\n\
                 [--epsilon E] [--delta D] [--clip C] [--threads T] [--seed S]\n\
                 \n\
                 --arena-out additionally writes the single-file arena\n\
                 format, which `query`/`serve`/`update` open zero-copy\n\
                 (mmap) instead of deserializing.";
    let args = Args::parse(
        argv,
        &with_config_flags(&[
            "graph",
            "out",
            "arena-out",
            "hubs",
            "auto-target",
            "policy",
            "threads",
            "seed",
        ]),
        &["undirected"],
        usage,
    )?;
    let graph = load_graph(&args)?;
    let out: String = args.require("out")?;
    let config = config_from_args(&args)?;
    let policy = parse_policy(&args.get_or("policy", "eu".to_string())?)?;
    let threads: usize = args.get_or(
        "threads",
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4),
    )?;
    let seed: u64 = args.get_or("seed", 0)?;
    let hub_count = match args.get::<usize>("hubs")? {
        Some(h) => h,
        None => {
            let target: f64 = args
                .require("auto-target")
                .map_err(|_| "give either --hubs N or --auto-target NODES".to_string())?;
            let started = Instant::now();
            let tuned = suggest_hub_count(
                &graph,
                &config,
                AutotuneOptions {
                    target_subgraph_nodes: target,
                    policy,
                    seed,
                    ..Default::default()
                },
            );
            println!(
                "autotune: |H| = {} (mean prime subgraph {:.0} nodes, \
                 {} probes, {:.2?})",
                tuned.hub_count,
                tuned.mean_subgraph_nodes,
                tuned.probes.len(),
                started.elapsed()
            );
            tuned.hub_count
        }
    };
    let hubs = select_hubs_with_pagerank(&graph, policy, hub_count, seed, None);
    let (index, stats) = build_index_parallel(&graph, &hubs, &config, threads);
    index.write_to_file(&out).map_err(|e| e.to_string())?;
    println!(
        "built {}: {} hubs, {} entries, {:.2} MB in {:.2?} \
         (avg subgraph {:.0} nodes, avg border hubs {:.1})",
        out,
        stats.hubs,
        stats.total_entries,
        stats.storage_bytes as f64 / (1024.0 * 1024.0),
        stats.build_time,
        stats.avg_subgraph_nodes,
        stats.avg_border_hubs
    );
    if let Some(arena_out) = args.get::<String>("arena-out")? {
        let flat = FlatIndex::from_memory(&index, &hubs);
        flat.write_to_file(&arena_out).map_err(|e| e.to_string())?;
        println!(
            "wrote arena {}: {:.2} MB single-file layout (opens zero-copy)",
            arena_out,
            flat.file_bytes() as f64 / (1024.0 * 1024.0)
        );
    }
    Ok(())
}

fn open_index_and_hubs(args: &Args, graph: &Graph) -> Result<(DiskIndex, HubSet), String> {
    let path: String = args.require("index")?;
    let cache: usize = args.get_or("cache", 4096)?;
    let index = DiskIndex::open(&path, cache).map_err(|e| format!("{path}: {e}"))?;
    let hubs = HubSet::from_ids(graph.num_nodes(), index.hub_ids());
    Ok((index, hubs))
}

/// Whether `path` starts with the single-file arena magic (`FPPVIDX3`).
/// Used to pick the opener: arena files load zero-copy via
/// [`FlatIndex::open`], everything else goes through the record-format
/// openers (which produce their own magic errors on mismatch).
fn is_arena_file(path: &str) -> Result<bool, String> {
    use std::io::Read;
    let mut f = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let mut magic = [0u8; 8];
    let n = f.read(&mut magic).map_err(|e| format!("{path}: {e}"))?;
    Ok(n == 8 && &magic == fastppv_core::protocol_consts::IDX3_MAGIC)
}

/// Opens `--index` as a serving [`FlatIndex`]: zero-copy (mmap) when the
/// file is the single-file arena format, otherwise deserialized from the
/// plain record format through [`FlatIndex::from_store`].
fn open_flat_store(args: &Args, graph: &Graph) -> Result<(FlatIndex, HubSet), CliError> {
    let path: String = args.require("index")?;
    if is_arena_file(&path)? {
        let flat = FlatIndex::open(&path).map_err(|e| format!("{path}: {e}"))?;
        if flat.capacity() != graph.num_nodes() {
            return Err(format!(
                "{path}: arena built for {} nodes but the graph has {}; \
                 rebuild the arena against this graph",
                flat.capacity(),
                graph.num_nodes()
            )
            .into());
        }
        let hubs = HubSet::from_ids(graph.num_nodes(), flat.hub_ids().to_vec());
        Ok((flat, hubs))
    } else {
        let (index, hubs) = open_index_and_hubs(args, graph)?;
        let flat = FlatIndex::from_store(graph.num_nodes(), &index, &index.hub_ids(), &hubs);
        Ok((flat, hubs))
    }
}

/// The serving store layout: the flat structure-of-arrays arena (default —
/// the index file is pulled into RAM once, reads are zero-copy) or the
/// file-backed store with a read cache (`--store disk`, for indexes larger
/// than memory).
enum StoreChoice {
    Flat(FlatIndex),
    Disk(DiskIndex),
}

fn open_store(args: &Args, graph: &Graph) -> Result<(StoreChoice, HubSet), CliError> {
    let kind: String = args.get_or("store", "flat".to_string())?;
    match kind.as_str() {
        "flat" => {
            let (flat, hubs) = open_flat_store(args, graph)?;
            Ok((StoreChoice::Flat(flat), hubs))
        }
        "disk" => {
            let path: String = args.require("index")?;
            if is_arena_file(&path)? {
                return Err(CliError::Usage(format!(
                    "{path} is a single-file arena; serve it with --store flat \
                     (the arena is mmap'd, not pulled into RAM)"
                )));
            }
            let (index, hubs) = open_index_and_hubs(args, graph)?;
            Ok((StoreChoice::Disk(index), hubs))
        }
        other => Err(CliError::Usage(format!(
            "--store must be flat or disk, got `{other}`"
        ))),
    }
}

/// `fastppv query`
pub fn query(argv: &[String]) -> CmdResult {
    let usage = "fastppv query --graph edges.txt [--undirected] \
                 --index index.fppv --node Q\n\
                 [--eta K | --l1 ERR] [--top K] [--store flat|disk] \
                 [--alpha A] [--epsilon E] [--delta D]";
    let args = Args::parse(
        argv,
        &with_config_flags(&[
            "graph", "index", "node", "eta", "l1", "top", "cache", "store",
        ]),
        &["undirected"],
        usage,
    )?;
    let graph = load_graph(&args)?;
    let q: u32 = args.require("node")?;
    if q as usize >= graph.num_nodes() {
        return Err(format!("node {q} out of range ({} nodes)", graph.num_nodes()).into());
    }
    let config = config_from_args(&args)?;
    let top: usize = args.get_or("top", 10)?;
    let (store, hubs) = open_store(&args, &graph)?;
    let stop = stop_from_args(&args)?;
    match store {
        StoreChoice::Flat(s) => run_query(&graph, &hubs, &s, config, q, &stop, top),
        StoreChoice::Disk(s) => run_query(&graph, &hubs, &s, config, q, &stop, top),
    }
    Ok(())
}

fn run_query<S: PpvStore>(
    graph: &Graph,
    hubs: &HubSet,
    store: &S,
    config: Config,
    q: u32,
    stop: &StoppingCondition,
    top: usize,
) {
    let engine = QueryEngine::new(graph, hubs, store, config);
    let result = engine.query(q, stop);
    println!(
        "query {q}: {} iterations, guaranteed L1 error <= {:.5}, {:.2?}{}",
        result.iterations,
        result.l1_error,
        result.elapsed,
        if result.exhausted {
            " (frontier exhausted)"
        } else {
            ""
        }
    );
    for (rank, (node, score)) in result.top_k(top).into_iter().enumerate() {
        println!("{:>4}. node {node:<10} score {score:.6}", rank + 1);
    }
}

/// `fastppv topk`
pub fn topk(argv: &[String]) -> CmdResult {
    let usage = "fastppv topk --graph edges.txt [--undirected] \
                 --index index.fppv --node Q --k K [--max-eta K] \
                 [--store flat|disk]";
    let args = Args::parse(
        argv,
        &with_config_flags(&["graph", "index", "node", "k", "max-eta", "cache", "store"]),
        &["undirected"],
        usage,
    )?;
    let graph = load_graph(&args)?;
    let q: u32 = args.require("node")?;
    let k: usize = args.require("k")?;
    let max_eta: usize = args.get_or("max-eta", 10)?;
    let config = config_from_args(&args)?;
    let (store, hubs) = open_store(&args, &graph)?;
    match store {
        StoreChoice::Flat(s) => run_topk(&graph, &hubs, &s, config, q, k, max_eta),
        StoreChoice::Disk(s) => run_topk(&graph, &hubs, &s, config, q, k, max_eta),
    }
    Ok(())
}

fn run_topk<S: PpvStore>(
    graph: &Graph,
    hubs: &HubSet,
    store: &S,
    config: Config,
    q: u32,
    k: usize,
    max_eta: usize,
) {
    let engine = QueryEngine::new(graph, hubs, store, config);
    let res = engine.query_top_k(q, k, max_eta);
    println!(
        "top-{k} for query {q}: {} after {} iterations (phi = {:.5})",
        if res.certified {
            "CERTIFIED exact"
        } else {
            "not certified"
        },
        res.iterations,
        res.l1_error
    );
    for (rank, (node, score)) in res.nodes.into_iter().enumerate() {
        println!("{:>4}. node {node:<10} score >= {score:.6}", rank + 1);
    }
}

/// `fastppv serve`
pub fn serve(argv: &[String]) -> CmdResult {
    let usage = "fastppv serve --graph edges.txt [--undirected] --index index.fppv\n\
                 [--listen ADDR] [--workers N] [--queue N] [--hot-cache N]\n\
                 [--cache N] [--store flat|disk] [--eta K | --l1 ERR]\n\
                 [--top K] [--batch B] [--wal DIR]\n\
                 [--alpha A] [--epsilon E] [--delta D]\n\
                 \n\
                 Default mode reads one query per line from stdin:\n\
                 `NODE [eta=K | l1=ERR]` (the optional suffix overrides the\n\
                 default stopping condition per request), writes one line\n\
                 per answer to stdout, a summary to stderr on EOF.\n\
                 \n\
                 With --listen ADDR (e.g. 127.0.0.1:7878, port 0 for an\n\
                 ephemeral port) the service speaks the length-prefixed\n\
                 binary TCP protocol of fastppv_server::net instead: the\n\
                 bound address is announced on stderr, connections are\n\
                 served until the process is killed.\n\
                 \n\
                 With --wal DIR (a directory written by `fastppv update`)\n\
                 startup recovers the most recent durable state: the\n\
                 checkpointed graph + arena replace --graph/--index content\n\
                 and logged-but-uncheckpointed events are replayed before\n\
                 the first query is served. The log itself is left\n\
                 untouched. Requires --store flat.\n\
                 \n\
                 With --shard-id N the opened index is sliced to the hubs\n\
                 this shard owns before serving (--num-shards K for the\n\
                 default round-robin map, or --shard-map FILE written by\n\
                 `fastppv cluster --shards`); `fastppv route` scatters\n\
                 queries across such processes.\n\
                 \n\
                 With --stats ADDR no service is started at all: the\n\
                 running service (shard or router) at ADDR is asked for\n\
                 its stats once, the answer is printed, and the command\n\
                 exits.";
    let args = Args::parse(
        argv,
        &with_config_flags(&[
            "graph",
            "index",
            "listen",
            "workers",
            "queue",
            "hot-cache",
            "cache",
            "eta",
            "l1",
            "top",
            "batch",
            "store",
            "wal",
            "shard-id",
            "num-shards",
            "shard-map",
            "stats",
        ]),
        &["undirected"],
        usage,
    )?;
    if let Some(addr) = args.get::<String>("stats")? {
        return print_remote_stats(&addr);
    }
    // Validate the invocation before the expensive graph/index loads: the
    // service asserts on zero sizes, so reject them as usage errors
    // (exit 2) instead of surfacing a panic.
    let default_stop = stop_from_args(&args)?;
    let options = ServiceOptions {
        workers: args.get_or(
            "workers",
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4),
        )?,
        queue_capacity: args.get_or("queue", 1024)?,
        cache_capacity: args.get_or("hot-cache", 4096)?,
    };
    if options.workers == 0 {
        return Err(CliError::Usage("--workers must be positive".into()));
    }
    if options.queue_capacity == 0 {
        return Err(CliError::Usage("--queue must be positive".into()));
    }
    let top: usize = args.get_or("top", 5)?;
    let batch: usize = args.get_or("batch", 256)?;
    if batch == 0 {
        return Err(CliError::Usage("--batch must be positive".into()));
    }
    let listen: Option<String> = args.get("listen")?;
    let wal: Option<String> = args.get("wal")?;
    let graph = load_graph(&args)?;
    let config = config_from_args(&args)?;
    let (store, hubs) = open_store(&args, &graph)?;
    if let Some(shard_id) = args.get::<u32>("shard-id")? {
        if wal.is_some() {
            return Err(CliError::Usage(
                "--shard-id cannot be combined with --wal: sharded indexes are \
                 updated through the router's two-phase barrier, not a local WAL"
                    .into(),
            ));
        }
        let map = shard_map_from_args(&args, graph.num_nodes())?;
        if shard_id >= map.num_shards() {
            return Err(CliError::Usage(format!(
                "--shard-id {shard_id} out of range ({} shards)",
                map.num_shards()
            )));
        }
        // Slice the full index down to the hubs this shard owns; the
        // service still gets the full hub set (prime-PPV decomposition
        // needs to block at *every* hub, not just owned ones).
        let slice = match &store {
            StoreChoice::Flat(s) => fastppv_cluster::slice_store(s, &hubs, &map, shard_id),
            StoreChoice::Disk(s) => fastppv_cluster::slice_store(s, &hubs, &map, shard_id),
        };
        eprintln!(
            "shard {shard_id}/{}: holding {} of {} hubs",
            map.num_shards(),
            slice.hub_ids().len(),
            hubs.ids().len()
        );
        return serve_entry(
            graph,
            hubs,
            slice,
            config,
            options,
            default_stop,
            top,
            batch,
            listen,
        );
    }
    if args.get::<String>("shard-map")?.is_some() || args.get::<u32>("num-shards")?.is_some() {
        return Err(CliError::Usage(
            "--shard-map/--num-shards only apply together with --shard-id".into(),
        ));
    }
    match store {
        StoreChoice::Flat(s) => {
            let (graph, hubs, s, wal_dir) = match wal {
                None => (graph, hubs, s, None),
                Some(dir) => {
                    let mut w = open_wal_dir(PathBuf::from(dir))?;
                    match w.recovered.take() {
                        None => (graph, hubs, s, Some(w)),
                        Some((g, flat)) => {
                            if g.num_nodes() != graph.num_nodes()
                                || flat.capacity() != graph.num_nodes()
                            {
                                return Err(format!(
                                    "wal dir checkpoint has {} nodes but --graph has {}; \
                                     wrong --wal directory for this graph?",
                                    g.num_nodes(),
                                    graph.num_nodes()
                                )
                                .into());
                            }
                            let hubs = HubSet::from_ids(g.num_nodes(), flat.hub_ids().to_vec());
                            (g, hubs, flat, Some(w))
                        }
                    }
                }
            };
            serve_flat(
                graph,
                hubs,
                s,
                config,
                options,
                default_stop,
                top,
                batch,
                listen,
                wal_dir,
            )
        }
        StoreChoice::Disk(s) => {
            if wal.is_some() {
                return Err(CliError::Usage(
                    "--wal requires --store flat (recovery replays into the arena)".into(),
                ));
            }
            serve_entry(
                graph,
                hubs,
                s,
                config,
                options,
                default_stop,
                top,
                batch,
                listen,
            )
        }
    }
}

/// Resolves `--shard-id`'s hub→shard map: a `--shard-map` file (written
/// by `fastppv cluster --shards`) or the round-robin default over
/// `--num-shards`.
fn shard_map_from_args(args: &Args, num_nodes: usize) -> Result<ShardMap, CliError> {
    match (
        args.get::<String>("shard-map")?,
        args.get::<u32>("num-shards")?,
    ) {
        (Some(_), Some(_)) => Err(CliError::Usage(
            "give --shard-map or --num-shards, not both".into(),
        )),
        (Some(path), None) => {
            let map = ShardMap::read_from_file(&path).map_err(|e| format!("{path}: {e}"))?;
            if map.num_nodes() != num_nodes {
                return Err(format!(
                    "{path}: shard map covers {} nodes but the graph has {num_nodes}",
                    map.num_nodes()
                )
                .into());
            }
            Ok(map)
        }
        (None, Some(0)) => Err(CliError::Usage("--num-shards must be positive".into())),
        (None, Some(k)) => Ok(ShardMap::round_robin(num_nodes, k)),
        (None, None) => Err(CliError::Usage(
            "--shard-id needs --num-shards K or --shard-map FILE".into(),
        )),
    }
}

/// The `--stats ADDR` one-shot mode: ask a running service (shard or
/// router — both speak the same protocol) for its stats and print them.
fn print_remote_stats(addr: &str) -> CmdResult {
    let mut client = fastppv_server::net::Client::connect(addr)
        .map_err(|e| format!("connecting {addr}: {e}"))?;
    let hello = *client.hello();
    let stats = client
        .stats()
        .map_err(|e| format!("stats from {addr}: {e}"))?;
    println!(
        "{addr}: epoch {}, {} nodes, alpha {}, delta {}",
        stats.epoch, hello.num_nodes, hello.alpha, hello.delta
    );
    println!(
        "in-flight {}, recent p99 {:.3} ms, degraded {}, shed {}",
        stats.in_flight,
        stats.recent_p99.as_secs_f64() * 1e3,
        stats.degraded,
        stats.shed
    );
    Ok(())
}

/// The `--store flat` serve path: like [`serve_entry`], plus WAL startup
/// recovery — events the last `fastppv update` logged but had not yet
/// checkpointed are replayed into the service before the first query.
#[allow(clippy::too_many_arguments)]
fn serve_flat(
    graph: Graph,
    hubs: HubSet,
    store: FlatIndex,
    config: Config,
    options: ServiceOptions,
    default_stop: StoppingCondition,
    top: usize,
    batch: usize,
    listen: Option<String>,
    wal_dir: Option<WalDir>,
) -> CmdResult {
    let num_nodes = graph.num_nodes();
    let service = std::sync::Arc::new(QueryService::new(
        std::sync::Arc::new(graph),
        std::sync::Arc::new(hubs),
        std::sync::Arc::new(store),
        config,
        options,
    ));
    if let Some(w) = wal_dir {
        let mut replayed = 0u64;
        for batch in &w.pending {
            for ev in &batch.events {
                let next = apply_event(&service.graph(), ev);
                service.apply_update(next, &[ev.tail]);
                replayed += 1;
            }
        }
        if w.checkpoint_seq > 0 || replayed > 0 {
            eprintln!(
                "recovered from {}: checkpoint at event {}, replayed {replayed} \
                 wal events (serving epoch {})",
                w.dir.display(),
                w.checkpoint_seq,
                service.epoch()
            );
        }
    }
    match listen {
        Some(addr) => serve_net(service, &addr, num_nodes, options),
        None => serve_loop(service, num_nodes, options, default_stop, top, batch),
    }
}

/// Builds the service and dispatches to the stdin/stdout loop or the TCP
/// front-end, generic over the store layout.
#[allow(clippy::too_many_arguments)]
fn serve_entry<S: PpvStore + fastppv_server::ShardRefresh + Send + Sync + 'static>(
    graph: Graph,
    hubs: HubSet,
    store: S,
    config: Config,
    options: ServiceOptions,
    default_stop: StoppingCondition,
    top: usize,
    batch: usize,
    listen: Option<String>,
) -> CmdResult {
    let num_nodes = graph.num_nodes();
    let service = std::sync::Arc::new(QueryService::new(
        std::sync::Arc::new(graph),
        std::sync::Arc::new(hubs),
        std::sync::Arc::new(store),
        config,
        options,
    ));
    match listen {
        Some(addr) => serve_net(service, &addr, num_nodes, options),
        None => serve_loop(service, num_nodes, options, default_stop, top, batch),
    }
}

/// The `--listen` mode: the length-prefixed binary TCP protocol of
/// [`fastppv_server::net`], served until the process is killed.
fn serve_net<S: PpvStore + fastppv_server::ShardRefresh + Send + Sync + 'static>(
    service: std::sync::Arc<QueryService<S>>,
    addr: &str,
    num_nodes: usize,
    options: ServiceOptions,
) -> CmdResult {
    let mb = |b: usize| b as f64 / (1024.0 * 1024.0);
    let store = service.store();
    let listener = std::net::TcpListener::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
    let server = fastppv_server::net::serve(service, listener).map_err(|e| e.to_string())?;
    eprintln!(
        "listening on {} ({num_nodes} nodes, {} workers, queue {}, hot cache {}; \
         index {:.2} MB resident, {:.2} MB mapped)",
        server.local_addr(),
        options.workers,
        options.queue_capacity,
        options.cache_capacity,
        mb(store.resident_bytes()),
        mb(store.mapped_bytes())
    );
    server.wait();
    Ok(())
}

/// The stdin/stdout serving loop.
fn serve_loop<S: PpvStore + Send + Sync>(
    service: std::sync::Arc<QueryService<S>>,
    num_nodes: usize,
    options: ServiceOptions,
    default_stop: StoppingCondition,
    top: usize,
    batch: usize,
) -> CmdResult {
    let mb = |b: usize| b as f64 / (1024.0 * 1024.0);
    eprintln!(
        "serving {num_nodes} nodes with {} workers (queue {}, hot cache {}; \
         index {:.2} MB resident, {:.2} MB mapped); reading queries from stdin",
        options.workers,
        options.queue_capacity,
        options.cache_capacity,
        mb(service.store().resident_bytes()),
        mb(service.store().mapped_bytes())
    );

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let started = Instant::now();
    let mut served = 0u64;
    // Bounded: past the cap the p50/p99 summary covers the first
    // LATENCY_SAMPLE_CAP requests instead of growing without limit.
    const LATENCY_SAMPLE_CAP: usize = 1 << 20;
    // Hub and non-hub sources are different latency regimes (index lookup
    // vs on-the-fly prime-PPV), so the summary keeps them apart.
    let mut hub_latencies: Vec<std::time::Duration> = Vec::new();
    let mut nonhub_latencies: Vec<std::time::Duration> = Vec::new();
    // Hoisted out of the per-response loop: `hubs()` pins a snapshot
    // (lock + Arc clones) per call, and the hub set is shared unchanged
    // across updates, so one handle serves the whole session.
    let hubs = service.hubs();
    let mut pending: Vec<Request> = Vec::with_capacity(batch);
    let mut flush = |pending: &mut Vec<Request>,
                     hub_latencies: &mut Vec<std::time::Duration>,
                     nonhub_latencies: &mut Vec<std::time::Duration>,
                     served: &mut u64|
     -> Result<(), String> {
        if pending.is_empty() {
            return Ok(());
        }
        let responses = service.process_batch(std::mem::take(pending));
        for r in &responses {
            use std::io::Write;
            write!(
                out,
                "node {} iterations={} phi={:.6}{} top:",
                r.query,
                r.iterations,
                r.l1_error,
                if r.cached { " cached" } else { "" }
            )
            .map_err(|e| e.to_string())?;
            for (v, s) in r.top_k(top) {
                write!(out, " {v}:{s:.6}").map_err(|e| e.to_string())?;
            }
            writeln!(out).map_err(|e| e.to_string())?;
            let sample = if hubs.is_hub(r.query) {
                &mut *hub_latencies
            } else {
                &mut *nonhub_latencies
            };
            if sample.len() < LATENCY_SAMPLE_CAP {
                sample.push(r.latency);
            }
        }
        {
            use std::io::Write;
            out.flush().map_err(|e| e.to_string())?;
        }
        *served += responses.len() as u64;
        Ok(())
    };
    for line in std::io::BufRead::lines(stdin.lock()) {
        let line = line.map_err(|e| e.to_string())?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_serve_line(line, default_stop, num_nodes) {
            Ok(request) => pending.push(request),
            Err(e) => eprintln!("skipping `{line}`: {e}"),
        }
        if pending.len() >= batch {
            flush(
                &mut pending,
                &mut hub_latencies,
                &mut nonhub_latencies,
                &mut served,
            )?;
        }
    }
    flush(
        &mut pending,
        &mut hub_latencies,
        &mut nonhub_latencies,
        &mut served,
    )?;

    let elapsed = started.elapsed();
    let stats = service.cache_stats();
    // One sort per class; the pooled p50/p99 come from the two sorted
    // samples via a merge walk — no clone, no third sort.
    let hub = fastppv_server::LatencySummary::of_mut(&mut hub_latencies);
    let nonhub = fastppv_server::LatencySummary::of_mut(&mut nonhub_latencies);
    let overall_p50 =
        fastppv_server::percentile_of_sorted_pair(&hub_latencies, &nonhub_latencies, 0.50);
    let overall_p99 =
        fastppv_server::percentile_of_sorted_pair(&hub_latencies, &nonhub_latencies, 0.99);
    eprintln!(
        "served {served} queries in {elapsed:.2?} ({:.0} QPS); \
         p50 {:.2?}, p99 {:.2?}; \
         hub sources {} (p50 {:.2?}, p99 {:.2?}), \
         non-hub sources {} (p50 {:.2?}, p99 {:.2?}); \
         cache hits {} / misses {}; \
         index {:.2} MB resident, {:.2} MB mapped",
        served as f64 / elapsed.as_secs_f64().max(1e-9),
        overall_p50,
        overall_p99,
        hub.queries,
        hub.p50,
        hub.p99,
        nonhub.queries,
        nonhub.p50,
        nonhub.p99,
        stats.hits,
        stats.misses,
        mb(service.store().resident_bytes()),
        mb(service.store().mapped_bytes())
    );
    Ok(())
}

/// Parses a serve input line: `NODE [eta=K | l1=ERR]`.
fn parse_serve_line(
    line: &str,
    default_stop: StoppingCondition,
    num_nodes: usize,
) -> Result<Request, String> {
    let mut parts = line.split_whitespace();
    let node: u32 = parts
        .next()
        .ok_or("empty line")?
        .parse()
        .map_err(|_| "not a node id".to_string())?;
    if node as usize >= num_nodes {
        return Err(format!("node {node} out of range ({num_nodes} nodes)"));
    }
    let stop = match parts.next() {
        None => default_stop,
        Some(spec) => match spec.split_once('=') {
            Some(("eta", v)) => {
                StoppingCondition::iterations(v.parse().map_err(|_| format!("bad eta `{v}`"))?)
            }
            Some(("l1", v)) => {
                StoppingCondition::l1_error(v.parse().map_err(|_| format!("bad l1 `{v}`"))?)
            }
            _ => return Err(format!("unknown per-query option `{spec}`")),
        },
    };
    if parts.next().is_some() {
        return Err("too many tokens".into());
    }
    Ok(Request {
        query: node,
        stop,
        deadline: None,
    })
}

// ---------------------------------------------------------------------------
// Durability: update WAL + generation-stamped checkpoints
// ---------------------------------------------------------------------------

/// File names inside a WAL directory. The directory as a whole is the
/// durable unit: `wal.log` (FPPVWAL1 edge events, appended *before* each
/// event is applied), `manifest` (FPPVMAN1, the atomic commit point naming
/// the current generation files), and `arena.gen-N` / `graph.gen-N`
/// checkpoints (each published via temp + fsync + rename).
const WAL_LOG: &str = "wal.log";
const WAL_MANIFEST: &str = "manifest";

/// A WAL directory opened for recovery + appends.
///
/// Crash-consistency argument, by interruption point:
/// * after `append`, before apply — the event is in `pending` on restart
///   and replayed;
/// * during a checkpoint — generation files and the manifest are each
///   written atomically, so restart sees either the old manifest (WAL
///   still covers the tail) or the new one (stale WAL records are
///   filtered by `seq`);
/// * after the manifest, before `truncate` — records below
///   `checkpoint_seq` are dropped as already-applied.
struct WalDir {
    dir: PathBuf,
    wal: Wal,
    /// Events `[0, checkpoint_seq)` are baked into the checkpoint files.
    checkpoint_seq: u64,
    /// WAL batches not yet reflected in a checkpoint (seq ≥ `checkpoint_seq`).
    pending: Vec<WalBatch>,
    /// The checkpointed (graph, arena) pair, when a manifest was present.
    recovered: Option<(Graph, FlatIndex)>,
}

fn wal_err(dir: &Path, e: impl std::fmt::Display) -> CliError {
    CliError::Runtime(format!(
        "wal dir {}: {e} (pass --no-wal to run without crash durability)",
        dir.display()
    ))
}

/// Opens (creating if needed) a WAL directory and performs the read side
/// of recovery: load the manifest, open the checkpointed generation files
/// it names, and split the log into already-applied and pending records.
/// Fails closed — an unwritable directory, a corrupt manifest, or a log
/// that disagrees with the manifest is an error, never a silent reset.
fn open_wal_dir(dir: PathBuf) -> Result<WalDir, CliError> {
    std::fs::create_dir_all(&dir).map_err(|e| wal_err(&dir, e))?;
    let manifest = Manifest::read(dir.join(WAL_MANIFEST)).map_err(|e| wal_err(&dir, e))?;
    let (wal, batches) = Wal::open(dir.join(WAL_LOG)).map_err(|e| wal_err(&dir, e))?;
    let (checkpoint_seq, recovered) = match manifest {
        None => (0, None),
        Some(m) => {
            let graph = read_edge_list_file(dir.join(&m.graph_name), false, DanglingPolicy::Keep)
                .map_err(|e| wal_err(&dir, format!("{}: {e}", m.graph_name)))?;
            let flat = FlatIndex::open(dir.join(&m.arena_name))
                .map_err(|e| wal_err(&dir, format!("{}: {e}", m.arena_name)))?;
            (m.seq, Some((graph, flat)))
        }
    };
    // Records fully covered by the checkpoint are stale — the crash
    // happened between the manifest publish and the log truncate.
    let pending: Vec<WalBatch> = batches
        .into_iter()
        .filter(|b| b.end_seq() > checkpoint_seq)
        .collect();
    if let Some(first) = pending.first() {
        // Checkpoints land on batch boundaries, so the first live batch
        // must start exactly at the checkpoint; anything else means the
        // directory was tampered with or mixes runs. Fail closed rather
        // than double-apply or skip events.
        if first.seq != checkpoint_seq {
            return Err(wal_err(
                &dir,
                format!(
                    "log resumes at event {} but the checkpoint covers {}",
                    first.seq, checkpoint_seq
                ),
            ));
        }
    }
    Ok(WalDir {
        dir,
        wal,
        checkpoint_seq,
        pending,
        recovered,
    })
}

impl WalDir {
    /// Publishes a checkpoint of `(graph, flat)` as generation `seq`:
    /// generation files first (each temp + fsync + rename), then the
    /// manifest (the single atomic commit point), then the log truncate.
    /// Older generation files are garbage once the manifest moves on;
    /// their removal is best-effort — a crash there only leaves extras.
    fn publish_checkpoint(&mut self, seq: u64, graph: &Graph, flat: &FlatIndex) -> CmdResult {
        let arena_name = format!("arena.gen-{seq}");
        let graph_name = format!("graph.gen-{seq}");
        flat.write_to_file(self.dir.join(&arena_name))
            .map_err(|e| wal_err(&self.dir, format!("{arena_name}: {e}")))?;
        atomic_io::write_atomic(self.dir.join(&graph_name), |w| write_edge_list(graph, w))
            .map_err(|e| wal_err(&self.dir, format!("{graph_name}: {e}")))?;
        Manifest {
            seq,
            arena_name,
            graph_name,
        }
        .write(self.dir.join(WAL_MANIFEST))
        .map_err(|e| wal_err(&self.dir, e))?;
        self.wal.truncate().map_err(|e| wal_err(&self.dir, e))?;
        self.checkpoint_seq = seq;
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                let stale = |prefix: &str| {
                    name.strip_prefix(prefix)
                        .and_then(|g| g.parse::<u64>().ok())
                        .is_some_and(|g| g != seq)
                };
                if stale("arena.gen-") || stale("graph.gen-") {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        Ok(())
    }
}

/// `fastppv update`
pub fn update(argv: &[String]) -> CmdResult {
    let usage = "fastppv update --graph edges.txt [--undirected] --index index.fppv\n\
                 [--events N] [--delete-fraction F] [--budget B] [--seed S]\n\
                 [--wal DIR | --no-wal] [--checkpoint-every K]\n\
                 [--alpha A] [--epsilon E] [--delta D] [--clip C]\n\
                 \n\
                 Streaming-update exerciser: synthesizes N seeded single-edge\n\
                 insert/delete events and streams them through a serving\n\
                 QueryService, refreshing the index after each one. With a\n\
                 positive --budget B dirty hubs are patched by delta\n\
                 propagation under a per-hub error budget (B = 0 recomputes\n\
                 every dirty hub exactly). Reports sustained edge-events/s,\n\
                 the patched/recomputed split, and the certified budget\n\
                 watermark of the final index. Pass the same --epsilon etc.\n\
                 the index was built with.\n\
                 \n\
                 Durability: each event is appended to a write-ahead log\n\
                 (--wal DIR, default <index>.wal.d) before it is applied,\n\
                 and every K events (--checkpoint-every, default 64) plus at\n\
                 exit the refreshed arena + graph are checkpointed atomically\n\
                 and the log truncated. Re-running the same invocation after\n\
                 a crash — SIGKILL included — recovers the exact pre-crash\n\
                 state from checkpoint + log and finishes the stream.\n\
                 --no-wal opts out (no persistence, no recovery).";
    let args = Args::parse(
        argv,
        &with_config_flags(&[
            "graph",
            "index",
            "events",
            "delete-fraction",
            "budget",
            "seed",
            "cache",
            "wal",
            "checkpoint-every",
        ]),
        &["undirected", "no-wal"],
        usage,
    )?;
    let events_count: usize = args.get_or("events", 100)?;
    let delete_fraction: f64 = args.get_or("delete-fraction", 0.2)?;
    let budget: f64 = args.get_or("budget", 0.01)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let checkpoint_every: u64 = args.get_or("checkpoint-every", 64)?;
    if !(0.0..=1.0).contains(&delete_fraction) {
        return Err(CliError::Usage(
            "--delete-fraction must be in [0, 1]".into(),
        ));
    }
    if budget < 0.0 {
        return Err(CliError::Usage("--budget must be non-negative".into()));
    }
    if checkpoint_every == 0 {
        return Err(CliError::Usage(
            "--checkpoint-every must be positive".into(),
        ));
    }
    if args.has("no-wal") && args.get::<String>("wal")?.is_some() {
        return Err(CliError::Usage(
            "give --wal DIR or --no-wal, not both".into(),
        ));
    }
    let graph = load_graph(&args)?;
    if graph.num_nodes() < 2 {
        return Err("need at least two nodes to synthesize edge events"
            .to_string()
            .into());
    }
    let config = config_from_args(&args)?;
    let mut wal_dir = if args.has("no-wal") {
        None
    } else {
        let index_path: String = args.require("index")?;
        let dir: String = args.get_or("wal", format!("{index_path}.wal.d"))?;
        Some(open_wal_dir(PathBuf::from(dir))?)
    };

    // The synthesized stream depends only on the *initial* graph (and the
    // knobs), so a recovered run re-derives the identical event sequence
    // and resumes mid-stream.
    let events = synth_events(&graph, events_count, delete_fraction, seed);
    let num_nodes = graph.num_nodes();
    let recovered_from = wal_dir.as_ref().map_or(0, |w| w.checkpoint_seq);
    if recovered_from > events.len() as u64 {
        return Err(format!(
            "wal dir checkpoint covers {recovered_from} events but --events is {}; \
             rerun with the flags the wal was recorded under, or --no-wal",
            events.len()
        )
        .into());
    }
    // Serving starts from the checkpoint when one exists; otherwise from
    // the --index as before.
    let (start_graph, flat, hubs) = match wal_dir.as_mut().and_then(|w| w.recovered.take()) {
        Some((g, f)) => {
            if g.num_nodes() != num_nodes || f.capacity() != num_nodes {
                return Err(format!(
                    "wal dir checkpoint has {} nodes but --graph has {num_nodes}; \
                     wrong --wal directory for this graph?",
                    g.num_nodes()
                )
                .into());
            }
            let hubs = HubSet::from_ids(num_nodes, f.hub_ids().to_vec());
            (g, f, hubs)
        }
        None => {
            let (f, h) = open_flat_store(&args, &graph)?;
            (graph, f, h)
        }
    };
    let delta = if budget > 0.0 {
        DeltaConfig::default().with_budget(budget)
    } else {
        DeltaConfig::exact()
    };
    let service = QueryService::new(
        std::sync::Arc::new(start_graph),
        std::sync::Arc::new(hubs),
        std::sync::Arc::new(flat),
        config,
        ServiceOptions {
            workers: 1,
            queue_capacity: 16,
            cache_capacity: 0,
        },
    )
    .with_delta_config(delta);

    // A WAL event must agree with the re-synthesized stream at the same
    // position; divergence means the directory was recorded under
    // different knobs, and applying it would corrupt the resumed run.
    let check_stream = |i: u64, ev: &EdgeEvent| -> CmdResult {
        let ok = events
            .get(i as usize)
            .is_some_and(|e| e.tail == ev.tail && e.head == ev.head && e.insert == ev.insert);
        if ok {
            Ok(())
        } else {
            Err(format!(
                "wal event {i} does not match the synthesized stream; the wal dir \
                 was recorded under different --graph/--events/--seed/\
                 --delete-fraction flags (rerun with those, or remove the dir, \
                 or pass --no-wal)"
            )
            .into())
        }
    };

    // Recovery replay: events the crashed run logged but had not yet
    // checkpointed. Already durable in the log, so not re-appended.
    let mut applied = recovered_from;
    let mut replayed = 0u64;
    if let Some(w) = wal_dir.as_mut() {
        for batch in std::mem::take(&mut w.pending) {
            for (off, ev) in batch.events.iter().enumerate() {
                let i = batch.seq + off as u64;
                if i < applied {
                    continue;
                }
                check_stream(i, ev)?;
                let next = apply_event(&service.graph(), ev);
                service.apply_update(next, &[ev.tail]);
                applied = i + 1;
                replayed += 1;
            }
        }
    }

    let mut wall = std::time::Duration::ZERO;
    let (mut patched, mut noop, mut recomputed) = (0usize, 0usize, 0usize);
    let mut watermark = 0.0f64;
    let mut checkpoints = 0usize;
    let mut cur = service.graph();
    for (i, ev) in events.iter().enumerate().skip(applied as usize) {
        if let Some(w) = wal_dir.as_mut() {
            w.wal
                .append(i as u64, std::slice::from_ref(ev))
                .map_err(|e| wal_err(&w.dir, e))?;
        }
        let next = apply_event(&cur, ev);
        let started = Instant::now();
        let stats = service.apply_update(next, &[ev.tail]);
        wall += started.elapsed();
        patched += stats.delta_patched;
        noop += stats.delta_noop;
        recomputed += stats.recomputed;
        watermark = watermark.max(stats.budget_watermark);
        cur = service.graph();
        applied = i as u64 + 1;
        if let Some(w) = wal_dir.as_mut() {
            if applied % checkpoint_every == 0 {
                let store = service.store();
                w.publish_checkpoint(applied, &cur, &store)?;
                checkpoints += 1;
            }
        }
    }
    if let Some(w) = wal_dir.as_mut() {
        if w.checkpoint_seq != applied && applied > 0 {
            let store = service.store();
            w.publish_checkpoint(applied, &service.graph(), &store)?;
            checkpoints += 1;
        }
    }
    let final_graph = service.graph();
    if recovered_from > 0 || replayed > 0 {
        println!(
            "recovered: checkpoint at event {recovered_from} + {replayed} replayed \
             wal events; resumed the stream at event {}",
            recovered_from + replayed
        );
    }
    println!(
        "streamed {} events ({} inserts, {} deletes) in {:.2?} — {:.1} events/s \
         (refresh wall-clock only)",
        events.len(),
        events.iter().filter(|e| e.insert).count(),
        events.iter().filter(|e| !e.insert).count(),
        wall,
        (events.len() as u64 - recovered_from - replayed) as f64 / wall.as_secs_f64().max(1e-9)
    );
    if let Some(w) = &wal_dir {
        println!(
            "durable: wal {} (checkpoint every {checkpoint_every} events, \
             {checkpoints} published, log at event {applied})",
            w.dir.display()
        );
    }
    println!(
        "dirty hubs: {} delta-patched ({} no-op) + {} recomputed exactly; \
         published epoch {}",
        patched,
        noop,
        recomputed,
        service.epoch()
    );
    if budget > 0.0 {
        println!(
            "certified error watermark {watermark:.3e} of per-hub budget {budget} \
             (every served answer is within the watermark of an exact recompute)"
        );
    }
    println!(
        "final graph: {} nodes, {} edges",
        final_graph.num_nodes(),
        final_graph.num_edges()
    );
    Ok(())
}

/// `fastppv stats`
pub fn stats(argv: &[String]) -> CmdResult {
    let usage = "fastppv stats --index index.fppv";
    let args = Args::parse(argv, &["index"], &[], usage)?;
    let path: String = args.require("index")?;
    let mb = |b: usize| b as f64 / (1024.0 * 1024.0);
    if is_arena_file(&path)? {
        let flat = FlatIndex::open(&path).map_err(|e| format!("{path}: {e}"))?;
        let ids = flat.hub_ids();
        println!("index {path} (single-file arena):");
        println!("  hubs:          {}", flat.hub_count());
        println!("  total entries: {}", flat.total_entries());
        println!("  file size:     {:.2} MB", mb(flat.file_bytes()));
        println!("  resident:      {:.2} MB", mb(flat.resident_bytes()));
        println!("  mapped:        {:.2} MB", mb(flat.mapped_bytes()));
        println!(
            "  entries/hub:   {:.1}",
            flat.total_entries() as f64 / flat.hub_count().max(1) as f64
        );
        if let (Some(first), Some(last)) = (ids.first(), ids.last()) {
            println!("  hub id range:  {first}..={last}");
        }
        return Ok(());
    }
    let index = DiskIndex::open(&path, 1).map_err(|e| format!("{path}: {e}"))?;
    let ids = index.hub_ids();
    println!("index {path}:");
    println!("  hubs:          {}", index.hub_count());
    println!("  total entries: {}", index.total_entries());
    println!(
        "  size:          {:.2} MB",
        index.storage_bytes() as f64 / (1024.0 * 1024.0)
    );
    println!(
        "  entries/hub:   {:.1}",
        index.total_entries() as f64 / index.hub_count().max(1) as f64
    );
    if let (Some(first), Some(last)) = (ids.first(), ids.last()) {
        println!("  hub id range:  {first}..={last}");
    }
    Ok(())
}

/// `fastppv cluster`
pub fn cluster(argv: &[String]) -> CmdResult {
    let usage = "fastppv cluster --graph edges.txt [--undirected] \
                 --clusters K --out graph.clg [--seed S]\n\
                 [--shards N --shard-map map.fsm]\n\
                 \n\
                 With --shards N the clustering is additionally folded\n\
                 into an N-shard ownership map (clusters stay whole, so\n\
                 co-clustered hubs land on the same shard) and written to\n\
                 --shard-map, for `fastppv serve --shard-id` and\n\
                 `fastppv route`.";
    let args = Args::parse(
        argv,
        &["graph", "clusters", "out", "seed", "shards", "shard-map"],
        &["undirected"],
        usage,
    )?;
    let graph = load_graph(&args)?;
    let k: usize = args.require("clusters")?;
    let out: String = args.require("out")?;
    let seed: u64 = args.get_or("seed", 0)?;
    let clustering = cluster_graph(
        &graph,
        k,
        ClusteringOptions {
            seed,
            ..Default::default()
        },
    );
    let sizes = write_clustered_graph(&graph, &clustering, &out).map_err(|e| e.to_string())?;
    let largest = sizes.iter().copied().max().unwrap_or(0);
    let total: u64 = sizes.iter().sum();
    println!(
        "wrote {out}: {k} clusters, largest {:.1} KB ({:.1}% of graph)",
        largest as f64 / 1024.0,
        100.0 * largest as f64 / total.max(1) as f64
    );
    match (args.get::<u32>("shards")?, args.get::<String>("shard-map")?) {
        (None, None) => {}
        (Some(0), _) => return Err(CliError::Usage("--shards must be positive".into())),
        (Some(n), Some(path)) => {
            let map = ShardMap::from_clustering(&clustering, n);
            map.write_to_file(&path)
                .map_err(|e| format!("{path}: {e}"))?;
            println!("wrote {path}: {n}-shard ownership map over {k} clusters");
        }
        (Some(_), None) | (None, Some(_)) => {
            return Err(CliError::Usage(
                "--shards and --shard-map go together (a shard count and where \
                 to write the map)"
                    .into(),
            ))
        }
    }
    Ok(())
}
