//! The `fastppv` subcommands.

use std::time::Instant;

use fastppv_cluster::partition::{cluster_graph, ClusteringOptions};
use fastppv_cluster::store::write_clustered_graph;
use fastppv_core::autotune::{suggest_hub_count, AutotuneOptions};
use fastppv_core::hubs::{select_hubs_with_pagerank, HubPolicy, HubSet};
use fastppv_core::index::{DiskIndex, FlatIndex, PpvStore};
use fastppv_core::offline::build_index_parallel;
use fastppv_core::query::{QueryEngine, StoppingCondition};
use fastppv_core::{Config, DeltaConfig};
use fastppv_graph::gen::{
    apply_event, barabasi_albert, erdos_renyi, synth_events, BibNetwork, DblpParams, SocialNetwork,
    SocialParams,
};
use fastppv_graph::io::{read_edge_list_file, write_edge_list_file};
use fastppv_graph::{pagerank, DanglingPolicy, Graph, PageRankOptions};
use fastppv_server::{QueryService, Request, ServiceOptions};

use crate::args::{Args, CliError};

type CmdResult = Result<(), CliError>;

/// Config flags every index-touching command accepts (see
/// [`config_from_args`]).
const CONFIG_FLAGS: [&str; 4] = ["alpha", "epsilon", "delta", "clip"];

fn with_config_flags(base: &[&'static str]) -> Vec<&'static str> {
    let mut v = CONFIG_FLAGS.to_vec();
    v.extend_from_slice(base);
    v
}

fn load_graph(args: &Args) -> Result<Graph, String> {
    let path: String = args.require("graph")?;
    let undirected = args.has("undirected");
    read_edge_list_file(&path, undirected, DanglingPolicy::SelfLoop)
        .map_err(|e| format!("reading {path}: {e}"))
}

fn parse_policy(name: &str) -> Result<HubPolicy, String> {
    Ok(match name {
        "eu" | "expected-utility" => HubPolicy::ExpectedUtility,
        "pagerank" | "pr" => HubPolicy::PageRank,
        "outdeg" | "out-degree" => HubPolicy::OutDegree,
        "indeg" | "in-degree" => HubPolicy::InDegree,
        "random" => HubPolicy::Random,
        other => return Err(format!("unknown hub policy `{other}`")),
    })
}

/// Resolves the `--eta K | --l1 ERR` stopping condition (default η = 2).
fn stop_from_args(args: &Args) -> Result<StoppingCondition, CliError> {
    Ok(match (args.get::<usize>("eta")?, args.get::<f64>("l1")?) {
        (Some(_), Some(_)) => return Err(CliError::Usage("give --eta or --l1, not both".into())),
        (Some(eta), None) => StoppingCondition::iterations(eta),
        (None, Some(l1)) => StoppingCondition::l1_error(l1),
        (None, None) => StoppingCondition::iterations(2),
    })
}

fn config_from_args(args: &Args) -> Result<Config, String> {
    let mut config = Config::default();
    if let Some(eps) = args.get::<f64>("epsilon")? {
        config = config.with_epsilon(eps);
    }
    if let Some(delta) = args.get::<f64>("delta")? {
        config = config.with_delta(delta);
    }
    if let Some(clip) = args.get::<f64>("clip")? {
        config = config.with_clip(clip);
    }
    if let Some(alpha) = args.get::<f64>("alpha")? {
        config = config.with_alpha(alpha);
    }
    Ok(config)
}

/// `fastppv generate`
pub fn generate(argv: &[String]) -> CmdResult {
    let usage = "fastppv generate --kind dblp|lj|ba|er --out edges.txt \
                 [--nodes N] [--seed S]\n\
                 dblp: tripartite author-paper-venue (undirected)\n\
                 lj:   directed social network\n\
                 ba:   Barabasi-Albert (undirected)\n\
                 er:   Erdos-Renyi G(n, 5n) (directed)";
    let args = Args::parse(argv, &["kind", "out", "nodes", "seed"], &[], usage)?;
    let kind: String = args.require("kind")?;
    let out: String = args.require("out")?;
    let nodes: usize = args.get_or("nodes", 50_000)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let graph = match kind.as_str() {
        "dblp" => {
            BibNetwork::generate(
                DblpParams {
                    papers: nodes / 2,
                    ..Default::default()
                },
                seed,
            )
            .graph
        }
        "lj" => {
            SocialNetwork::generate(
                SocialParams {
                    nodes,
                    ..Default::default()
                },
                seed,
            )
            .graph
        }
        "ba" => barabasi_albert(nodes, 4, seed),
        "er" => erdos_renyi(nodes, nodes * 5, seed),
        other => return Err(format!("unknown kind `{other}`").into()),
    };
    write_edge_list_file(&graph, &out).map_err(|e| e.to_string())?;
    println!(
        "wrote {}: {} nodes, {} edges",
        out,
        graph.num_nodes(),
        graph.num_edges()
    );
    Ok(())
}

/// `fastppv pagerank`
pub fn pagerank_cmd(argv: &[String]) -> CmdResult {
    let usage = "fastppv pagerank --graph edges.txt [--undirected] [--top K]";
    let args = Args::parse(argv, &["graph", "top"], &["undirected"], usage)?;
    let graph = load_graph(&args)?;
    let top: usize = args.get_or("top", 10)?;
    let pr = pagerank(&graph, PageRankOptions::default());
    let mut order: Vec<u32> = (0..graph.num_nodes() as u32).collect();
    order.sort_by(|&a, &b| pr[b as usize].total_cmp(&pr[a as usize]));
    println!("top {top} nodes by global PageRank:");
    for (rank, &v) in order.iter().take(top).enumerate() {
        println!(
            "{:>4}. node {v:<10} pagerank {:.6}  (out-degree {})",
            rank + 1,
            pr[v as usize],
            graph.out_degree(v)
        );
    }
    Ok(())
}

/// `fastppv build`
pub fn build(argv: &[String]) -> CmdResult {
    let usage = "fastppv build --graph edges.txt [--undirected] --out index.fppv\n\
                 (--hubs N | --auto-target SUBGRAPH_NODES)\n\
                 [--arena-out arena.fppv3]\n\
                 [--policy eu|pagerank|outdeg|indeg|random] [--alpha A]\n\
                 [--epsilon E] [--delta D] [--clip C] [--threads T] [--seed S]\n\
                 \n\
                 --arena-out additionally writes the single-file arena\n\
                 format, which `query`/`serve`/`update` open zero-copy\n\
                 (mmap) instead of deserializing.";
    let args = Args::parse(
        argv,
        &with_config_flags(&[
            "graph",
            "out",
            "arena-out",
            "hubs",
            "auto-target",
            "policy",
            "threads",
            "seed",
        ]),
        &["undirected"],
        usage,
    )?;
    let graph = load_graph(&args)?;
    let out: String = args.require("out")?;
    let config = config_from_args(&args)?;
    let policy = parse_policy(&args.get_or("policy", "eu".to_string())?)?;
    let threads: usize = args.get_or(
        "threads",
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4),
    )?;
    let seed: u64 = args.get_or("seed", 0)?;
    let hub_count = match args.get::<usize>("hubs")? {
        Some(h) => h,
        None => {
            let target: f64 = args
                .require("auto-target")
                .map_err(|_| "give either --hubs N or --auto-target NODES".to_string())?;
            let started = Instant::now();
            let tuned = suggest_hub_count(
                &graph,
                &config,
                AutotuneOptions {
                    target_subgraph_nodes: target,
                    policy,
                    seed,
                    ..Default::default()
                },
            );
            println!(
                "autotune: |H| = {} (mean prime subgraph {:.0} nodes, \
                 {} probes, {:.2?})",
                tuned.hub_count,
                tuned.mean_subgraph_nodes,
                tuned.probes.len(),
                started.elapsed()
            );
            tuned.hub_count
        }
    };
    let hubs = select_hubs_with_pagerank(&graph, policy, hub_count, seed, None);
    let (index, stats) = build_index_parallel(&graph, &hubs, &config, threads);
    index.write_to_file(&out).map_err(|e| e.to_string())?;
    println!(
        "built {}: {} hubs, {} entries, {:.2} MB in {:.2?} \
         (avg subgraph {:.0} nodes, avg border hubs {:.1})",
        out,
        stats.hubs,
        stats.total_entries,
        stats.storage_bytes as f64 / (1024.0 * 1024.0),
        stats.build_time,
        stats.avg_subgraph_nodes,
        stats.avg_border_hubs
    );
    if let Some(arena_out) = args.get::<String>("arena-out")? {
        let flat = FlatIndex::from_memory(&index, &hubs);
        flat.write_to_file(&arena_out).map_err(|e| e.to_string())?;
        println!(
            "wrote arena {}: {:.2} MB single-file layout (opens zero-copy)",
            arena_out,
            flat.file_bytes() as f64 / (1024.0 * 1024.0)
        );
    }
    Ok(())
}

fn open_index_and_hubs(args: &Args, graph: &Graph) -> Result<(DiskIndex, HubSet), String> {
    let path: String = args.require("index")?;
    let cache: usize = args.get_or("cache", 4096)?;
    let index = DiskIndex::open(&path, cache).map_err(|e| format!("{path}: {e}"))?;
    let hubs = HubSet::from_ids(graph.num_nodes(), index.hub_ids());
    Ok((index, hubs))
}

/// Whether `path` starts with the single-file arena magic (`FPPVIDX3`).
/// Used to pick the opener: arena files load zero-copy via
/// [`FlatIndex::open`], everything else goes through the record-format
/// openers (which produce their own magic errors on mismatch).
fn is_arena_file(path: &str) -> Result<bool, String> {
    use std::io::Read;
    let mut f = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let mut magic = [0u8; 8];
    let n = f.read(&mut magic).map_err(|e| format!("{path}: {e}"))?;
    Ok(n == 8 && &magic == b"FPPVIDX3")
}

/// Opens `--index` as a serving [`FlatIndex`]: zero-copy (mmap) when the
/// file is the single-file arena format, otherwise deserialized from the
/// plain record format through [`FlatIndex::from_store`].
fn open_flat_store(args: &Args, graph: &Graph) -> Result<(FlatIndex, HubSet), CliError> {
    let path: String = args.require("index")?;
    if is_arena_file(&path)? {
        let flat = FlatIndex::open(&path).map_err(|e| format!("{path}: {e}"))?;
        if flat.capacity() != graph.num_nodes() {
            return Err(format!(
                "{path}: arena built for {} nodes but the graph has {}; \
                 rebuild the arena against this graph",
                flat.capacity(),
                graph.num_nodes()
            )
            .into());
        }
        let hubs = HubSet::from_ids(graph.num_nodes(), flat.hub_ids().to_vec());
        Ok((flat, hubs))
    } else {
        let (index, hubs) = open_index_and_hubs(args, graph)?;
        let flat = FlatIndex::from_store(graph.num_nodes(), &index, &index.hub_ids(), &hubs);
        Ok((flat, hubs))
    }
}

/// The serving store layout: the flat structure-of-arrays arena (default —
/// the index file is pulled into RAM once, reads are zero-copy) or the
/// file-backed store with a read cache (`--store disk`, for indexes larger
/// than memory).
enum StoreChoice {
    Flat(FlatIndex),
    Disk(DiskIndex),
}

fn open_store(args: &Args, graph: &Graph) -> Result<(StoreChoice, HubSet), CliError> {
    let kind: String = args.get_or("store", "flat".to_string())?;
    match kind.as_str() {
        "flat" => {
            let (flat, hubs) = open_flat_store(args, graph)?;
            Ok((StoreChoice::Flat(flat), hubs))
        }
        "disk" => {
            let path: String = args.require("index")?;
            if is_arena_file(&path)? {
                return Err(CliError::Usage(format!(
                    "{path} is a single-file arena; serve it with --store flat \
                     (the arena is mmap'd, not pulled into RAM)"
                )));
            }
            let (index, hubs) = open_index_and_hubs(args, graph)?;
            Ok((StoreChoice::Disk(index), hubs))
        }
        other => Err(CliError::Usage(format!(
            "--store must be flat or disk, got `{other}`"
        ))),
    }
}

/// `fastppv query`
pub fn query(argv: &[String]) -> CmdResult {
    let usage = "fastppv query --graph edges.txt [--undirected] \
                 --index index.fppv --node Q\n\
                 [--eta K | --l1 ERR] [--top K] [--store flat|disk] \
                 [--alpha A] [--epsilon E] [--delta D]";
    let args = Args::parse(
        argv,
        &with_config_flags(&[
            "graph", "index", "node", "eta", "l1", "top", "cache", "store",
        ]),
        &["undirected"],
        usage,
    )?;
    let graph = load_graph(&args)?;
    let q: u32 = args.require("node")?;
    if q as usize >= graph.num_nodes() {
        return Err(format!("node {q} out of range ({} nodes)", graph.num_nodes()).into());
    }
    let config = config_from_args(&args)?;
    let top: usize = args.get_or("top", 10)?;
    let (store, hubs) = open_store(&args, &graph)?;
    let stop = stop_from_args(&args)?;
    match store {
        StoreChoice::Flat(s) => run_query(&graph, &hubs, &s, config, q, &stop, top),
        StoreChoice::Disk(s) => run_query(&graph, &hubs, &s, config, q, &stop, top),
    }
    Ok(())
}

fn run_query<S: PpvStore>(
    graph: &Graph,
    hubs: &HubSet,
    store: &S,
    config: Config,
    q: u32,
    stop: &StoppingCondition,
    top: usize,
) {
    let engine = QueryEngine::new(graph, hubs, store, config);
    let result = engine.query(q, stop);
    println!(
        "query {q}: {} iterations, guaranteed L1 error <= {:.5}, {:.2?}{}",
        result.iterations,
        result.l1_error,
        result.elapsed,
        if result.exhausted {
            " (frontier exhausted)"
        } else {
            ""
        }
    );
    for (rank, (node, score)) in result.top_k(top).into_iter().enumerate() {
        println!("{:>4}. node {node:<10} score {score:.6}", rank + 1);
    }
}

/// `fastppv topk`
pub fn topk(argv: &[String]) -> CmdResult {
    let usage = "fastppv topk --graph edges.txt [--undirected] \
                 --index index.fppv --node Q --k K [--max-eta K] \
                 [--store flat|disk]";
    let args = Args::parse(
        argv,
        &with_config_flags(&["graph", "index", "node", "k", "max-eta", "cache", "store"]),
        &["undirected"],
        usage,
    )?;
    let graph = load_graph(&args)?;
    let q: u32 = args.require("node")?;
    let k: usize = args.require("k")?;
    let max_eta: usize = args.get_or("max-eta", 10)?;
    let config = config_from_args(&args)?;
    let (store, hubs) = open_store(&args, &graph)?;
    match store {
        StoreChoice::Flat(s) => run_topk(&graph, &hubs, &s, config, q, k, max_eta),
        StoreChoice::Disk(s) => run_topk(&graph, &hubs, &s, config, q, k, max_eta),
    }
    Ok(())
}

fn run_topk<S: PpvStore>(
    graph: &Graph,
    hubs: &HubSet,
    store: &S,
    config: Config,
    q: u32,
    k: usize,
    max_eta: usize,
) {
    let engine = QueryEngine::new(graph, hubs, store, config);
    let res = engine.query_top_k(q, k, max_eta);
    println!(
        "top-{k} for query {q}: {} after {} iterations (phi = {:.5})",
        if res.certified {
            "CERTIFIED exact"
        } else {
            "not certified"
        },
        res.iterations,
        res.l1_error
    );
    for (rank, (node, score)) in res.nodes.into_iter().enumerate() {
        println!("{:>4}. node {node:<10} score >= {score:.6}", rank + 1);
    }
}

/// `fastppv serve`
pub fn serve(argv: &[String]) -> CmdResult {
    let usage = "fastppv serve --graph edges.txt [--undirected] --index index.fppv\n\
                 [--listen ADDR] [--workers N] [--queue N] [--hot-cache N]\n\
                 [--cache N] [--store flat|disk] [--eta K | --l1 ERR]\n\
                 [--top K] [--batch B] [--alpha A] [--epsilon E] [--delta D]\n\
                 \n\
                 Default mode reads one query per line from stdin:\n\
                 `NODE [eta=K | l1=ERR]` (the optional suffix overrides the\n\
                 default stopping condition per request), writes one line\n\
                 per answer to stdout, a summary to stderr on EOF.\n\
                 \n\
                 With --listen ADDR (e.g. 127.0.0.1:7878, port 0 for an\n\
                 ephemeral port) the service speaks the length-prefixed\n\
                 binary TCP protocol of fastppv_server::net instead: the\n\
                 bound address is announced on stderr, connections are\n\
                 served until the process is killed.";
    let args = Args::parse(
        argv,
        &with_config_flags(&[
            "graph",
            "index",
            "listen",
            "workers",
            "queue",
            "hot-cache",
            "cache",
            "eta",
            "l1",
            "top",
            "batch",
            "store",
        ]),
        &["undirected"],
        usage,
    )?;
    // Validate the invocation before the expensive graph/index loads: the
    // service asserts on zero sizes, so reject them as usage errors
    // (exit 2) instead of surfacing a panic.
    let default_stop = stop_from_args(&args)?;
    let options = ServiceOptions {
        workers: args.get_or(
            "workers",
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4),
        )?,
        queue_capacity: args.get_or("queue", 1024)?,
        cache_capacity: args.get_or("hot-cache", 4096)?,
    };
    if options.workers == 0 {
        return Err(CliError::Usage("--workers must be positive".into()));
    }
    if options.queue_capacity == 0 {
        return Err(CliError::Usage("--queue must be positive".into()));
    }
    let top: usize = args.get_or("top", 5)?;
    let batch: usize = args.get_or("batch", 256)?;
    if batch == 0 {
        return Err(CliError::Usage("--batch must be positive".into()));
    }
    let listen: Option<String> = args.get("listen")?;
    let graph = load_graph(&args)?;
    let config = config_from_args(&args)?;
    let (store, hubs) = open_store(&args, &graph)?;
    match store {
        StoreChoice::Flat(s) => serve_entry(
            graph,
            hubs,
            s,
            config,
            options,
            default_stop,
            top,
            batch,
            listen,
        ),
        StoreChoice::Disk(s) => serve_entry(
            graph,
            hubs,
            s,
            config,
            options,
            default_stop,
            top,
            batch,
            listen,
        ),
    }
}

/// Builds the service and dispatches to the stdin/stdout loop or the TCP
/// front-end, generic over the store layout.
#[allow(clippy::too_many_arguments)]
fn serve_entry<S: PpvStore + Send + Sync + 'static>(
    graph: Graph,
    hubs: HubSet,
    store: S,
    config: Config,
    options: ServiceOptions,
    default_stop: StoppingCondition,
    top: usize,
    batch: usize,
    listen: Option<String>,
) -> CmdResult {
    let num_nodes = graph.num_nodes();
    let service = std::sync::Arc::new(QueryService::new(
        std::sync::Arc::new(graph),
        std::sync::Arc::new(hubs),
        std::sync::Arc::new(store),
        config,
        options,
    ));
    match listen {
        Some(addr) => serve_net(service, &addr, num_nodes, options),
        None => serve_loop(service, num_nodes, options, default_stop, top, batch),
    }
}

/// The `--listen` mode: the length-prefixed binary TCP protocol of
/// [`fastppv_server::net`], served until the process is killed.
fn serve_net<S: PpvStore + Send + Sync + 'static>(
    service: std::sync::Arc<QueryService<S>>,
    addr: &str,
    num_nodes: usize,
    options: ServiceOptions,
) -> CmdResult {
    let mb = |b: usize| b as f64 / (1024.0 * 1024.0);
    let store = service.store();
    let listener = std::net::TcpListener::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
    let server = fastppv_server::net::serve(service, listener).map_err(|e| e.to_string())?;
    eprintln!(
        "listening on {} ({num_nodes} nodes, {} workers, queue {}, hot cache {}; \
         index {:.2} MB resident, {:.2} MB mapped)",
        server.local_addr(),
        options.workers,
        options.queue_capacity,
        options.cache_capacity,
        mb(store.resident_bytes()),
        mb(store.mapped_bytes())
    );
    server.wait();
    Ok(())
}

/// The stdin/stdout serving loop.
fn serve_loop<S: PpvStore + Send + Sync>(
    service: std::sync::Arc<QueryService<S>>,
    num_nodes: usize,
    options: ServiceOptions,
    default_stop: StoppingCondition,
    top: usize,
    batch: usize,
) -> CmdResult {
    let mb = |b: usize| b as f64 / (1024.0 * 1024.0);
    eprintln!(
        "serving {num_nodes} nodes with {} workers (queue {}, hot cache {}; \
         index {:.2} MB resident, {:.2} MB mapped); reading queries from stdin",
        options.workers,
        options.queue_capacity,
        options.cache_capacity,
        mb(service.store().resident_bytes()),
        mb(service.store().mapped_bytes())
    );

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let started = Instant::now();
    let mut served = 0u64;
    // Bounded: past the cap the p50/p99 summary covers the first
    // LATENCY_SAMPLE_CAP requests instead of growing without limit.
    const LATENCY_SAMPLE_CAP: usize = 1 << 20;
    // Hub and non-hub sources are different latency regimes (index lookup
    // vs on-the-fly prime-PPV), so the summary keeps them apart.
    let mut hub_latencies: Vec<std::time::Duration> = Vec::new();
    let mut nonhub_latencies: Vec<std::time::Duration> = Vec::new();
    // Hoisted out of the per-response loop: `hubs()` pins a snapshot
    // (lock + Arc clones) per call, and the hub set is shared unchanged
    // across updates, so one handle serves the whole session.
    let hubs = service.hubs();
    let mut pending: Vec<Request> = Vec::with_capacity(batch);
    let mut flush = |pending: &mut Vec<Request>,
                     hub_latencies: &mut Vec<std::time::Duration>,
                     nonhub_latencies: &mut Vec<std::time::Duration>,
                     served: &mut u64|
     -> Result<(), String> {
        if pending.is_empty() {
            return Ok(());
        }
        let responses = service.process_batch(std::mem::take(pending));
        for r in &responses {
            use std::io::Write;
            write!(
                out,
                "node {} iterations={} phi={:.6}{} top:",
                r.query,
                r.iterations,
                r.l1_error,
                if r.cached { " cached" } else { "" }
            )
            .map_err(|e| e.to_string())?;
            for (v, s) in r.top_k(top) {
                write!(out, " {v}:{s:.6}").map_err(|e| e.to_string())?;
            }
            writeln!(out).map_err(|e| e.to_string())?;
            let sample = if hubs.is_hub(r.query) {
                &mut *hub_latencies
            } else {
                &mut *nonhub_latencies
            };
            if sample.len() < LATENCY_SAMPLE_CAP {
                sample.push(r.latency);
            }
        }
        {
            use std::io::Write;
            out.flush().map_err(|e| e.to_string())?;
        }
        *served += responses.len() as u64;
        Ok(())
    };
    for line in std::io::BufRead::lines(stdin.lock()) {
        let line = line.map_err(|e| e.to_string())?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_serve_line(line, default_stop, num_nodes) {
            Ok(request) => pending.push(request),
            Err(e) => eprintln!("skipping `{line}`: {e}"),
        }
        if pending.len() >= batch {
            flush(
                &mut pending,
                &mut hub_latencies,
                &mut nonhub_latencies,
                &mut served,
            )?;
        }
    }
    flush(
        &mut pending,
        &mut hub_latencies,
        &mut nonhub_latencies,
        &mut served,
    )?;

    let elapsed = started.elapsed();
    let stats = service.cache_stats();
    // One sort per class; the pooled p50/p99 come from the two sorted
    // samples via a merge walk — no clone, no third sort.
    let hub = fastppv_server::LatencySummary::of_mut(&mut hub_latencies);
    let nonhub = fastppv_server::LatencySummary::of_mut(&mut nonhub_latencies);
    let overall_p50 =
        fastppv_server::percentile_of_sorted_pair(&hub_latencies, &nonhub_latencies, 0.50);
    let overall_p99 =
        fastppv_server::percentile_of_sorted_pair(&hub_latencies, &nonhub_latencies, 0.99);
    eprintln!(
        "served {served} queries in {elapsed:.2?} ({:.0} QPS); \
         p50 {:.2?}, p99 {:.2?}; \
         hub sources {} (p50 {:.2?}, p99 {:.2?}), \
         non-hub sources {} (p50 {:.2?}, p99 {:.2?}); \
         cache hits {} / misses {}; \
         index {:.2} MB resident, {:.2} MB mapped",
        served as f64 / elapsed.as_secs_f64().max(1e-9),
        overall_p50,
        overall_p99,
        hub.queries,
        hub.p50,
        hub.p99,
        nonhub.queries,
        nonhub.p50,
        nonhub.p99,
        stats.hits,
        stats.misses,
        mb(service.store().resident_bytes()),
        mb(service.store().mapped_bytes())
    );
    Ok(())
}

/// Parses a serve input line: `NODE [eta=K | l1=ERR]`.
fn parse_serve_line(
    line: &str,
    default_stop: StoppingCondition,
    num_nodes: usize,
) -> Result<Request, String> {
    let mut parts = line.split_whitespace();
    let node: u32 = parts
        .next()
        .ok_or("empty line")?
        .parse()
        .map_err(|_| "not a node id".to_string())?;
    if node as usize >= num_nodes {
        return Err(format!("node {node} out of range ({num_nodes} nodes)"));
    }
    let stop = match parts.next() {
        None => default_stop,
        Some(spec) => match spec.split_once('=') {
            Some(("eta", v)) => {
                StoppingCondition::iterations(v.parse().map_err(|_| format!("bad eta `{v}`"))?)
            }
            Some(("l1", v)) => {
                StoppingCondition::l1_error(v.parse().map_err(|_| format!("bad l1 `{v}`"))?)
            }
            _ => return Err(format!("unknown per-query option `{spec}`")),
        },
    };
    if parts.next().is_some() {
        return Err("too many tokens".into());
    }
    Ok(Request {
        query: node,
        stop,
        deadline: None,
    })
}

/// `fastppv update`
pub fn update(argv: &[String]) -> CmdResult {
    let usage = "fastppv update --graph edges.txt [--undirected] --index index.fppv\n\
                 [--events N] [--delete-fraction F] [--budget B] [--seed S]\n\
                 [--alpha A] [--epsilon E] [--delta D] [--clip C]\n\
                 \n\
                 Streaming-update exerciser: synthesizes N seeded single-edge\n\
                 insert/delete events and streams them through a serving\n\
                 QueryService, refreshing the index after each one. With a\n\
                 positive --budget B dirty hubs are patched by delta\n\
                 propagation under a per-hub error budget (B = 0 recomputes\n\
                 every dirty hub exactly). Reports sustained edge-events/s,\n\
                 the patched/recomputed split, and the certified budget\n\
                 watermark of the final index. Pass the same --epsilon etc.\n\
                 the index was built with.";
    let args = Args::parse(
        argv,
        &with_config_flags(&[
            "graph",
            "index",
            "events",
            "delete-fraction",
            "budget",
            "seed",
            "cache",
        ]),
        &["undirected"],
        usage,
    )?;
    let events_count: usize = args.get_or("events", 100)?;
    let delete_fraction: f64 = args.get_or("delete-fraction", 0.2)?;
    let budget: f64 = args.get_or("budget", 0.01)?;
    let seed: u64 = args.get_or("seed", 42)?;
    if !(0.0..=1.0).contains(&delete_fraction) {
        return Err(CliError::Usage(
            "--delete-fraction must be in [0, 1]".into(),
        ));
    }
    if budget < 0.0 {
        return Err(CliError::Usage("--budget must be non-negative".into()));
    }
    let graph = load_graph(&args)?;
    if graph.num_nodes() < 2 {
        return Err("need at least two nodes to synthesize edge events"
            .to_string()
            .into());
    }
    let config = config_from_args(&args)?;
    let (flat, hubs) = open_flat_store(&args, &graph)?;
    let delta = if budget > 0.0 {
        DeltaConfig::default().with_budget(budget)
    } else {
        DeltaConfig::exact()
    };
    let service = QueryService::new(
        std::sync::Arc::new(graph),
        std::sync::Arc::new(hubs),
        std::sync::Arc::new(flat),
        config,
        ServiceOptions {
            workers: 1,
            queue_capacity: 16,
            cache_capacity: 0,
        },
    )
    .with_delta_config(delta);

    let events = synth_events(&service.graph(), events_count, delete_fraction, seed);
    let mut wall = std::time::Duration::ZERO;
    let (mut patched, mut noop, mut recomputed) = (0usize, 0usize, 0usize);
    let mut watermark = 0.0f64;
    let mut cur = service.graph();
    for ev in &events {
        let next = apply_event(&cur, ev);
        let started = Instant::now();
        let stats = service.apply_update(next, &[ev.tail]);
        wall += started.elapsed();
        patched += stats.delta_patched;
        noop += stats.delta_noop;
        recomputed += stats.recomputed;
        watermark = watermark.max(stats.budget_watermark);
        cur = service.graph();
    }
    let final_graph = service.graph();
    println!(
        "streamed {} events ({} inserts, {} deletes) in {:.2?} — {:.1} events/s \
         (refresh wall-clock only)",
        events.len(),
        events.iter().filter(|e| e.insert).count(),
        events.iter().filter(|e| !e.insert).count(),
        wall,
        events.len() as f64 / wall.as_secs_f64().max(1e-9)
    );
    println!(
        "dirty hubs: {} delta-patched ({} no-op) + {} recomputed exactly; \
         published epoch {}",
        patched,
        noop,
        recomputed,
        service.epoch()
    );
    if budget > 0.0 {
        println!(
            "certified error watermark {watermark:.3e} of per-hub budget {budget} \
             (every served answer is within the watermark of an exact recompute)"
        );
    }
    println!(
        "final graph: {} nodes, {} edges",
        final_graph.num_nodes(),
        final_graph.num_edges()
    );
    Ok(())
}

/// `fastppv stats`
pub fn stats(argv: &[String]) -> CmdResult {
    let usage = "fastppv stats --index index.fppv";
    let args = Args::parse(argv, &["index"], &[], usage)?;
    let path: String = args.require("index")?;
    let mb = |b: usize| b as f64 / (1024.0 * 1024.0);
    if is_arena_file(&path)? {
        let flat = FlatIndex::open(&path).map_err(|e| format!("{path}: {e}"))?;
        let ids = flat.hub_ids();
        println!("index {path} (single-file arena):");
        println!("  hubs:          {}", flat.hub_count());
        println!("  total entries: {}", flat.total_entries());
        println!("  file size:     {:.2} MB", mb(flat.file_bytes()));
        println!("  resident:      {:.2} MB", mb(flat.resident_bytes()));
        println!("  mapped:        {:.2} MB", mb(flat.mapped_bytes()));
        println!(
            "  entries/hub:   {:.1}",
            flat.total_entries() as f64 / flat.hub_count().max(1) as f64
        );
        if let (Some(first), Some(last)) = (ids.first(), ids.last()) {
            println!("  hub id range:  {first}..={last}");
        }
        return Ok(());
    }
    let index = DiskIndex::open(&path, 1).map_err(|e| format!("{path}: {e}"))?;
    let ids = index.hub_ids();
    println!("index {path}:");
    println!("  hubs:          {}", index.hub_count());
    println!("  total entries: {}", index.total_entries());
    println!(
        "  size:          {:.2} MB",
        index.storage_bytes() as f64 / (1024.0 * 1024.0)
    );
    println!(
        "  entries/hub:   {:.1}",
        index.total_entries() as f64 / index.hub_count().max(1) as f64
    );
    if let (Some(first), Some(last)) = (ids.first(), ids.last()) {
        println!("  hub id range:  {first}..={last}");
    }
    Ok(())
}

/// `fastppv cluster`
pub fn cluster(argv: &[String]) -> CmdResult {
    let usage = "fastppv cluster --graph edges.txt [--undirected] \
                 --clusters K --out graph.clg [--seed S]";
    let args = Args::parse(
        argv,
        &["graph", "clusters", "out", "seed"],
        &["undirected"],
        usage,
    )?;
    let graph = load_graph(&args)?;
    let k: usize = args.require("clusters")?;
    let out: String = args.require("out")?;
    let seed: u64 = args.get_or("seed", 0)?;
    let clustering = cluster_graph(
        &graph,
        k,
        ClusteringOptions {
            seed,
            ..Default::default()
        },
    );
    let sizes = write_clustered_graph(&graph, &clustering, &out).map_err(|e| e.to_string())?;
    let largest = sizes.iter().copied().max().unwrap_or(0);
    let total: u64 = sizes.iter().sum();
    println!(
        "wrote {out}: {k} clusters, largest {:.1} KB ({:.1}% of graph)",
        largest as f64 / 1024.0,
        100.0 * largest as f64 / total.max(1) as f64
    );
    Ok(())
}
