//! Tiny flag parser shared by the subcommands (no external dependencies).

use std::collections::BTreeMap;

/// Parsed `--flag value` pairs plus boolean switches.
pub struct Args {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parses `argv`; `switch_names` lists flags that take no value.
    /// Prints `usage` and exits on `--help`.
    pub fn parse(argv: &[String], switch_names: &[&str], usage: &str) -> Result<Args, String> {
        let mut values = BTreeMap::new();
        let mut switches = Vec::new();
        let mut it = argv.iter();
        while let Some(flag) = it.next() {
            if flag == "--help" || flag == "-h" {
                eprintln!("{usage}");
                std::process::exit(0);
            }
            let name = flag
                .strip_prefix("--")
                .ok_or_else(|| format!("expected a --flag, got `{flag}`"))?;
            if switch_names.contains(&name) {
                switches.push(name.to_string());
            } else {
                let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                values.insert(name.to_string(), value.clone());
            }
        }
        Ok(Args { values, switches })
    }

    /// A required flag value, parsed.
    pub fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        let raw = self
            .values
            .get(name)
            .ok_or_else(|| format!("missing required flag --{name}"))?;
        raw.parse()
            .map_err(|_| format!("cannot parse --{name} value `{raw}`"))
    }

    /// An optional flag value with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.values.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("cannot parse --{name} value `{raw}`")),
        }
    }

    /// An optional flag value.
    pub fn get<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.values.get(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| format!("cannot parse --{name} value `{raw}`")),
        }
    }

    /// Whether a boolean switch was given.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_values_and_switches() {
        let a = Args::parse(
            &strs(&["--graph", "g.txt", "--undirected", "--hubs", "10"]),
            &["undirected"],
            "usage",
        )
        .unwrap();
        assert_eq!(a.require::<String>("graph").unwrap(), "g.txt");
        assert_eq!(a.require::<usize>("hubs").unwrap(), 10);
        assert!(a.has("undirected"));
        assert!(!a.has("directed"));
        assert_eq!(a.get_or::<u64>("seed", 42).unwrap(), 42);
        assert_eq!(a.get::<f64>("epsilon").unwrap(), None);
    }

    #[test]
    fn missing_required_flag_errors() {
        let a = Args::parse(&strs(&[]), &[], "usage").unwrap();
        assert!(a.require::<String>("graph").is_err());
    }

    #[test]
    fn dangling_flag_errors() {
        assert!(Args::parse(&strs(&["--graph"]), &[], "u").is_err());
        assert!(Args::parse(&strs(&["oops"]), &[], "u").is_err());
    }

    #[test]
    fn unparsable_value_errors() {
        let a = Args::parse(&strs(&["--hubs", "ten"]), &[], "usage").unwrap();
        assert!(a.require::<usize>("hubs").is_err());
    }
}
