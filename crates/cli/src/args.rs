//! Tiny flag parser shared by the subcommands (no external dependencies).
//!
//! Every subcommand declares its full flag vocabulary up front; anything
//! else is a *usage* error, which the binary reports on stderr (naming the
//! flag) and exits with code 2 — a silently ignored `--l1-error 0.05`
//! would otherwise run with defaults and report success.

use std::collections::BTreeMap;
use std::fmt;

/// What went wrong, split by exit code: usage errors (bad invocation,
/// exit 2) versus runtime errors (I/O, bad data, exit 1).
#[derive(Debug)]
pub enum CliError {
    /// The invocation itself is malformed (unknown flag, missing value).
    Usage(String),
    /// The invocation was fine but executing it failed.
    Runtime(String),
}

impl CliError {
    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Runtime(_) => 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) | CliError::Runtime(msg) => write!(f, "{msg}"),
        }
    }
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Runtime(msg)
    }
}

/// Parsed `--flag value` pairs plus boolean switches.
#[derive(Debug)]
pub struct Args {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parses `argv` against a declared vocabulary: `value_names` take a
    /// value, `switch_names` don't. Any other flag is rejected with a
    /// [`CliError::Usage`] naming it. Prints `usage` and exits on `--help`.
    pub fn parse(
        argv: &[String],
        value_names: &[&str],
        switch_names: &[&str],
        usage: &str,
    ) -> Result<Args, CliError> {
        let mut values = BTreeMap::new();
        let mut switches = Vec::new();
        let mut it = argv.iter();
        while let Some(flag) = it.next() {
            if flag == "--help" || flag == "-h" {
                eprintln!("{usage}");
                std::process::exit(0);
            }
            let name = flag.strip_prefix("--").ok_or_else(|| {
                CliError::Usage(format!("expected a --flag, got `{flag}`\n\n{usage}"))
            })?;
            if switch_names.contains(&name) {
                switches.push(name.to_string());
            } else if value_names.contains(&name) {
                let value = it
                    .next()
                    .ok_or_else(|| CliError::Usage(format!("--{name} needs a value\n\n{usage}")))?;
                values.insert(name.to_string(), value.clone());
            } else {
                return Err(CliError::Usage(format!(
                    "unrecognized flag `--{name}`\n\n{usage}"
                )));
            }
        }
        Ok(Args { values, switches })
    }

    /// A required flag value, parsed.
    pub fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        let raw = self
            .values
            .get(name)
            .ok_or_else(|| format!("missing required flag --{name}"))?;
        raw.parse()
            .map_err(|_| format!("cannot parse --{name} value `{raw}`"))
    }

    /// An optional flag value with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.values.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("cannot parse --{name} value `{raw}`")),
        }
    }

    /// An optional flag value.
    pub fn get<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.values.get(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| format!("cannot parse --{name} value `{raw}`")),
        }
    }

    /// Whether a boolean switch was given.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_values_and_switches() {
        let a = Args::parse(
            &strs(&["--graph", "g.txt", "--undirected", "--hubs", "10"]),
            &["graph", "hubs", "seed", "epsilon"],
            &["undirected"],
            "usage",
        )
        .unwrap();
        assert_eq!(a.require::<String>("graph").unwrap(), "g.txt");
        assert_eq!(a.require::<usize>("hubs").unwrap(), 10);
        assert!(a.has("undirected"));
        assert!(!a.has("directed"));
        assert_eq!(a.get_or::<u64>("seed", 42).unwrap(), 42);
        assert_eq!(a.get::<f64>("epsilon").unwrap(), None);
    }

    #[test]
    fn missing_required_flag_errors() {
        let a = Args::parse(&strs(&[]), &["graph"], &[], "usage").unwrap();
        assert!(a.require::<String>("graph").is_err());
    }

    #[test]
    fn dangling_flag_errors() {
        assert!(Args::parse(&strs(&["--graph"]), &["graph"], &[], "u").is_err());
        assert!(Args::parse(&strs(&["oops"]), &["graph"], &[], "u").is_err());
    }

    #[test]
    fn unparsable_value_errors() {
        let a = Args::parse(&strs(&["--hubs", "ten"]), &["hubs"], &[], "usage").unwrap();
        assert!(a.require::<usize>("hubs").is_err());
    }

    #[test]
    fn unknown_flag_is_a_usage_error_naming_the_flag() {
        let err = Args::parse(
            &strs(&["--graph", "g.txt", "--l1-error", "0.05"]),
            &["graph"],
            &[],
            "usage",
        )
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        let msg = err.to_string();
        assert!(msg.contains("--l1-error"), "{msg}");
    }

    #[test]
    fn unknown_switch_is_rejected_too() {
        let err =
            Args::parse(&strs(&["--directed"]), &["graph"], &["undirected"], "u").unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        assert!(err.to_string().contains("--directed"));
    }

    #[test]
    fn runtime_errors_exit_1() {
        let e: CliError = "something broke".to_string().into();
        assert_eq!(e.exit_code(), 1);
    }
}
