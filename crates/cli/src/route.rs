//! `fastppv route` — the scatter/gather front-end over shard processes.
//!
//! The router is stateless: everything it needs (node count, α, δ, the
//! current epoch) is discovered from shard hellos at startup, and the
//! hub→shard map either comes from a `--shard-map` file (written by
//! `fastppv cluster --shards N --shard-map FILE`) or defaults to the
//! same round-robin map `fastppv serve --shard-id` defaults to.

use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fastppv_cluster::ShardMap;
use fastppv_router::{
    serve_router, HealthOptions, Router, RouterConfig, RouterOptions, TcpBackend, TcpBackendOptions,
};

use crate::args::{Args, CliError};

/// How long startup keeps retrying before giving up on an unreachable
/// cluster (shards may still be binding their listeners).
const DISCOVERY_BUDGET: Duration = Duration::from_secs(10);

/// Parses the `--shards` comma-separated address list in shard-id order.
fn parse_shard_addrs(raw: &str) -> Result<Vec<SocketAddr>, CliError> {
    let mut addrs = Vec::new();
    for part in raw.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let resolved = part
            .to_socket_addrs()
            .map_err(|e| CliError::Usage(format!("cannot resolve shard address `{part}`: {e}")))?
            .next()
            .ok_or_else(|| {
                CliError::Usage(format!("shard address `{part}` resolved to nothing"))
            })?;
        addrs.push(resolved);
    }
    if addrs.is_empty() {
        return Err(CliError::Usage(
            "--shards needs at least one address".into(),
        ));
    }
    Ok(addrs)
}

/// `fastppv route`
pub fn route(argv: &[String]) -> Result<(), CliError> {
    let usage = "fastppv route --shards ADDR1,ADDR2,... [--listen ADDR]\n\
                 [--shard-map FILE] [--hot-cache N] [--probe-ms MS]\n\
                 [--no-hedge] [--hedge-floor-ms MS] [--hedge-factor F]\n\
                 [--sub-timeout-ms MS] [--down-after N] [--breaker-ms MS]\n\
                 [--retry-after-ms MS] [--no-shed]\n\
                 \n\
                 Scatter/gather router over `fastppv serve --shard-id`\n\
                 processes (one --shards entry per shard id, in order).\n\
                 Speaks the same binary TCP protocol as a single serve\n\
                 process — clients connect to the router unchanged. Node\n\
                 count, alpha, delta, and the serving epoch are discovered\n\
                 from shard hellos; without --shard-map the hub->shard map\n\
                 is round-robin (the `serve --shard-id` default).\n\
                 \n\
                 A shard that stops answering is circuit-broken (Up ->\n\
                 Suspect -> Down after --down-after consecutive failures)\n\
                 and routed around: its border mass is charged into the\n\
                 answer's error bound phi instead, so degraded answers stay\n\
                 certified. Straggling sub-requests are hedged on a fresh\n\
                 connection after p99 x hedge-factor (floored).";
    let args = Args::parse(
        argv,
        &[
            "shards",
            "listen",
            "shard-map",
            "hot-cache",
            "probe-ms",
            "hedge-floor-ms",
            "hedge-factor",
            "sub-timeout-ms",
            "down-after",
            "breaker-ms",
            "retry-after-ms",
        ],
        &["no-hedge", "no-shed"],
        usage,
    )?;
    let addrs = parse_shard_addrs(&args.require::<String>("shards")?)?;
    let listen: String = args.get_or("listen", "127.0.0.1:0".to_string())?;
    let down_after: u32 = args.get_or("down-after", 3)?;
    if down_after == 0 {
        return Err(CliError::Usage("--down-after must be positive".into()));
    }
    let sub_timeout: u64 = args.get_or("sub-timeout-ms", 10_000)?;
    if sub_timeout == 0 {
        return Err(CliError::Usage("--sub-timeout-ms must be positive".into()));
    }
    let hedge_factor: f64 = args.get_or("hedge-factor", 3.0)?;
    if hedge_factor < 1.0 {
        return Err(CliError::Usage("--hedge-factor must be at least 1".into()));
    }
    let backend_options = TcpBackendOptions {
        health: HealthOptions {
            down_after,
            base_backoff: Duration::from_millis(args.get_or("breaker-ms", 250)?),
            ..HealthOptions::default()
        },
        hedge: !args.has("no-hedge"),
        hedge_delay_floor: Duration::from_millis(args.get_or("hedge-floor-ms", 20)?),
        hedge_p99_factor: hedge_factor,
        sub_request_timeout: Duration::from_millis(sub_timeout),
        ..TcpBackendOptions::default()
    };
    let num_shards = addrs.len();
    let backend = TcpBackend::new(addrs, backend_options);

    // Discover the cluster shape from any reachable shard, retrying
    // through startup races (shards may bind after the router launches).
    let started = Instant::now();
    let hello = loop {
        match backend.discover_hello() {
            Ok(h) => break h,
            Err(e) if started.elapsed() < DISCOVERY_BUDGET => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(e) => {
                return Err(
                    format!("no shard answered a hello within {DISCOVERY_BUDGET:?}: {e}").into(),
                )
            }
        }
    };
    let num_nodes = hello.num_nodes as usize;

    let map = match args.get::<String>("shard-map")? {
        Some(path) => {
            let map = ShardMap::read_from_file(&path).map_err(|e| format!("{path}: {e}"))?;
            if map.num_nodes() != num_nodes {
                return Err(format!(
                    "{path}: shard map covers {} nodes but the cluster serves {num_nodes}",
                    map.num_nodes()
                )
                .into());
            }
            if map.num_shards() as usize != num_shards {
                return Err(format!(
                    "{path}: shard map has {} shards but --shards lists {num_shards}",
                    map.num_shards()
                )
                .into());
            }
            map
        }
        None => ShardMap::round_robin(num_nodes, num_shards as u32),
    };

    let router = Arc::new(Router::new(
        backend.clone(),
        map,
        RouterConfig {
            alpha: hello.alpha,
            delta: hello.delta,
            num_nodes,
        },
        RouterOptions {
            cache_capacity: args.get_or("hot-cache", 4096)?,
            retry_after: Duration::from_millis(args.get_or("retry-after-ms", 250)?),
            shed_unattainable: !args.has("no-shed"),
            ..RouterOptions::default()
        },
    ));
    let _prober = backend.spawn_prober(Duration::from_millis(args.get_or("probe-ms", 1000)?));

    let listener = TcpListener::bind(&listen).map_err(|e| format!("binding {listen}: {e}"))?;
    let server = serve_router(router, listener).map_err(|e| e.to_string())?;
    eprintln!(
        "routing on {} ({num_shards} shards, {num_nodes} nodes, epoch {}, \
         alpha {}, delta {}, hedging {})",
        server.local_addr(),
        hello.epoch,
        hello.alpha,
        hello.delta,
        if args.has("no-hedge") { "off" } else { "on" },
    );
    server.wait();
    Ok(())
}
