//! `fastppv` — command-line interface to the FastPPV reproduction.
//!
//! ```text
//! fastppv generate  --kind dblp|lj|ba|er --out edges.txt [--nodes N] [--seed S]
//! fastppv pagerank  --graph edges.txt [--undirected] [--top K]
//! fastppv build     --graph edges.txt [--undirected] --hubs N --out index.fppv
//!                   [--policy eu|pagerank|outdeg|indeg|random] [--epsilon E]
//!                   [--clip C] [--threads T] [--auto-target NODES]
//! fastppv query     --graph edges.txt [--undirected] --index index.fppv
//!                   --node Q [--eta K | --l1 ERR] [--top K]
//! fastppv topk      --graph edges.txt [--undirected] --index index.fppv
//!                   --node Q --k K [--max-eta K]
//! fastppv serve     --graph edges.txt [--undirected] --index index.fppv
//!                   [--listen ADDR] [--workers N] [--hot-cache N]
//!                   [--eta K | --l1 ERR] [--wal DIR]
//!                   [--shard-id N --num-shards K [--shard-map FILE]]
//! fastppv serve     --stats ADDR
//! fastppv route     --shards ADDR1,ADDR2,... [--listen ADDR]
//!                   [--shard-map FILE] [--no-hedge] [--hedge-floor-ms MS]
//! fastppv update    --graph edges.txt [--undirected] --index index.fppv
//!                   [--events N] [--delete-fraction F] [--budget B] [--seed S]
//!                   [--wal DIR | --no-wal] [--checkpoint-every K]
//! fastppv stats     --index index.fppv
//! fastppv cluster   --graph edges.txt [--undirected] --clusters K --out g.clg
//!                   [--shards N --shard-map map.fsm]
//! ```
//!
//! Unrecognized flags are usage errors: the binary names the flag on
//! stderr and exits with code 2 (runtime failures exit with code 1).
//!
//! See `fastppv <command> --help` for details.

mod args;
mod commands;
mod route;

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "-h" {
        print_usage();
        return;
    }
    let command = argv.remove(0);
    let result = match command.as_str() {
        "generate" => commands::generate(&argv),
        "pagerank" => commands::pagerank_cmd(&argv),
        "build" => commands::build(&argv),
        "query" => commands::query(&argv),
        "topk" => commands::topk(&argv),
        "serve" => commands::serve(&argv),
        "route" => route::route(&argv),
        "update" => commands::update(&argv),
        "stats" => commands::stats(&argv),
        "cluster" => commands::cluster(&argv),
        other => {
            eprintln!("unknown command `{other}`\n");
            print_usage();
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code());
    }
}

fn print_usage() {
    eprintln!(
        "fastppv — incremental, accuracy-aware Personalized PageRank (VLDB'13 reproduction)

commands:
  generate   generate a synthetic graph (dblp / lj / ba / er) as an edge list
  pagerank   global PageRank of an edge-list graph
  build      offline phase: select hubs and build the prime-PPV index
  query      online phase: answer one PPV query from an index
  topk       certified top-k query (iterates until the set is provably exact)
  serve      concurrent query service: worker pool + hot-PPV cache, over
             stdin or a binary TCP socket (--listen ADDR); serves one
             shard's slice with --shard-id, prints a remote service's
             stats with --stats ADDR
  route      fault-tolerant scatter/gather front-end over shard
             processes: health probes, hedged sub-requests, certified
             partial answers when shards are down
  update     stream seeded edge events through a serving refresh loop
             (delta-patched under an error budget, or exact with --budget 0)
  stats      inspect an index file
  cluster    segment a graph for disk-based processing

run `fastppv <command> --help` for per-command flags"
    );
}
