//! End-to-end tests of the `fastppv` binary (spawned as a subprocess via
//! the Cargo-provided `CARGO_BIN_EXE_fastppv` path).

use std::path::PathBuf;
use std::process::Command;
use std::time::Duration;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fastppv"))
}

fn temp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "fastppv-cli-test-{}-{}-{name}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    p
}

#[test]
fn no_args_prints_usage() {
    let out = bin().output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("commands:"), "{text}");
}

#[test]
fn unknown_command_fails() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn full_pipeline_generate_build_query() {
    let graph = temp("pipeline.txt");
    let index = temp("pipeline.fppv");

    let out = bin()
        .args([
            "generate", "--kind", "lj", "--nodes", "800", "--seed", "3", "--out",
        ])
        .arg(&graph)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = bin()
        .args(["build", "--graph"])
        .arg(&graph)
        .args(["--hubs", "80", "--epsilon", "1e-6", "--out"])
        .arg(&index)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("80 hubs"), "{text}");

    let out = bin()
        .args(["stats", "--index"])
        .arg(&index)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("hubs:          80"), "{text}");

    let out = bin()
        .args(["query", "--graph"])
        .arg(&graph)
        .args(["--index"])
        .arg(&index)
        .args(["--node", "17", "--eta", "2", "--top", "3"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("query 17"), "{text}");
    assert!(text.contains("node 17"), "query node ranks itself: {text}");

    let out = bin()
        .args(["topk", "--graph"])
        .arg(&graph)
        .args(["--index"])
        .arg(&index)
        .args(["--node", "17", "--k", "3"])
        .output()
        .unwrap();
    assert!(out.status.success());

    std::fs::remove_file(&graph).ok();
    std::fs::remove_file(&index).ok();
}

#[test]
fn query_rejects_out_of_range_node() {
    let graph = temp("range.txt");
    let index = temp("range.fppv");
    assert!(bin()
        .args(["generate", "--kind", "ba", "--nodes", "200", "--out"])
        .arg(&graph)
        .status()
        .unwrap()
        .success());
    assert!(bin()
        .args(["build", "--graph"])
        .arg(&graph)
        .args(["--undirected", "--hubs", "20", "--out"])
        .arg(&index)
        .status()
        .unwrap()
        .success());
    let out = bin()
        .args(["query", "--graph"])
        .arg(&graph)
        .args(["--index"])
        .arg(&index)
        .args(["--node", "99999"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of range"));
    std::fs::remove_file(&graph).ok();
    std::fs::remove_file(&index).ok();
}

#[test]
fn cluster_command_writes_store() {
    let graph = temp("cluster.txt");
    let clg = temp("cluster.clg");
    assert!(bin()
        .args(["generate", "--kind", "er", "--nodes", "300", "--out"])
        .arg(&graph)
        .status()
        .unwrap()
        .success());
    let out = bin()
        .args(["cluster", "--graph"])
        .arg(&graph)
        .args(["--clusters", "6", "--out"])
        .arg(&clg)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("6 clusters"));
    assert!(clg.exists());
    std::fs::remove_file(&graph).ok();
    std::fs::remove_file(&clg).ok();
}

#[test]
fn build_with_autotune() {
    let graph = temp("auto.txt");
    let index = temp("auto.fppv");
    assert!(bin()
        .args(["generate", "--kind", "lj", "--nodes", "600", "--out"])
        .arg(&graph)
        .status()
        .unwrap()
        .success());
    let out = bin()
        .args(["build", "--graph"])
        .arg(&graph)
        .args(["--auto-target", "100", "--epsilon", "1e-6", "--out"])
        .arg(&index)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("autotune: |H| ="));
    std::fs::remove_file(&graph).ok();
    std::fs::remove_file(&index).ok();
}

#[test]
fn unknown_flag_exits_2_and_names_the_flag() {
    // The ROADMAP regression: `query --l1-error 0.05` used to run with
    // defaults and exit 0. It must now be a usage error, exit code 2.
    let out = bin()
        .args(["query", "--graph", "nonexistent.txt", "--l1-error", "0.05"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("--l1-error"), "must name the flag: {text}");

    // Every subcommand rejects, not just query.
    for cmd in [
        "generate", "pagerank", "build", "topk", "serve", "stats", "cluster",
    ] {
        let out = bin().args([cmd, "--frobnicate", "1"]).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{cmd} must exit 2");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("--frobnicate"),
            "{cmd} must name the flag"
        );
    }
}

#[test]
fn serve_rejects_zero_workers_as_usage_error() {
    let out = bin()
        .args([
            "serve",
            "--graph",
            "g.txt",
            "--index",
            "i.fppv",
            "--workers",
            "0",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--workers"));
}

#[test]
fn runtime_errors_still_exit_1() {
    let out = bin()
        .args(["stats", "--index", "/definitely/not/there.fppv"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn serve_answers_queries_from_stdin() {
    use std::io::Write;
    use std::process::Stdio;

    let graph = temp("serve.txt");
    let index = temp("serve.fppv");
    assert!(bin()
        .args(["generate", "--kind", "ba", "--nodes", "400", "--seed", "5", "--out"])
        .arg(&graph)
        .status()
        .unwrap()
        .success());
    assert!(bin()
        .args(["build", "--graph"])
        .arg(&graph)
        .args(["--undirected", "--hubs", "40", "--out"])
        .arg(&index)
        .status()
        .unwrap()
        .success());

    let mut child = bin()
        .args(["serve", "--graph"])
        .arg(&graph)
        .args(["--undirected", "--index"])
        .arg(&index)
        .args(["--workers", "4", "--batch", "3", "--top", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    // The repeat of node 17 sits in the SECOND batch (batch size 3): two
    // concurrent misses in one batch may legitimately both run the engine,
    // but a later batch is guaranteed to hit the warm cache.
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"17\n42 eta=3\n9 l1=0.2\n17\n# comment\n\nbogus line\n99999\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4, "4 valid queries served: {text}");
    assert!(lines[0].starts_with("node 17 "), "{text}");
    // The repeated query is served from the hot-PPV cache...
    assert!(lines[3].contains(" cached "), "{text}");
    // ...with scores identical to the miss.
    assert_eq!(
        lines[0].split("top:").nth(1),
        lines[3].split("top:").nth(1),
        "cache hit must return identical scores: {text}"
    );
    // eta=3 is an upper bound: the frontier may exhaust earlier under the
    // default δ truncation, but never exceed the budget.
    assert!(lines[1].starts_with("node 42 "), "{text}");
    let iters: usize = lines[1]
        .split("iterations=")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .unwrap();
    assert!(iters <= 3, "{text}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("skipping `bogus line`"), "{err}");
    assert!(err.contains("skipping `99999`"), "{err}");
    assert!(err.contains("served 4 queries"), "{err}");

    std::fs::remove_file(&graph).ok();
    std::fs::remove_file(&index).ok();
}

#[test]
fn serve_listen_answers_over_tcp_identical_to_direct_engine() {
    use std::io::BufRead;
    use std::process::Stdio;

    use fastppv_core::index::DiskIndex;
    use fastppv_core::query::StoppingCondition;
    use fastppv_core::{Config, FlatIndex, HubSet, QueryEngine};
    use fastppv_graph::io::read_edge_list_file;
    use fastppv_graph::DanglingPolicy;
    use fastppv_server::net::{Client, WireRequest};

    let graph_path = temp("listen.txt");
    let index_path = temp("listen.fppv");
    assert!(bin()
        .args(["generate", "--kind", "ba", "--nodes", "300", "--seed", "9", "--out"])
        .arg(&graph_path)
        .status()
        .unwrap()
        .success());
    assert!(bin()
        .args(["build", "--graph"])
        .arg(&graph_path)
        .args(["--undirected", "--hubs", "30", "--out"])
        .arg(&index_path)
        .status()
        .unwrap()
        .success());

    // The server runs until killed; kill it on drop so a failing assertion
    // below cannot orphan a live process holding the port.
    struct KillOnDrop(std::process::Child);
    impl Drop for KillOnDrop {
        fn drop(&mut self) {
            let _ = self.0.kill();
            let _ = self.0.wait();
        }
    }

    // Port 0: the kernel picks a free port, the server announces it.
    let mut child = KillOnDrop(
        bin()
            .args(["serve", "--graph"])
            .arg(&graph_path)
            .args(["--undirected", "--index"])
            .arg(&index_path)
            .args(["--workers", "2", "--listen", "127.0.0.1:0"])
            .stderr(Stdio::piped())
            .spawn()
            .unwrap(),
    );
    let mut stderr = std::io::BufReader::new(child.0.stderr.take().unwrap());
    let mut line = String::new();
    stderr.read_line(&mut line).unwrap();
    assert!(line.starts_with("listening on "), "{line}");
    let addr = line["listening on ".len()..]
        .split_whitespace()
        .next()
        .unwrap()
        .to_string();

    // An independent engine over the exact deployment the server loaded.
    let graph = read_edge_list_file(&graph_path, true, DanglingPolicy::SelfLoop).unwrap();
    let disk = DiskIndex::open(&index_path, 16).unwrap();
    let hubs = HubSet::from_ids(graph.num_nodes(), disk.hub_ids());
    let flat = FlatIndex::from_store(graph.num_nodes(), &disk, &disk.hub_ids(), &hubs);
    let config = Config::default();
    let engine = QueryEngine::new(&graph, &hubs, &flat, config);

    let mut client = Client::connect(&addr).unwrap();
    assert_eq!(client.num_nodes(), 300);
    let queries: Vec<u32> = vec![0, 17, 42, 123, 299];
    let requests: Vec<WireRequest> = queries
        .iter()
        .map(|&q| WireRequest::iterations(q, 2))
        .collect();
    let responses = client.request_batch(&requests).unwrap();
    for (r, &q) in responses.iter().zip(&queries) {
        let answer = r.answer().expect("in-range query is served");
        let direct = engine.query(q, &StoppingCondition::iterations(2));
        let mut diff: f64 = answer
            .entries
            .iter()
            .map(|&(v, s)| (s - direct.scores.get(v)).abs())
            .sum();
        for &(v, s) in direct.scores.entries() {
            if !answer.entries.iter().any(|&(e, _)| e == v) {
                diff += s.abs();
            }
        }
        assert!(
            diff <= 1e-12,
            "query {q}: socket answer diverges from direct engine by {diff}"
        );
        assert_eq!(answer.iterations as usize, direct.iterations);
    }

    // The repeat batch is served from the hot-PPV cache, identically.
    let again = client.request_batch(&requests).unwrap();
    for (a, b) in responses.iter().zip(&again) {
        let (a, b) = (a.answer().unwrap(), b.answer().unwrap());
        assert!(b.cached, "repeat deterministic batch must hit the cache");
        assert_eq!(a.entries, b.entries);
    }

    // Out-of-range ids are rejected per request, connection intact.
    let mixed = client
        .request_batch(&[
            WireRequest::iterations(5, 2),
            WireRequest::iterations(300, 2),
        ])
        .unwrap();
    assert!(mixed[0].answer().is_some());
    assert!(
        mixed[1].error().unwrap().contains("out of range"),
        "{mixed:?}"
    );

    drop(client);
    drop(child);
    std::fs::remove_file(&graph_path).ok();
    std::fs::remove_file(&index_path).ok();
}

#[test]
fn update_streams_events_delta_and_exact() {
    let graph = temp("update.txt");
    let index = temp("update.fppv");
    let out = bin()
        .args([
            "generate", "--kind", "ba", "--nodes", "300", "--seed", "9", "--out",
        ])
        .arg(&graph)
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = bin()
        .args(["build", "--graph"])
        .arg(&graph)
        .args(["--hubs", "20", "--epsilon", "1e-6", "--out"])
        .arg(&index)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Delta mode: events stream, a watermark is certified under the budget.
    let out = bin()
        .args(["update", "--graph"])
        .arg(&graph)
        .args(["--index"])
        .arg(&index)
        .args([
            "--events",
            "20",
            "--budget",
            "0.01",
            "--seed",
            "5",
            "--epsilon",
            "1e-6",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("streamed 20 events"), "{text}");
    assert!(text.contains("events/s"), "{text}");
    assert!(text.contains("delta-patched"), "{text}");
    assert!(text.contains("certified error watermark"), "{text}");
    // Durability is on by default: the run reports its wal dir.
    assert!(text.contains("durable: wal"), "{text}");

    // Rerunning the same stream with fewer events contradicts the wal
    // dir's checkpoint: fail closed, don't silently diverge.
    let out = bin()
        .args(["update", "--graph"])
        .arg(&graph)
        .args(["--index"])
        .arg(&index)
        .args(["--events", "5", "--budget", "0", "--seed", "5"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--no-wal"),
        "the conflict error must name the way out: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Budget 0 with --no-wal: the exact path, no watermark line, and the
    // stale checkpoint is ignored entirely.
    let out = bin()
        .args(["update", "--graph"])
        .arg(&graph)
        .args(["--index"])
        .arg(&index)
        .args([
            "--events",
            "5",
            "--budget",
            "0",
            "--seed",
            "5",
            "--epsilon",
            "1e-6",
            "--no-wal",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("recomputed exactly"), "{text}");
    assert!(!text.contains("certified error watermark"), "{text}");
    assert!(!text.contains("durable: wal"), "{text}");

    // Bad delete fraction is a usage error (exit 2), caught before loads.
    let out = bin()
        .args(["update", "--graph"])
        .arg(&graph)
        .args(["--index"])
        .arg(&index)
        .args(["--delete-fraction", "1.5"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    std::fs::remove_file(&graph).ok();
    std::fs::remove_dir_all(format!("{}.wal.d", index.display())).ok();
    std::fs::remove_file(&index).ok();
}

/// Crash rounds, scaled by `FASTPPV_FAULT_ROUNDS` in CI (the crash demo
/// in `BENCH_overload.json` runs hundreds; the default keeps `cargo
/// test` quick).
fn fault_rounds(default: usize) -> usize {
    std::env::var("FASTPPV_FAULT_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[test]
fn update_survives_sigkill_at_any_point_byte_identically() {
    const EVENTS: &str = "40";
    let graph = temp("crash.txt");
    let index = temp("crash.fppv");
    assert!(bin()
        .args(["generate", "--kind", "ba", "--nodes", "300", "--seed", "21", "--out"])
        .arg(&graph)
        .status()
        .unwrap()
        .success());
    assert!(bin()
        .args(["build", "--graph"])
        .arg(&graph)
        .args(["--hubs", "20", "--epsilon", "1e-6", "--out"])
        .arg(&index)
        .status()
        .unwrap()
        .success());

    let update = |wal: &PathBuf| {
        let mut c = bin();
        c.args(["update", "--graph"])
            .arg(&graph)
            .args(["--index"])
            .arg(&index)
            .args(["--events", EVENTS, "--budget", "0.01", "--seed", "5"])
            .args(["--checkpoint-every", "7", "--wal"])
            .arg(wal);
        c
    };

    // Golden run: uninterrupted, the final published arena is the answer
    // every crashed-and-recovered run must reproduce byte for byte.
    let golden_wal = temp("crash-golden.wal.d");
    let out = update(&golden_wal).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let golden = std::fs::read(golden_wal.join(format!("arena.gen-{EVENTS}"))).unwrap();

    for round in 0..fault_rounds(5) {
        let wal = temp(&format!("crash-r{round}.wal.d"));
        // Deterministic pseudo-random kill point across the run's whole
        // lifetime: index load, mid-stream, mid-checkpoint.
        let delay = Duration::from_millis((round as u64 * 7919 + 13) % 150);
        let mut child = update(&wal).spawn().unwrap();
        std::thread::sleep(delay);
        child.kill().unwrap(); // SIGKILL on unix: no destructors, no flush
        child.wait().unwrap();

        // The rerun must recover whatever the kill left behind — torn wal
        // tail, missing manifest, half-checkpointed gen files — and finish.
        let out = update(&wal).output().unwrap();
        assert!(
            out.status.success(),
            "round {round} (killed after {delay:?}): recovery run failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(!stderr.contains("panic"), "round {round}: {stderr}");
        let recovered = std::fs::read(wal.join(format!("arena.gen-{EVENTS}"))).unwrap();
        assert_eq!(
            recovered, golden,
            "round {round} (killed after {delay:?}): recovered arena is not \
             byte-identical to the uninterrupted run"
        );
        std::fs::remove_dir_all(&wal).ok();
    }

    std::fs::remove_dir_all(&golden_wal).ok();
    std::fs::remove_file(&graph).ok();
    std::fs::remove_file(&index).ok();
}

#[test]
fn serve_sigkill_mid_batch_surfaces_typed_error_not_hang() {
    use std::io::BufRead;
    use std::process::Stdio;

    use fastppv_server::net::{Client, WireRequest};

    let graph = temp("kill9.txt");
    let index = temp("kill9.fppv");
    assert!(bin()
        .args(["generate", "--kind", "ba", "--nodes", "400", "--seed", "23", "--out"])
        .arg(&graph)
        .status()
        .unwrap()
        .success());
    assert!(bin()
        .args(["build", "--graph"])
        .arg(&graph)
        .args(["--hubs", "40", "--epsilon", "1e-6", "--out"])
        .arg(&index)
        .status()
        .unwrap()
        .success());

    let mut child = bin()
        .args(["serve", "--graph"])
        .arg(&graph)
        .args(["--index"])
        .arg(&index)
        .args(["--workers", "2", "--listen", "127.0.0.1:0"])
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let mut stderr = std::io::BufReader::new(child.stderr.take().unwrap());
    let mut line = String::new();
    stderr.read_line(&mut line).unwrap();
    assert!(line.starts_with("listening on "), "{line}");
    let addr = line["listening on ".len()..]
        .split_whitespace()
        .next()
        .unwrap()
        .to_string();

    let mut client = Client::connect(&addr).unwrap();
    let requests: Vec<WireRequest> = (0..64).map(|q| WireRequest::iterations(q, 6)).collect();
    let waiter = std::thread::spawn(move || client.request_batch(&requests));
    // The batch is in flight; now the server process vanishes mid-answer.
    std::thread::sleep(Duration::from_millis(20));
    child.kill().unwrap();
    child.wait().unwrap();

    let started = std::time::Instant::now();
    let result = waiter.join().unwrap();
    assert!(
        result.is_err(),
        "a SIGKILLed server cannot deliver a complete batch"
    );
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "client hung on a dead server instead of surfacing the error"
    );

    std::fs::remove_file(&graph).ok();
    std::fs::remove_file(&index).ok();
}

#[test]
fn update_unwritable_wal_dir_exits_1_and_names_the_opt_out() {
    let graph = temp("nowal.txt");
    let index = temp("nowal.fppv");
    assert!(bin()
        .args(["generate", "--kind", "ba", "--nodes", "200", "--seed", "25", "--out"])
        .arg(&graph)
        .status()
        .unwrap()
        .success());
    assert!(bin()
        .args(["build", "--graph"])
        .arg(&graph)
        .args(["--hubs", "20", "--out"])
        .arg(&index)
        .status()
        .unwrap()
        .success());

    // A path *under a regular file* cannot become a directory, even for
    // root (the usual read-only-dir trick is a no-op under uid 0).
    let mut unwritable = graph.clone();
    unwritable.push("nested");
    let out = bin()
        .args(["update", "--graph"])
        .arg(&graph)
        .args(["--index"])
        .arg(&index)
        .args(["--events", "4", "--wal"])
        .arg(&unwritable)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "runtime failure, not usage");
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("wal dir"), "{text}");
    assert!(text.contains("--no-wal"), "must name the opt-out: {text}");

    // --wal and --no-wal together is a usage error (exit 2).
    let out = bin()
        .args(["update", "--graph"])
        .arg(&graph)
        .args(["--index"])
        .arg(&index)
        .args(["--no-wal", "--wal", "somewhere"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    std::fs::remove_file(&graph).ok();
    std::fs::remove_file(&index).ok();
}

#[test]
fn arena_pipeline_build_query_stats() {
    let graph = temp("arena.txt");
    let index = temp("arena.fppv");
    let arena = temp("arena.fppv3");

    let out = bin()
        .args([
            "generate", "--kind", "ba", "--nodes", "400", "--seed", "7", "--out",
        ])
        .arg(&graph)
        .output()
        .unwrap();
    assert!(out.status.success());

    // Build writes both the record format and the single-file arena.
    let out = bin()
        .args(["build", "--graph"])
        .arg(&graph)
        .args(["--undirected", "--hubs", "40", "--epsilon", "1e-6", "--out"])
        .arg(&index)
        .args(["--arena-out"])
        .arg(&arena)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("wrote arena"), "{text}");

    // The arena-opened query must answer exactly like the record-format
    // deserialize path.
    let query_with = |idx: &PathBuf| {
        let out = bin()
            .args(["query", "--graph"])
            .arg(&graph)
            .args(["--undirected", "--index"])
            .arg(idx)
            .args(["--node", "11", "--eta", "3", "--top", "5"])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let from_record = query_with(&index);
    let from_arena = query_with(&arena);
    // The header line carries wall-clock timing; the ranked top-k lines
    // are deterministic and must match exactly (scores to 6 decimals).
    let ranks = |s: &str| {
        s.lines()
            .filter(|l| l.contains("score"))
            .map(str::to_string)
            .collect::<Vec<_>>()
    };
    assert!(from_arena.contains("query 11"));
    assert_eq!(ranks(&from_record), ranks(&from_arena));
    assert_eq!(ranks(&from_arena).len(), 5);

    // stats recognizes the arena format and reports memory accounting.
    let out = bin()
        .args(["stats", "--index"])
        .arg(&arena)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("single-file arena"), "{text}");
    assert!(text.contains("hubs:          40"), "{text}");
    assert!(text.contains("resident:"), "{text}");
    assert!(text.contains("mapped:"), "{text}");

    // --store disk on an arena file is a usage error (exit 2).
    let out = bin()
        .args(["query", "--graph"])
        .arg(&graph)
        .args(["--undirected", "--index"])
        .arg(&arena)
        .args(["--node", "11", "--store", "disk"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    // update accepts the arena directly (zero-copy open, then COW patch).
    let out = bin()
        .args(["update", "--graph"])
        .arg(&graph)
        .args(["--undirected", "--index"])
        .arg(&arena)
        .args([
            "--events",
            "4",
            "--budget",
            "0.01",
            "--seed",
            "3",
            "--epsilon",
            "1e-6",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    std::fs::remove_file(&graph).ok();
    std::fs::remove_file(&index).ok();
    std::fs::remove_dir_all(format!("{}.wal.d", arena.display())).ok();
    std::fs::remove_file(&arena).ok();
}

/// The sharded-serving e2e: four shard processes plus the scatter/gather
/// router, SIGKILLing one shard mid-run. The contract under test —
/// *shards that fail are still a cluster*:
///
/// * before the kill, routed answers match a direct single-process
///   engine to ≤ 1e-12;
/// * after the kill, every response is still a typed `Answer` (zero
///   client-visible errors), some degraded with an honestly inflated φ;
/// * after the shard restarts, fresh queries go back to clean answers.
#[test]
fn route_survives_shard_sigkill_with_zero_client_errors() {
    use std::io::BufRead;
    use std::process::Stdio;

    use fastppv_core::index::DiskIndex;
    use fastppv_core::query::StoppingCondition;
    use fastppv_core::{Config, FlatIndex, HubSet, QueryEngine};
    use fastppv_graph::io::read_edge_list_file;
    use fastppv_graph::DanglingPolicy;
    use fastppv_server::net::{Client, WireRequest, WireResponse};

    let graph_path = temp("route.txt");
    let index_path = temp("route.fppv");
    assert!(bin()
        .args(["generate", "--kind", "ba", "--nodes", "600", "--seed", "4", "--out"])
        .arg(&graph_path)
        .status()
        .unwrap()
        .success());
    assert!(bin()
        .args(["build", "--graph"])
        .arg(&graph_path)
        .args(["--undirected", "--hubs", "50", "--out"])
        .arg(&index_path)
        .status()
        .unwrap()
        .success());

    struct KillOnDrop(std::process::Child);
    impl Drop for KillOnDrop {
        fn drop(&mut self) {
            let _ = self.0.kill();
            let _ = self.0.wait();
        }
    }

    /// Reads the child's stderr until the `listening on`/`routing on`
    /// announcement and returns the bound address.
    fn announced_addr(child: &mut std::process::Child, what: &str) -> String {
        let stderr = child.stderr.take().unwrap();
        let mut reader = std::io::BufReader::new(stderr);
        loop {
            let mut line = String::new();
            assert!(
                reader.read_line(&mut line).unwrap() > 0,
                "{what} exited before announcing its address"
            );
            if let Some(rest) = line
                .strip_prefix("listening on ")
                .or_else(|| line.strip_prefix("routing on "))
            {
                // Drain the rest of stderr in the background so the child
                // never blocks on a full pipe.
                std::thread::spawn(move || for _ in reader.lines() {});
                return rest.split_whitespace().next().unwrap().to_string();
            }
        }
    }

    let spawn_shard = |shard_id: usize, listen: &str| -> KillOnDrop {
        KillOnDrop(
            bin()
                .args(["serve", "--graph"])
                .arg(&graph_path)
                .args(["--undirected", "--index"])
                .arg(&index_path)
                .args([
                    "--workers",
                    "2",
                    "--shard-id",
                    &shard_id.to_string(),
                    "--num-shards",
                    "4",
                    "--listen",
                    listen,
                ])
                .stderr(Stdio::piped())
                .spawn()
                .unwrap(),
        )
    };

    let mut shards: Vec<KillOnDrop> = (0..4).map(|i| spawn_shard(i, "127.0.0.1:0")).collect();
    let shard_addrs: Vec<String> = shards
        .iter_mut()
        .enumerate()
        .map(|(i, s)| announced_addr(&mut s.0, &format!("shard {i}")))
        .collect();

    let mut router = KillOnDrop(
        bin()
            .args(["route", "--shards", &shard_addrs.join(",")])
            .args(["--listen", "127.0.0.1:0", "--breaker-ms", "100"])
            .stderr(Stdio::piped())
            .spawn()
            .unwrap(),
    );
    let router_addr = announced_addr(&mut router.0, "router");

    // Independent oracle over the same deployment.
    let graph = read_edge_list_file(&graph_path, true, DanglingPolicy::SelfLoop).unwrap();
    let disk = DiskIndex::open(&index_path, 16).unwrap();
    let hubs = HubSet::from_ids(graph.num_nodes(), disk.hub_ids());
    let flat = FlatIndex::from_store(graph.num_nodes(), &disk, &disk.hub_ids(), &hubs);
    let engine = QueryEngine::new(&graph, &hubs, &flat, Config::default());

    let mut client = Client::connect(&router_addr).unwrap();
    assert_eq!(client.num_nodes(), 600);

    // Phase 1: clean cluster — scattered answers equal the direct engine.
    let queries: Vec<u32> = (0..600).step_by(67).collect();
    let requests: Vec<WireRequest> = queries
        .iter()
        .map(|&q| WireRequest::iterations(q, 2))
        .collect();
    for (r, &q) in client
        .request_batch(&requests)
        .unwrap()
        .iter()
        .zip(&queries)
    {
        let answer = r.answer().unwrap_or_else(|| panic!("q {q}: {r:?}"));
        assert!(!answer.degraded, "q {q}: degraded with all shards up");
        let direct = engine.query(q, &StoppingCondition::iterations(2));
        let mut diff: f64 = answer
            .entries
            .iter()
            .map(|&(v, s)| (s - direct.scores.get(v)).abs())
            .sum();
        for &(v, s) in direct.scores.entries() {
            if !answer.entries.iter().any(|&(e, _)| e == v) {
                diff += s.abs();
            }
        }
        assert!(diff <= 1e-12, "q {q}: routed answer off by {diff}");
    }

    // Phase 2: SIGKILL shard 2 mid-run. Zero client-visible errors — every
    // response stays an Answer; degraded ones carry an inflated-but-valid φ.
    shards[2].0.kill().unwrap();
    shards[2].0.wait().unwrap();
    let mut degraded = 0u32;
    for round in 0..3 {
        let reqs: Vec<WireRequest> = queries
            .iter()
            .map(|&q| WireRequest::iterations(q, 3 + round))
            .collect();
        for (r, &q) in client.request_batch(&reqs).unwrap().iter().zip(&queries) {
            match r {
                WireResponse::Answer(a) => {
                    assert!(
                        (0.0..=1.0).contains(&a.l1_error),
                        "q {q}: φ {} out of range",
                        a.l1_error
                    );
                    if a.degraded {
                        assert!(!a.exhausted);
                        degraded += 1;
                    }
                }
                other => panic!("q {q} after SIGKILL: client-visible failure {other:?}"),
            }
        }
    }
    assert!(
        degraded > 0,
        "killing a shard of 4 must degrade some answers"
    );

    // The stats one-shot sees the router's degradation counters.
    let stats_out = bin()
        .args(["serve", "--stats", &router_addr])
        .output()
        .unwrap();
    assert!(stats_out.status.success());
    let stats_text = String::from_utf8_lossy(&stats_out.stdout).to_string();
    assert!(stats_text.contains("degraded"), "{stats_text}");

    // Phase 3: restart the shard on its old address; goodput recovers to
    // clean answers once the breaker lets the revived shard back in.
    shards[2] = spawn_shard(2, &shard_addrs[2]);
    let _ = announced_addr(&mut shards[2].0, "restarted shard 2");
    let recovered = (0..100).any(|i| {
        std::thread::sleep(Duration::from_millis(100));
        let probe =
            WireRequest::iterations(queries[i % queries.len()], 6 + (i / queries.len()) as u32);
        match client.request_one(probe) {
            Ok(WireResponse::Answer(a)) => !a.degraded,
            _ => false,
        }
    });
    assert!(recovered, "cluster did not recover after the shard restart");

    drop(client);
    drop(router);
    drop(shards);
    std::fs::remove_file(&graph_path).ok();
    std::fs::remove_file(&index_path).ok();
}
