//! End-to-end tests of the `fastppv` binary (spawned as a subprocess via
//! the Cargo-provided `CARGO_BIN_EXE_fastppv` path).

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fastppv"))
}

fn temp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "fastppv-cli-test-{}-{}-{name}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    p
}

#[test]
fn no_args_prints_usage() {
    let out = bin().output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("commands:"), "{text}");
}

#[test]
fn unknown_command_fails() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn full_pipeline_generate_build_query() {
    let graph = temp("pipeline.txt");
    let index = temp("pipeline.fppv");

    let out = bin()
        .args([
            "generate", "--kind", "lj", "--nodes", "800", "--seed", "3", "--out",
        ])
        .arg(&graph)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = bin()
        .args(["build", "--graph"])
        .arg(&graph)
        .args(["--hubs", "80", "--epsilon", "1e-6", "--out"])
        .arg(&index)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("80 hubs"), "{text}");

    let out = bin()
        .args(["stats", "--index"])
        .arg(&index)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("hubs:          80"), "{text}");

    let out = bin()
        .args(["query", "--graph"])
        .arg(&graph)
        .args(["--index"])
        .arg(&index)
        .args(["--node", "17", "--eta", "2", "--top", "3"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("query 17"), "{text}");
    assert!(text.contains("node 17"), "query node ranks itself: {text}");

    let out = bin()
        .args(["topk", "--graph"])
        .arg(&graph)
        .args(["--index"])
        .arg(&index)
        .args(["--node", "17", "--k", "3"])
        .output()
        .unwrap();
    assert!(out.status.success());

    std::fs::remove_file(&graph).ok();
    std::fs::remove_file(&index).ok();
}

#[test]
fn query_rejects_out_of_range_node() {
    let graph = temp("range.txt");
    let index = temp("range.fppv");
    assert!(bin()
        .args(["generate", "--kind", "ba", "--nodes", "200", "--out"])
        .arg(&graph)
        .status()
        .unwrap()
        .success());
    assert!(bin()
        .args(["build", "--graph"])
        .arg(&graph)
        .args(["--undirected", "--hubs", "20", "--out"])
        .arg(&index)
        .status()
        .unwrap()
        .success());
    let out = bin()
        .args(["query", "--graph"])
        .arg(&graph)
        .args(["--index"])
        .arg(&index)
        .args(["--node", "99999"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of range"));
    std::fs::remove_file(&graph).ok();
    std::fs::remove_file(&index).ok();
}

#[test]
fn cluster_command_writes_store() {
    let graph = temp("cluster.txt");
    let clg = temp("cluster.clg");
    assert!(bin()
        .args(["generate", "--kind", "er", "--nodes", "300", "--out"])
        .arg(&graph)
        .status()
        .unwrap()
        .success());
    let out = bin()
        .args(["cluster", "--graph"])
        .arg(&graph)
        .args(["--clusters", "6", "--out"])
        .arg(&clg)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("6 clusters"));
    assert!(clg.exists());
    std::fs::remove_file(&graph).ok();
    std::fs::remove_file(&clg).ok();
}

#[test]
fn build_with_autotune() {
    let graph = temp("auto.txt");
    let index = temp("auto.fppv");
    assert!(bin()
        .args(["generate", "--kind", "lj", "--nodes", "600", "--out"])
        .arg(&graph)
        .status()
        .unwrap()
        .success());
    let out = bin()
        .args(["build", "--graph"])
        .arg(&graph)
        .args(["--auto-target", "100", "--epsilon", "1e-6", "--out"])
        .arg(&index)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("autotune: |H| ="));
    std::fs::remove_file(&graph).ok();
    std::fs::remove_file(&index).ok();
}
