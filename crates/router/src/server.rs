//! The router's TCP front-end: protocol-compatible with a single
//! `fastppv serve` process, so clients connect to a cluster unchanged.
//!
//! Per client request the router runs [`crate::merge_query`] over the
//! backend, with:
//!
//! * an **answer cache** keyed `(query, stopping condition, epoch)` — a
//!   hit skips the scatter entirely, and the epoch key plus an
//!   advance-only epoch watermark keeps post-update answers from mixing
//!   with pre-update ones;
//! * **typed degradation** — a clean merge answers normally; a degraded
//!   merge that still meets the request's accuracy target is served with
//!   the `degraded` flag and its honest (inflated) φ; a degraded merge
//!   that *misses* a requested L1 target is shed as
//!   `Overloaded{retry_after}` rather than silently under-delivering;
//! * **two-phase update forwarding** — an `OP_UPDATE` frame against the
//!   router coordinates the phase across every shard (prepare-all with
//!   abort-on-failure, commit-all), then clears the answer cache and
//!   advances the epoch watermark.

use std::collections::VecDeque;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fastppv_cluster::ShardMap;
use fastppv_core::query::StoppingCondition;
use fastppv_graph::vec::top_k_entries;
use fastppv_graph::{NodeId, ScoreScratch};
use fastppv_server::net::{
    decode_request_batch, decode_update_request, encode_hello, encode_response_batch,
    encode_stats_response, encode_update_response, read_frame_stalling, write_frame, NetOptions,
    ServerHello, UpdatePhase, WireAnswer, WireRequest, WireResponse, WireStats, WireStop,
    MAX_FRAME_BYTES, OP_QUERY, OP_STATS, OP_UPDATE,
};
use fastppv_server::{percentile, LruCache};
use parking_lot::Mutex;

use crate::merge::{merge_query, MergeError, MergedAnswer, RouterConfig, SubBackend};
use crate::publish::UpdateBackend;

/// Serving knobs of a [`Router`].
#[derive(Clone, Copy, Debug)]
pub struct RouterOptions {
    /// Merged answers cached (`0` disables). Keyed by
    /// `(query, stop, epoch)`; degraded and deadline-bounded answers are
    /// never cached.
    pub cache_capacity: usize,
    /// Connection-level robustness knobs (frame stall, write timeout).
    pub net: NetOptions,
    /// Backoff hint attached to `Overloaded` responses.
    pub retry_after: Duration,
    /// Shed a degraded answer that misses its requested L1 target
    /// (instead of serving the miss with the `degraded` flag).
    pub shed_unattainable: bool,
}

impl Default for RouterOptions {
    fn default() -> Self {
        RouterOptions {
            cache_capacity: 4096,
            net: NetOptions::default(),
            retry_after: Duration::from_millis(250),
            shed_unattainable: true,
        }
    }
}

/// Cache key: query, stopping-condition discriminant + payload bits,
/// and the epoch the answer was merged at.
type CacheKey = (NodeId, u8, u64, u64);

fn stop_key(stop: &WireStop) -> (u8, u64) {
    match stop {
        WireStop::Iterations(eta) => (0, *eta as u64),
        WireStop::L1Error(target) => (1, target.to_bits()),
    }
}

/// How many recent merge latencies feed the router's own stats p99.
const LATENCY_WINDOW: usize = 1024;

/// How many merge workspaces (dense score scratches) stay pooled.
const WORKSPACE_POOL: usize = 16;

/// A stateless scatter/gather front-end over a shard backend. `&self`
/// end to end — one router serves any number of connection threads.
pub struct Router<B> {
    backend: B,
    map: ShardMap,
    cfg: RouterConfig,
    options: RouterOptions,
    cache: Mutex<LruCache<CacheKey, Arc<MergedAnswer>>>,
    /// Advance-only watermark of the highest epoch seen in any merged
    /// answer or committed update: cache lookups key on it, so answers
    /// from before an observed update stop being served immediately.
    epoch: AtomicU64,
    workspaces: Mutex<Vec<ScoreScratch>>,
    latencies: Mutex<VecDeque<Duration>>,
    in_flight: AtomicU64,
    degraded: AtomicU64,
    shed: AtomicU64,
}

impl<B: SubBackend> Router<B> {
    /// A router over `backend` and the hub→shard map, configured with
    /// the cluster's α/δ/node-count (from shard hellos — see
    /// [`crate::TcpBackend::discover_hello`]).
    pub fn new(backend: B, map: ShardMap, cfg: RouterConfig, options: RouterOptions) -> Self {
        assert_eq!(
            map.num_nodes(),
            cfg.num_nodes,
            "shard map and cluster disagree on the node count"
        );
        assert_eq!(
            backend.num_shards(),
            map.num_shards() as usize,
            "backend and shard map disagree on the shard count"
        );
        Router {
            backend,
            map,
            cfg,
            options,
            cache: Mutex::new(LruCache::new(options.cache_capacity)),
            epoch: AtomicU64::new(0),
            workspaces: Mutex::new(Vec::new()),
            latencies: Mutex::new(VecDeque::new()),
            in_flight: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// The backend (health board access for callers embedding a router).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The highest cluster epoch this router has observed.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// What this router announces to connecting clients.
    pub fn hello(&self) -> ServerHello {
        ServerHello {
            num_nodes: self.cfg.num_nodes as u64,
            epoch: self.epoch(),
            alpha: self.cfg.alpha,
            delta: self.cfg.delta,
        }
    }

    /// The router's own load picture, served to `OP_STATS` probes.
    pub fn stats(&self) -> WireStats {
        let recent: Vec<Duration> = {
            let l = self.latencies.lock();
            let (a, b) = l.as_slices();
            a.iter().chain(b.iter()).copied().collect()
        };
        WireStats {
            in_flight: self.in_flight.load(Ordering::Acquire),
            recent_p99: percentile(&recent, 0.99),
            degraded: self.degraded.load(Ordering::Acquire),
            shed: self.shed.load(Ordering::Acquire),
            epoch: self.epoch(),
        }
    }

    fn advance_epoch(&self, seen: u64) {
        self.epoch.fetch_max(seen, Ordering::AcqRel);
    }

    fn take_workspace(&self) -> ScoreScratch {
        self.workspaces
            .lock()
            .pop()
            .unwrap_or_else(|| ScoreScratch::new(self.cfg.num_nodes))
    }

    fn return_workspace(&self, ws: ScoreScratch) {
        let mut pool = self.workspaces.lock();
        if pool.len() < WORKSPACE_POOL {
            pool.push(ws);
        }
    }

    fn note_latency(&self, latency: Duration) {
        let mut l = self.latencies.lock();
        if l.len() == LATENCY_WINDOW {
            l.pop_front();
        }
        l.push_back(latency);
    }

    /// Serves one wire request end to end: cache, scatter/gather merge,
    /// degradation policy, response formatting.
    pub fn serve_request(&self, request: &WireRequest) -> WireResponse {
        let started = Instant::now();
        self.in_flight.fetch_add(1, Ordering::AcqRel);
        let response = self.serve_request_inner(request, started);
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
        self.note_latency(started.elapsed());
        response
    }

    fn serve_request_inner(&self, request: &WireRequest, started: Instant) -> WireResponse {
        let (tag, bits) = stop_key(&request.stop);
        let cacheable = request.deadline_ms.is_none();
        if cacheable {
            let key = (request.query, tag, bits, self.epoch());
            if let Some(hit) = self.cache.lock().get(&key).map(Arc::clone) {
                return WireResponse::Answer(format_answer(
                    &hit,
                    request.top_k,
                    true,
                    started.elapsed(),
                ));
            }
        }
        let mut stop = match request.stop {
            WireStop::Iterations(eta) => StoppingCondition::iterations(eta as usize),
            WireStop::L1Error(target) => StoppingCondition::l1_error(target),
        };
        if let Some(ms) = request.deadline_ms {
            stop = stop.or_time_limit(Duration::from_millis(ms as u64));
        }
        let mut ws = self.take_workspace();
        let merged = merge_query(
            &self.backend,
            &self.map,
            &self.cfg,
            request.query,
            &stop,
            &mut ws,
        );
        self.return_workspace(ws);
        let merged = match merged {
            Ok(m) => m,
            // Nothing serveable at all: a typed, retryable rejection.
            Err(MergeError::AllShardsDown) | Err(MergeError::EpochSkew) => {
                self.shed.fetch_add(1, Ordering::AcqRel);
                return WireResponse::Overloaded {
                    retry_after_ms: (self.options.retry_after.as_millis() as u32).max(1),
                };
            }
            Err(MergeError::Shard(msg)) => return WireResponse::Error(msg),
        };
        self.advance_epoch(merged.epoch);
        if merged.degraded {
            self.degraded.fetch_add(1, Ordering::AcqRel);
            // A degraded answer that misses a requested accuracy bound is
            // an unattainable contract right now — shed it honestly
            // instead of serving a silent miss.
            if self.options.shed_unattainable {
                if let WireStop::L1Error(target) = request.stop {
                    if merged.l1_error > target {
                        self.shed.fetch_add(1, Ordering::AcqRel);
                        return WireResponse::Overloaded {
                            retry_after_ms: (self.options.retry_after.as_millis() as u32).max(1),
                        };
                    }
                }
            }
        }
        let answer = format_answer(&merged, request.top_k, false, started.elapsed());
        if cacheable && !merged.degraded {
            let key = (request.query, tag, bits, merged.epoch);
            self.cache.lock().insert(key, Arc::new(merged));
        }
        WireResponse::Answer(answer)
    }

    /// Serves a whole request batch in order (each request's scatter is
    /// itself parallel).
    pub fn serve_batch(&self, requests: &[WireRequest]) -> Vec<WireResponse> {
        requests.iter().map(|r| self.serve_request(r)).collect()
    }
}

impl<B: SubBackend + UpdateBackend> Router<B> {
    /// Forwards one two-phase update frame to every shard. Prepare
    /// failures abort the round everywhere; a full commit advances the
    /// router's epoch watermark and drops the answer cache.
    pub fn forward_update(
        &self,
        phase: UpdatePhase,
        target_epoch: u64,
        events: &[fastppv_graph::gen::EdgeEvent],
    ) -> Result<(), String> {
        let n = UpdateBackend::num_shards(&self.backend);
        match phase {
            UpdatePhase::Prepare => {
                let prepared: crate::publish::PrepareOutcomes = std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..n)
                        .map(|s| {
                            scope.spawn(move || (s, self.backend.prepare(s, target_epoch, events)))
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("prepare worker panicked"))
                        .collect()
                });
                for (shard, outcome) in &prepared {
                    let message = match outcome {
                        Ok(Ok(())) => continue,
                        Ok(Err(msg)) => msg.clone(),
                        Err(e) => e.to_string(),
                    };
                    for s in 0..n {
                        let _ = self.backend.abort(s);
                    }
                    return Err(format!(
                        "prepare failed on shard {shard} (round aborted): {message}"
                    ));
                }
                Ok(())
            }
            UpdatePhase::Commit => {
                let mut failures = Vec::new();
                for shard in 0..n {
                    match self.backend.commit(shard, target_epoch) {
                        Ok(Ok(())) => {}
                        Ok(Err(msg)) => failures.push((shard, msg)),
                        Err(e) => failures.push((shard, e.to_string())),
                    }
                }
                if failures.is_empty() {
                    self.advance_epoch(target_epoch);
                    self.cache.lock().clear();
                    Ok(())
                } else {
                    Err(format!(
                        "commit failed on {} shard(s): {}",
                        failures.len(),
                        failures
                            .iter()
                            .map(|(s, m)| format!("[{s}] {m}"))
                            .collect::<Vec<_>>()
                            .join("; ")
                    ))
                }
            }
            UpdatePhase::Abort => {
                for s in 0..n {
                    let _ = self.backend.abort(s);
                }
                Ok(())
            }
        }
    }
}

fn format_answer(merged: &MergedAnswer, top_k: u32, cached: bool, latency: Duration) -> WireAnswer {
    let entries = if top_k == 0 {
        merged.scores.clone()
    } else {
        top_k_entries(merged.scores.clone(), top_k as usize)
    };
    WireAnswer {
        query: merged.query,
        iterations: merged.iterations as u32,
        l1_error: merged.l1_error,
        exhausted: merged.exhausted,
        cached,
        degraded: merged.degraded,
        latency,
        entries,
    }
}

// ---------------------------------------------------------------------------
// TCP front-end
// ---------------------------------------------------------------------------

/// A running router front-end; same lifecycle contract as
/// [`fastppv_server::net::NetServer`].
pub struct RouterServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl RouterServer {
    /// The address the router is listening on (resolves port-0 binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Blocks until the acceptor exits (the CLI's foreground mode).
    pub fn wait(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }

    /// Stops accepting and joins the acceptor.
    pub fn shutdown(mut self) {
        self.signal_and_join();
    }

    fn signal_and_join(&mut self) {
        let Some(handle) = self.acceptor.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.local_addr);
        let _ = handle.join();
    }
}

impl Drop for RouterServer {
    fn drop(&mut self) {
        self.signal_and_join();
    }
}

/// Starts the router front-end: one acceptor thread plus one thread per
/// client connection, each serving `OP_QUERY`, `OP_STATS`, and
/// `OP_UPDATE` frames against the shared [`Router`]. Returns immediately
/// with a [`RouterServer`] handle.
pub fn serve_router<B>(
    router: Arc<Router<B>>,
    listener: TcpListener,
) -> std::io::Result<RouterServer>
where
    B: SubBackend + UpdateBackend + Send + Sync + 'static,
{
    let options = router.options.net;
    let local_addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let acceptor = std::thread::Builder::new()
        .name("fastppv-route-accept".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = conn else {
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                };
                let router = Arc::clone(&router);
                let stop = Arc::clone(&stop_flag);
                let _ = std::thread::Builder::new()
                    .name("fastppv-route-conn".into())
                    .spawn(move || {
                        let _ = handle_connection(&router, stream, &stop, options);
                    });
            }
        })?;
    Ok(RouterServer {
        local_addr,
        stop,
        acceptor: Some(acceptor),
    })
}

fn handle_connection<B: SubBackend + UpdateBackend>(
    router: &Router<B>,
    stream: TcpStream,
    stop: &AtomicBool,
    options: NetOptions,
) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(options.frame_stall_timeout))?;
    stream.set_write_timeout(options.write_timeout)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    write_frame(&mut writer, &encode_hello(&router.hello()))?;
    let mut scratch = Vec::new();
    while let Some(payload) = read_frame_stalling(&mut reader, stop, &mut scratch)? {
        let Some((&op, body)) = payload.split_first() else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "empty frame (missing op byte)",
            ));
        };
        match op {
            OP_QUERY => {
                let requests = decode_request_batch(body)?;
                let responses = router.serve_batch(&requests);
                let mut encoded = encode_response_batch(&responses);
                if encoded.len() > MAX_FRAME_BYTES {
                    // Same degradation as the shard front-end: oversized
                    // answer batches become per-request errors instead of
                    // killing the connection.
                    let errors: Vec<WireResponse> = responses
                        .iter()
                        .map(|r| match r {
                            WireResponse::Answer(a) => WireResponse::Error(format!(
                                "response batch exceeds the {} MiB frame cap; request \
                                 fewer entries (top_k) or smaller batches (answer for \
                                 node {} alone held {} entries)",
                                MAX_FRAME_BYTES >> 20,
                                a.query,
                                a.entries.len()
                            )),
                            other => other.clone(),
                        })
                        .collect();
                    encoded = encode_response_batch(&errors);
                }
                write_frame(&mut writer, &encoded)?;
            }
            OP_STATS => {
                write_frame(&mut writer, &encode_stats_response(&router.stats()))?;
            }
            OP_UPDATE => {
                let (phase, target_epoch, events) = decode_update_request(body)?;
                let result = router.forward_update(phase, target_epoch, &events);
                write_frame(&mut writer, &encode_update_response(&result))?;
            }
            tag => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("router does not serve op byte {tag} (shard-only sub-op?)"),
                ))
            }
        }
    }
    Ok(())
}
