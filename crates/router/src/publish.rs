//! Two-phase publish barrier: atomically advancing the cluster epoch.
//!
//! A scattered merge is only correct if every partial came from the same
//! epoch, so an index refresh must flip all shards together. The
//! coordinator does it in two phases:
//!
//! 1. **prepare** — every shard replays the event batch onto its pinned
//!    graph, refreshes *its owned hubs* against the new graph, and
//!    stages the result at `target_epoch` without publishing. Serving
//!    continues on the old epoch throughout. Any prepare failure aborts
//!    the round on every shard — nothing was published, nothing changed.
//! 2. **commit** — every shard publishes its staged snapshot. Commits
//!    are idempotent-ish in effect: a shard that misses its commit stays
//!    one epoch behind, every pinned sub-request against it reports
//!    epoch skew, and the router degrades around it (and the health
//!    prober surfaces the lag via the stats op) until the shard is
//!    repaired — queries never silently mix epochs.

use fastppv_core::PpvStore;
use fastppv_graph::gen::EdgeEvent;
use fastppv_server::net::prepare_from_events;
use fastppv_server::ShardRefresh;

use crate::backend::{BackendError, LocalBackend, TcpBackend};

/// Update-coordination surface of a backend (separate from
/// [`crate::SubBackend`]: query routing works against clusters whose
/// updates are coordinated elsewhere).
pub trait UpdateBackend: Sync {
    /// Number of shards.
    fn num_shards(&self) -> usize;

    /// The shard's current serving epoch.
    fn epoch(&self, shard: usize) -> Result<u64, BackendError>;

    /// Phase one on one shard. Outer error: the shard was unreachable;
    /// inner: it refused to stage.
    fn prepare(
        &self,
        shard: usize,
        target_epoch: u64,
        events: &[EdgeEvent],
    ) -> Result<Result<(), String>, BackendError>;

    /// Phase two on one shard.
    fn commit(&self, shard: usize, target_epoch: u64) -> Result<Result<(), String>, BackendError>;

    /// Discards the shard's staged snapshot.
    fn abort(&self, shard: usize) -> Result<Result<(), String>, BackendError>;
}

impl UpdateBackend for TcpBackend {
    fn num_shards(&self) -> usize {
        crate::SubBackend::num_shards(self)
    }

    fn epoch(&self, shard: usize) -> Result<u64, BackendError> {
        self.probe(shard).map(|s| s.epoch)
    }

    fn prepare(
        &self,
        shard: usize,
        target_epoch: u64,
        events: &[EdgeEvent],
    ) -> Result<Result<(), String>, BackendError> {
        self.update_prepare(shard, target_epoch, events)
    }

    fn commit(&self, shard: usize, target_epoch: u64) -> Result<Result<(), String>, BackendError> {
        self.update_commit(shard, target_epoch)
    }

    fn abort(&self, shard: usize) -> Result<Result<(), String>, BackendError> {
        self.update_abort(shard)
    }
}

impl<S: PpvStore + ShardRefresh + Send + Sync> UpdateBackend for LocalBackend<S> {
    fn num_shards(&self) -> usize {
        crate::SubBackend::num_shards(self)
    }

    fn epoch(&self, shard: usize) -> Result<u64, BackendError> {
        Ok(self.service(shard).epoch())
    }

    fn prepare(
        &self,
        shard: usize,
        target_epoch: u64,
        events: &[EdgeEvent],
    ) -> Result<Result<(), String>, BackendError> {
        Ok(prepare_from_events(
            self.service(shard),
            target_epoch,
            events,
        ))
    }

    fn commit(&self, shard: usize, target_epoch: u64) -> Result<Result<(), String>, BackendError> {
        Ok(self.service(shard).commit_update(target_epoch))
    }

    fn abort(&self, shard: usize) -> Result<Result<(), String>, BackendError> {
        self.service(shard).abort_update();
        Ok(Ok(()))
    }
}

/// Why a publish round failed.
#[derive(Clone, Debug)]
pub enum PublishError {
    /// A prepare failed; the round was aborted everywhere and **no shard
    /// changed epoch**.
    Prepare {
        /// The shard that failed phase one.
        shard: usize,
        /// Why.
        message: String,
    },
    /// Some commits failed after every prepare succeeded. The listed
    /// shards are one epoch behind: pinned sub-requests against them
    /// skew, so the router serves degraded (never mixed-epoch) answers
    /// until they are repaired.
    Commit {
        /// Shards stuck on the old epoch, with reasons.
        failures: Vec<(usize, String)>,
    },
}

impl std::fmt::Display for PublishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PublishError::Prepare { shard, message } => {
                write!(
                    f,
                    "prepare failed on shard {shard} (round aborted): {message}"
                )
            }
            PublishError::Commit { failures } => {
                write!(f, "commit failed on {} shard(s):", failures.len())?;
                for (shard, message) in failures {
                    write!(f, " [{shard}] {message};")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for PublishError {}

/// Highest epoch any reachable shard reports (`None` when none answer).
/// Shards normally agree; a lagging shard after a partial commit reports
/// lower and is the repair target.
pub fn cluster_epoch<B: UpdateBackend>(backend: &B) -> Option<u64> {
    (0..backend.num_shards())
        .filter_map(|s| backend.epoch(s).ok())
        .max()
}

/// Per-shard prepare outcomes: each shard index paired with the transport
/// result of that shard's own accept/refuse answer.
pub(crate) type PrepareOutcomes = Vec<(usize, Result<Result<(), String>, BackendError>)>;

/// Runs one two-phase publish: prepare `events` at `target_epoch` on
/// every shard (in parallel — a prepare refreshes that shard's owned
/// hubs, the expensive part), abort everywhere if any prepare fails,
/// else commit everywhere.
pub fn two_phase_publish<B: UpdateBackend>(
    backend: &B,
    target_epoch: u64,
    events: &[EdgeEvent],
) -> Result<(), PublishError> {
    let n = backend.num_shards();
    let prepared: PrepareOutcomes = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|s| scope.spawn(move || (s, backend.prepare(s, target_epoch, events))))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("prepare worker panicked"))
            .collect()
    });
    for (shard, outcome) in &prepared {
        let message = match outcome {
            Ok(Ok(())) => continue,
            Ok(Err(msg)) => msg.clone(),
            Err(e) => e.to_string(),
        };
        // Roll back best-effort: staged snapshots hold memory, and a
        // stale staging would poison the next round's prepare.
        for s in 0..n {
            let _ = backend.abort(s);
        }
        return Err(PublishError::Prepare {
            shard: *shard,
            message,
        });
    }
    let mut failures = Vec::new();
    for shard in 0..n {
        match backend.commit(shard, target_epoch) {
            Ok(Ok(())) => {}
            Ok(Err(msg)) => failures.push((shard, msg)),
            Err(e) => failures.push((shard, e.to_string())),
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(PublishError::Commit { failures })
    }
}
