//! # FastPPV router — fault-tolerant scatter/gather over sharded indexes
//!
//! The paper's online phase (§5.2) assembles a query's answer as
//! `prime PPV + Σ increments`, where each increment expands the current
//! border hubs against the prime-PPV index. That sum is associative over
//! *which store held each hub's prime PPV* — so the index can be sliced
//! across shards by hub ownership ([`fastppv_cluster::ShardMap`]) and the
//! increment reassembled by a stateless front-end:
//!
//! * **scatter** — iteration 0 comes from one shard
//!   ([`fastppv_server::QueryService::prime0`]); each later iteration
//!   partitions the δ-filtered frontier by hub owner and sends every shard
//!   only the sublist it owns (`OP_EXPAND`);
//! * **gather** — per-shard partial entries, frontier contributions, and
//!   increment mass are merged in ascending shard order, reproducing the
//!   single-process [`fastppv_core`] iteration up to floating-point
//!   reassociation (the exactness oracle in `tests/` pins ≤ 1e-12);
//! * **certify** — the covered-mass ledger is summed router-side, so
//!   `φ = (1 − covered)⁺` stays the paper's exact self-certifying L1
//!   bound *even when shards are missing*: an unexpanded sublist simply
//!   never grows `covered`, inflating φ by exactly the unconverted border
//!   mass. Degraded answers are true answers with honest error bars.
//!
//! Robustness around that core:
//!
//! * a per-shard **health state machine** ([`health`]) — Up → Suspect →
//!   Down on consecutive failures, with a circuit breaker and capped
//!   exponential backoff before half-open retries, fed by both request
//!   outcomes and a background `OP_STATS` prober;
//! * **hedged sub-requests** ([`backend`]) — a straggling shard's
//!   sub-request is duplicated on a fresh connection after a p99-based
//!   delay; the first response wins, and per-connection request-id echo
//!   validation keeps a late loser from ever being mis-credited;
//! * **graceful degradation** ([`merge`]) — a Down shard's sublist is
//!   dropped (φ inflates to cover it) and the answer is flagged
//!   `degraded`; an accuracy target made unattainable by dead shards is
//!   shed with `Overloaded{retry_after}` instead of silently missed;
//! * a **two-phase publish barrier** ([`publish`]) — prepare the next
//!   epoch on every shard, then commit; queries pin the epoch of their
//!   iteration 0 and retry once on skew, so cross-shard merges never mix
//!   epochs.
//!
//! The TCP front-end ([`server`]) speaks the same length-prefixed
//! protocol as a single `fastppv serve` process — clients connect to the
//! router unchanged.

pub mod backend;
pub mod health;
pub mod merge;
pub mod publish;
pub mod server;

pub use backend::{BackendError, LocalBackend, ProberHandle, TcpBackend, TcpBackendOptions};
pub use health::{Health, HealthBoard, HealthOptions, ShardHealth};
pub use merge::{merge_query, MergeError, MergedAnswer, RouterConfig, SubBackend};
pub use publish::{cluster_epoch, two_phase_publish, PublishError, UpdateBackend};
pub use server::{serve_router, Router, RouterOptions, RouterServer};
