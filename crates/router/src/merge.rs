//! Scatter/gather reassembly of the scheduled-approximation loop.
//!
//! [`merge_query`] replays [`fastppv_core`]'s incremental query across
//! shards: iteration 0 (`prime0`) comes from one shard — the hub owner
//! when it is alive, any live shard otherwise (non-owners compute prime
//! PPVs on the fly, so the fallback answer is still certified) — and
//! each later iteration partitions the δ-filtered frontier by hub owner
//! and merges the per-shard [`WireExpand`] partials in ascending shard
//! order. The covered-mass ledger is summed router-side in the same
//! order as `IncrementalState`, so `φ = (1 − covered)⁺` is the paper's
//! exact self-certifying L1 bound over exactly the mass that was
//! actually merged:
//!
//! * every shard answered → bit-deterministic merge, equal to the
//!   single-process answer up to floating-point reassociation;
//! * a shard was skipped → its sublist's border mass never converts to
//!   covered mass, φ inflates by exactly that amount, and the answer is
//!   flagged `degraded` — a *true* partial answer with an honest bound,
//!   never a silently wrong one.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use fastppv_cluster::ShardMap;
use fastppv_core::query::StoppingCondition;
use fastppv_graph::{NodeId, ScoreScratch};
use fastppv_server::net::{SubReply, WireExpand, WirePrime0};

use crate::backend::BackendError;

/// The shard-side operations the merge loop scatters over. Implemented
/// by [`crate::backend::TcpBackend`] (remote shards, hedged) and
/// [`crate::backend::LocalBackend`] (in-process shards, for tests and
/// single-machine serving).
pub trait SubBackend: Sync {
    /// Number of shards addressed by this backend (must equal the shard
    /// map's).
    fn num_shards(&self) -> usize;

    /// Iteration 0 of `query` from `shard`, pinned to `expect_epoch`
    /// (`None` = whatever the shard serves).
    fn prime0(
        &self,
        shard: usize,
        query: NodeId,
        expect_epoch: Option<u64>,
    ) -> Result<SubReply<WirePrime0>, BackendError>;

    /// One shard's slice of one increment: expand the frontier hubs this
    /// shard owns (`sublist`, ascending hub id, merged masses).
    fn expand(
        &self,
        shard: usize,
        sublist: &[(NodeId, f64)],
        expect_epoch: Option<u64>,
    ) -> Result<SubReply<WireExpand>, BackendError>;
}

/// What the router must know about the cluster's index to merge
/// correctly: the scheduling threshold δ (frontier filter), the
/// teleport α (the trivial tour added at the query), and the node count
/// (entry validation). Discovered from shard hellos at startup.
#[derive(Clone, Copy, Debug)]
pub struct RouterConfig {
    /// Teleport probability α of the index.
    pub alpha: f64,
    /// Scheduling threshold δ: frontier hubs at or below it are never
    /// expanded.
    pub delta: f64,
    /// Number of graph nodes (every shard holds the full graph).
    pub num_nodes: usize,
}

/// A reassembled answer.
#[derive(Clone, Debug)]
pub struct MergedAnswer {
    /// The query node.
    pub query: NodeId,
    /// The merged PPV estimate, ascending node id (entry-wise lower
    /// bound on the exact PPV).
    pub scores: Vec<(NodeId, f64)>,
    /// Certified L1 error φ of the estimate — exact for clean merges,
    /// honestly inflated when shards were skipped.
    pub l1_error: f64,
    /// Increments merged beyond iteration 0.
    pub iterations: usize,
    /// Whether the frontier truly emptied (never set on degraded
    /// answers: a dropped sublist means the frontier did *not* empty).
    pub exhausted: bool,
    /// Whether any expansion sublist was dropped because its owner shard
    /// was down or refused. φ already accounts for the loss.
    pub degraded: bool,
    /// The epoch every merged partial was pinned to.
    pub epoch: u64,
    /// Shards that failed a sub-request during this merge (includes
    /// prime-0 fallbacks that did not degrade the answer).
    pub shards_skipped: Vec<usize>,
    /// Wall-clock time of the merge.
    pub elapsed: Duration,
}

/// Why a merge produced no answer at all.
#[derive(Clone, Debug)]
pub enum MergeError {
    /// No shard could serve iteration 0.
    AllShardsDown,
    /// Shards moved epochs mid-merge twice in a row (once is retried
    /// internally).
    EpochSkew,
    /// A shard refused the query or violated the protocol; not
    /// retryable.
    Shard(String),
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::AllShardsDown => write!(f, "no shard reachable for iteration 0"),
            MergeError::EpochSkew => write!(f, "cluster epoch moved twice mid-query"),
            MergeError::Shard(msg) => write!(f, "shard error: {msg}"),
        }
    }
}

/// Mirrors `StoppingCondition::met` (private in `fastppv-core`): any
/// satisfied limit stops, and a condition with no limit at all means
/// "iteration 0 only".
fn met(stop: &StoppingCondition, iterations_done: usize, l1_error: f64, elapsed: Duration) -> bool {
    if stop.max_iterations.is_some_and(|k| iterations_done >= k) {
        return true;
    }
    if stop.l1_target.is_some_and(|t| l1_error <= t) {
        return true;
    }
    if stop.time_limit.is_some_and(|l| elapsed >= l) {
        return true;
    }
    stop.max_iterations.is_none() && stop.l1_target.is_none() && stop.time_limit.is_none()
}

fn check_entries(
    entries: &[(NodeId, f64)],
    num_nodes: usize,
    what: &str,
) -> Result<(), MergeError> {
    for &(p, s) in entries {
        if (p as usize) >= num_nodes {
            return Err(MergeError::Shard(format!(
                "{what} entry node {p} out of range ({num_nodes} nodes)"
            )));
        }
        if !s.is_finite() || s < 0.0 {
            return Err(MergeError::Shard(format!(
                "{what} entry for node {p} has invalid score {s}"
            )));
        }
    }
    Ok(())
}

/// Scatters `query` across the cluster and gathers the merged, certified
/// answer. Epoch skew observed mid-merge (a two-phase commit landing
/// between iterations) is retried once from scratch before surfacing as
/// [`MergeError::EpochSkew`].
pub fn merge_query<B: SubBackend>(
    backend: &B,
    map: &ShardMap,
    cfg: &RouterConfig,
    query: NodeId,
    stop: &StoppingCondition,
    scratch: &mut ScoreScratch,
) -> Result<MergedAnswer, MergeError> {
    match merge_once(backend, map, cfg, query, stop, scratch) {
        Err(MergeError::EpochSkew) => merge_once(backend, map, cfg, query, stop, scratch),
        other => other,
    }
}

fn merge_once<B: SubBackend>(
    backend: &B,
    map: &ShardMap,
    cfg: &RouterConfig,
    query: NodeId,
    stop: &StoppingCondition,
    scratch: &mut ScoreScratch,
) -> Result<MergedAnswer, MergeError> {
    let started = Instant::now();
    if (query as usize) >= cfg.num_nodes {
        return Err(MergeError::Shard(format!(
            "query node {query} out of range ({} nodes)",
            cfg.num_nodes
        )));
    }
    let n_shards = map.num_shards() as usize;
    assert_eq!(
        backend.num_shards(),
        n_shards,
        "backend and shard map disagree on cluster size"
    );
    scratch.ensure_capacity(cfg.num_nodes);
    scratch.clear();

    // Iteration 0: the owner serves its stored (clipped) prime PPV; any
    // live shard is a correct fallback — non-owned queries are computed
    // on the fly from the shared graph.
    let owner = map.owner(query) as usize;
    let mut skipped: Vec<usize> = Vec::new();
    let mut prime0: Option<WirePrime0> = None;
    for i in 0..n_shards {
        let shard = (owner + i) % n_shards;
        match backend.prime0(shard, query, None) {
            Ok(SubReply::Ok(v)) => {
                prime0 = Some(v);
                break;
            }
            Ok(SubReply::Error(msg)) => return Err(MergeError::Shard(msg)),
            Err(BackendError::Protocol { shard, message }) => {
                return Err(MergeError::Shard(format!("shard {shard}: {message}")))
            }
            // An unpinned request cannot skew, but a shard mid-commit may
            // report it; treat like any transient failure and fall back.
            Ok(SubReply::EpochSkew { .. }) | Err(BackendError::ShardDown(_)) => {
                skipped.push(shard);
            }
        }
    }
    let Some(prime0) = prime0 else {
        return Err(MergeError::AllShardsDown);
    };
    check_entries(&prime0.entries, cfg.num_nodes, "prime0")?;
    check_entries(&prime0.frontier, cfg.num_nodes, "prime0 frontier")?;
    let epoch = prime0.epoch;

    // Replay IncrementalState::new's ledger order exactly: the prime-PPV
    // entries, then the trivial tour α at the query.
    let mut covered = 0.0;
    for &(p, s) in &prime0.entries {
        scratch.add(p, s);
        covered += s;
    }
    scratch.add(query, cfg.alpha);
    covered += cfg.alpha;

    let mut frontier: Vec<(NodeId, f64)> = prime0.frontier;
    let mut iterations = 0usize;
    let mut exhausted = false;
    let mut degraded = false;

    loop {
        let l1 = (1.0 - covered).max(0.0);
        if met(stop, iterations, l1, started.elapsed()) {
            break;
        }
        // δ-filter before partitioning (shards skip ≤ δ hubs anyway;
        // filtering here keeps exhaustion detection router-side).
        let live: Vec<(NodeId, f64)> = frontier
            .iter()
            .copied()
            .filter(|&(_, m)| m > cfg.delta)
            .collect();
        if live.is_empty() {
            // On a clean merge this is the single-process "frontier
            // emptied". After a dropped sublist it is not — the frontier
            // would have kept going — so stay un-exhausted and let φ
            // carry the loss.
            exhausted = !degraded;
            break;
        }
        // Partition by owner; the stable pass preserves ascending hub id
        // within each sublist (the order shard-side expansion requires).
        let mut sublists: Vec<Vec<(NodeId, f64)>> = vec![Vec::new(); n_shards];
        for &(h, m) in &live {
            sublists[map.owner(h) as usize].push((h, m));
        }
        let targets: Vec<usize> = (0..n_shards).filter(|&s| !sublists[s].is_empty()).collect();

        // Scatter: one sub-request per owning shard, concurrently. Each
        // backend call is individually bounded (health gate + hedging +
        // timeouts), so the join is too.
        let mut gathered: Vec<(usize, Result<SubReply<WireExpand>, BackendError>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = targets
                    .iter()
                    .map(|&s| {
                        let sublist = &sublists[s];
                        scope.spawn(move || (s, backend.expand(s, sublist, Some(epoch))))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("scatter worker panicked"))
                    .collect()
            });
        // Gather in ascending shard order — the fixed merge order that
        // makes the reassembled floating-point sums deterministic.
        gathered.sort_by_key(|&(s, _)| s);

        let mut next: BTreeMap<NodeId, f64> = BTreeMap::new();
        let mut expanded = 0usize;
        let mut dropped = false;
        for (shard, reply) in gathered {
            match reply {
                Ok(SubReply::Ok(x)) => {
                    check_entries(&x.entries, cfg.num_nodes, "expand")?;
                    check_entries(&x.frontier, cfg.num_nodes, "expand frontier")?;
                    for &(p, v) in &x.entries {
                        scratch.add(p, v);
                    }
                    covered += x.increment_mass;
                    for &(h, m) in &x.frontier {
                        *next.entry(h).or_insert(0.0) += m;
                    }
                    expanded += x.hubs_expanded as usize;
                }
                Ok(SubReply::EpochSkew { .. }) => return Err(MergeError::EpochSkew),
                Err(BackendError::Protocol { shard, message }) => {
                    return Err(MergeError::Shard(format!("shard {shard}: {message}")))
                }
                // A down or refusing owner drops its sublist: that border
                // mass stays unconverted, so φ inflates by exactly the
                // dropped amount and the answer is flagged degraded.
                Ok(SubReply::Error(_)) | Err(BackendError::ShardDown(_)) => {
                    dropped = true;
                    if !skipped.contains(&shard) {
                        skipped.push(shard);
                    }
                }
            }
        }
        if dropped {
            degraded = true;
        }
        if expanded == 0 {
            // Every owning shard dropped its sublist: the whole remaining
            // frontier is dead-owned and no further progress is possible
            // right now. Stop with the honestly inflated φ.
            break;
        }
        frontier = next.into_iter().collect();
        iterations += 1;
    }

    let l1_error = (1.0 - covered).max(0.0);
    Ok(MergedAnswer {
        query,
        scores: scratch.drain_sparse().into_entries(),
        l1_error,
        iterations,
        exhausted,
        degraded,
        epoch,
        shards_skipped: skipped,
        elapsed: started.elapsed(),
    })
}
