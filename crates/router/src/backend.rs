//! Shard backends: how the merge loop reaches shards.
//!
//! [`TcpBackend`] is the production path — per-shard connection pools
//! over the v3 protocol, gated by the [`crate::health`] state machine
//! and wrapped in **hedged sub-requests**: if a shard has not answered
//! within a p99-derived delay, the request is duplicated on a fresh
//! connection and the first response wins. Hedging can never
//! double-count mass: the merge takes exactly one reply per sub-request
//! slot, and each connection validates the echoed request id, so a late
//! loser is simply dropped with its connection.
//!
//! [`LocalBackend`] runs shards in-process (no sockets) with injectable
//! failures — the exactness oracle and fault-matrix tests drive the same
//! merge loop through it.

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use fastppv_core::PpvStore;
use fastppv_graph::NodeId;
use fastppv_server::net::{
    Client, ClientOptions, ServerHello, SubReply, WireExpand, WirePrime0, WireStats,
};
use fastppv_server::{QueryService, SubQueryError};
use parking_lot::Mutex;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::health::{HealthBoard, HealthOptions};
use crate::merge::SubBackend;

/// Why a sub-request produced no reply.
#[derive(Clone, Debug)]
pub enum BackendError {
    /// The shard's circuit breaker is open, or every attempt (including
    /// the hedge) failed or timed out.
    ShardDown(usize),
    /// The shard violated the protocol (wrong request id, malformed
    /// frame); not retryable.
    Protocol {
        /// Which shard misbehaved.
        shard: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::ShardDown(s) => write!(f, "shard {s} is down"),
            BackendError::Protocol { shard, message } => {
                write!(f, "shard {shard} protocol error: {message}")
            }
        }
    }
}

impl std::error::Error for BackendError {}

/// Knobs of a [`TcpBackend`].
#[derive(Clone, Copy, Debug)]
pub struct TcpBackendOptions {
    /// Socket timeouts for every shard connection.
    pub client: ClientOptions,
    /// Health state machine thresholds and breaker backoff.
    pub health: HealthOptions,
    /// Whether stragglers are hedged at all.
    pub hedge: bool,
    /// Hedge-delay floor: never duplicate a sub-request earlier than
    /// this, even when the shard's p99 is tiny.
    pub hedge_delay_floor: Duration,
    /// Hedge delay as a multiple of the shard's recent p99 sub-request
    /// latency (used once samples exist; the floor still applies).
    pub hedge_p99_factor: f64,
    /// Total wall-clock budget for one sub-request across both attempts.
    pub sub_request_timeout: Duration,
    /// Connections kept pooled per shard (excess completed connections
    /// are dropped).
    pub pool_per_shard: usize,
}

impl Default for TcpBackendOptions {
    fn default() -> Self {
        TcpBackendOptions {
            client: ClientOptions::default(),
            health: HealthOptions::default(),
            hedge: true,
            hedge_delay_floor: Duration::from_millis(20),
            hedge_p99_factor: 3.0,
            sub_request_timeout: Duration::from_secs(10),
            pool_per_shard: 8,
        }
    }
}

struct Inner {
    addrs: Vec<SocketAddr>,
    pools: Vec<Mutex<Vec<Client>>>,
    health: HealthBoard,
    options: TcpBackendOptions,
    hedges: AtomicU64,
}

impl Inner {
    fn take_pooled(&self, shard: usize) -> Option<Client> {
        self.pools.get(shard)?.lock().pop()
    }

    fn return_client(&self, shard: usize, client: Client) {
        let Some(pool) = self.pools.get(shard) else {
            return;
        };
        let mut pool = pool.lock();
        if pool.len() < self.options.pool_per_shard {
            pool.push(client);
        }
    }

    /// The address of `shard`, or a connect-style error for an
    /// out-of-range index (fail closed, never panic on a routing bug).
    fn addr(&self, shard: usize) -> io::Result<SocketAddr> {
        self.addrs.get(shard).copied().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("shard {shard} out of range ({} shards)", self.addrs.len()),
            )
        })
    }

    fn hedge_delay(&self, shard: usize) -> Duration {
        match self.health.p99(shard) {
            Some(p99) => p99
                .mul_f64(self.options.hedge_p99_factor)
                .max(self.options.hedge_delay_floor),
            None => self.options.hedge_delay_floor,
        }
    }
}

type Op<T> = Arc<dyn Fn(&mut Client) -> io::Result<T> + Send + Sync>;

/// One attempt on its own thread: take a pooled (or fresh) connection,
/// run the op, and report through the channel. A connection that
/// *completed* its round trip is back in sync and returns to the pool
/// even if it lost the hedge race; a failed connection is dropped.
fn spawn_attempt<T: Send + 'static>(
    inner: &Arc<Inner>,
    shard: usize,
    reuse_pool: bool,
    op: Op<T>,
    tx: mpsc::Sender<io::Result<T>>,
) {
    let inner = Arc::clone(inner);
    std::thread::spawn(move || {
        let client = match if reuse_pool {
            inner.take_pooled(shard)
        } else {
            None
        } {
            Some(c) => Ok(c),
            None => inner
                .addr(shard)
                .and_then(|addr| Client::connect_with(addr, inner.options.client)),
        };
        let mut client = match client {
            Ok(c) => c,
            Err(e) => {
                let _ = tx.send(Err(e));
                return;
            }
        };
        match op(&mut client) {
            Ok(t) => {
                inner.return_client(shard, client);
                let _ = tx.send(Ok(t));
            }
            Err(e) => {
                let _ = tx.send(Err(e));
            }
        }
    });
}

/// Remote shards over TCP: pooled connections, health gating, hedging.
/// Cheap to clone (shared state) — the background prober and the serving
/// path hold the same backend.
#[derive(Clone)]
pub struct TcpBackend {
    inner: Arc<Inner>,
}

impl TcpBackend {
    /// A backend over one address per shard. No connections are opened
    /// yet; pools fill lazily as sub-requests complete.
    pub fn new(addrs: Vec<SocketAddr>, options: TcpBackendOptions) -> Self {
        assert!(!addrs.is_empty(), "a cluster needs at least one shard");
        assert!(options.hedge_p99_factor >= 1.0, "hedge factor below 1");
        assert!(
            !options.sub_request_timeout.is_zero(),
            "sub-request timeout must be positive"
        );
        let pools = (0..addrs.len()).map(|_| Mutex::new(Vec::new())).collect();
        let health = HealthBoard::new(addrs.len(), options.health);
        TcpBackend {
            inner: Arc::new(Inner {
                addrs,
                pools,
                health,
                options,
                hedges: AtomicU64::new(0),
            }),
        }
    }

    /// The shard health registry (shared with the prober).
    pub fn health(&self) -> &HealthBoard {
        &self.inner.health
    }

    /// Shard addresses, in shard-id order.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.inner.addrs
    }

    /// Hedged sub-requests issued so far.
    pub fn hedges_sent(&self) -> u64 {
        self.inner.hedges.load(Ordering::Relaxed)
    }

    /// First reachable shard's hello — how a stateless router discovers
    /// the cluster's node count, α, δ, and current epoch.
    pub fn discover_hello(&self) -> Result<ServerHello, BackendError> {
        let mut last = 0;
        for shard in 0..self.inner.addrs.len() {
            last = shard;
            match self.single_attempt(
                shard,
                &(Arc::new(|c: &mut Client| Ok(*c.hello())) as Op<ServerHello>),
            ) {
                Ok(h) => return Ok(h),
                Err(_) => continue,
            }
        }
        Err(BackendError::ShardDown(last))
    }

    /// One `OP_STATS` round trip against a shard, feeding the health
    /// machine — the background prober's body, also usable directly.
    pub fn probe(&self, shard: usize) -> Result<WireStats, BackendError> {
        self.single_attempt(
            shard,
            &(Arc::new(|c: &mut Client| c.stats()) as Op<WireStats>),
        )
    }

    /// Two-phase update, phase one: stage `events` at `target_epoch`.
    pub fn update_prepare(
        &self,
        shard: usize,
        target_epoch: u64,
        events: &[fastppv_graph::gen::EdgeEvent],
    ) -> Result<Result<(), String>, BackendError> {
        let events = events.to_vec();
        self.single_attempt(
            shard,
            &(Arc::new(move |c: &mut Client| c.update_prepare(target_epoch, &events))
                as Op<Result<(), String>>),
        )
    }

    /// Two-phase update, phase two: publish the staged epoch.
    pub fn update_commit(
        &self,
        shard: usize,
        target_epoch: u64,
    ) -> Result<Result<(), String>, BackendError> {
        self.single_attempt(
            shard,
            &(Arc::new(move |c: &mut Client| c.update_commit(target_epoch))
                as Op<Result<(), String>>),
        )
    }

    /// Discards a shard's staged snapshot.
    pub fn update_abort(&self, shard: usize) -> Result<Result<(), String>, BackendError> {
        self.single_attempt(
            shard,
            &(Arc::new(|c: &mut Client| c.update_abort()) as Op<Result<(), String>>),
        )
    }

    /// Starts a background thread probing every shard's stats op at
    /// roughly `interval` (jittered per round so a fleet of routers never
    /// synchronizes its probes). Probing respects each shard's breaker —
    /// a Down shard is only touched once its backoff window expires — so
    /// recovery is detected even when no client traffic flows.
    pub fn spawn_prober(&self, interval: Duration) -> ProberHandle {
        assert!(!interval.is_zero(), "probe interval must be positive");
        let backend = self.clone();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let mut rng = ChaCha8Rng::seed_from_u64(0x9E37_79B9_7F4A_7C15);
        let handle = std::thread::Builder::new()
            .name("fastppv-prober".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::Acquire) {
                    for shard in 0..backend.num_shards() {
                        if stop_flag.load(Ordering::Acquire) {
                            return;
                        }
                        let _ = backend.probe(shard);
                    }
                    // Sleep in [interval, 1.5·interval), in short slices
                    // so shutdown is prompt.
                    let nap = interval + interval.mul_f64(rng.gen::<f64>() * 0.5);
                    let deadline = Instant::now() + nap;
                    while Instant::now() < deadline && !stop_flag.load(Ordering::Acquire) {
                        std::thread::sleep(Duration::from_millis(25).min(nap));
                    }
                }
            })
            .expect("spawn prober thread");
        ProberHandle {
            stop,
            handle: Some(handle),
        }
    }

    /// A single non-hedged attempt (probes and update phases, where
    /// duplication would be wrong), still feeding the health machine.
    fn single_attempt<T: Send + 'static>(
        &self,
        shard: usize,
        op: &Op<T>,
    ) -> Result<T, BackendError> {
        let inner = &self.inner;
        if !inner.health.allow(shard, Instant::now()) {
            return Err(BackendError::ShardDown(shard));
        }
        let started = Instant::now();
        let client = match inner.take_pooled(shard) {
            Some(c) => Ok(c),
            None => inner
                .addr(shard)
                .and_then(|addr| Client::connect_with(addr, inner.options.client)),
        };
        let outcome = client.and_then(|mut c| {
            op(&mut c).inspect(|_| {
                inner.return_client(shard, c);
            })
        });
        match outcome {
            Ok(t) => {
                inner.health.on_success(shard, started.elapsed());
                Ok(t)
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                inner.health.on_failure(shard, Instant::now());
                Err(BackendError::Protocol {
                    shard,
                    message: e.to_string(),
                })
            }
            Err(_) => {
                inner.health.on_failure(shard, Instant::now());
                Err(BackendError::ShardDown(shard))
            }
        }
    }

    /// Runs `op` against a shard with straggler hedging: the first
    /// attempt reuses a pooled connection; if no reply lands within the
    /// hedge delay (p99 × factor, floored), a duplicate runs on a fresh
    /// connection and the first reply wins. A failed first attempt
    /// triggers the second immediately (fast retry). At most two
    /// attempts; the whole call is bounded by `sub_request_timeout`.
    fn hedged<T: Send + 'static>(&self, shard: usize, op: Op<T>) -> Result<T, BackendError> {
        let inner = &self.inner;
        if !inner.health.allow(shard, Instant::now()) {
            return Err(BackendError::ShardDown(shard));
        }
        let started = Instant::now();
        let total = inner.options.sub_request_timeout;
        let hedge_delay = inner.hedge_delay(shard);
        let (tx, rx) = mpsc::channel::<io::Result<T>>();
        spawn_attempt(inner, shard, true, Arc::clone(&op), tx.clone());
        let mut launched = 1u32;
        let mut failed = 0u32;
        loop {
            let elapsed = started.elapsed();
            if elapsed >= total {
                break;
            }
            if failed == launched {
                if launched >= 2 {
                    break;
                }
                // First attempt already failed: retry immediately on a
                // fresh connection instead of waiting for the hedge
                // timer.
                launched += 1;
                spawn_attempt(inner, shard, false, Arc::clone(&op), tx.clone());
                continue;
            }
            let wait = if launched < 2 && inner.options.hedge {
                hedge_delay.saturating_sub(elapsed).min(total - elapsed)
            } else {
                total - elapsed
            };
            match rx.recv_timeout(wait) {
                Ok(Ok(t)) => {
                    inner.health.on_success(shard, started.elapsed());
                    return Ok(t);
                }
                Ok(Err(e)) if e.kind() == io::ErrorKind::InvalidData => {
                    inner.health.on_failure(shard, Instant::now());
                    return Err(BackendError::Protocol {
                        shard,
                        message: e.to_string(),
                    });
                }
                Ok(Err(_)) => failed += 1,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if launched < 2 && inner.options.hedge && started.elapsed() >= hedge_delay {
                        launched += 1;
                        inner.hedges.fetch_add(1, Ordering::Relaxed);
                        spawn_attempt(inner, shard, false, Arc::clone(&op), tx.clone());
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        inner.health.on_failure(shard, Instant::now());
        Err(BackendError::ShardDown(shard))
    }
}

impl SubBackend for TcpBackend {
    fn num_shards(&self) -> usize {
        self.inner.addrs.len()
    }

    fn prime0(
        &self,
        shard: usize,
        query: NodeId,
        expect_epoch: Option<u64>,
    ) -> Result<SubReply<WirePrime0>, BackendError> {
        self.hedged(
            shard,
            Arc::new(move |c: &mut Client| c.prime0(query, expect_epoch)),
        )
    }

    fn expand(
        &self,
        shard: usize,
        sublist: &[(NodeId, f64)],
        expect_epoch: Option<u64>,
    ) -> Result<SubReply<WireExpand>, BackendError> {
        let sublist = sublist.to_vec();
        self.hedged(
            shard,
            Arc::new(move |c: &mut Client| c.expand(&sublist, expect_epoch)),
        )
    }
}

/// Stops and joins the prober thread on drop.
pub struct ProberHandle {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for ProberHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// In-process backend
// ---------------------------------------------------------------------------

/// In-process shards: the same [`SubBackend`] surface over a vector of
/// [`QueryService`]s, with per-shard kill switches. The exactness oracle
/// and the fault matrix drive the production merge loop through this —
/// no sockets, fully deterministic.
pub struct LocalBackend<S: PpvStore + Send + Sync> {
    shards: Vec<Arc<QueryService<S>>>,
    dead: Vec<AtomicBool>,
}

impl<S: PpvStore + Send + Sync> LocalBackend<S> {
    /// A backend over in-process shard services.
    pub fn new(shards: Vec<Arc<QueryService<S>>>) -> Self {
        let dead = (0..shards.len()).map(|_| AtomicBool::new(false)).collect();
        LocalBackend { shards, dead }
    }

    /// Simulates a crashed (or recovered) shard: while dead, every
    /// sub-request fails with [`BackendError::ShardDown`].
    pub fn set_dead(&self, shard: usize, dead: bool) {
        self.dead[shard].store(dead, Ordering::Release);
    }

    /// The underlying shard service (tests drive updates through it).
    pub fn service(&self, shard: usize) -> &Arc<QueryService<S>> {
        &self.shards[shard]
    }

    fn check_alive(&self, shard: usize) -> Result<(), BackendError> {
        // An out-of-range shard index is served exactly like a dead
        // shard: the scatter layer degrades instead of panicking.
        let dead = self.dead.get(shard).ok_or(BackendError::ShardDown(shard))?;
        if dead.load(Ordering::Acquire) {
            Err(BackendError::ShardDown(shard))
        } else {
            Ok(())
        }
    }
}

fn sub_failure<T>(e: SubQueryError) -> SubReply<T> {
    match e {
        SubQueryError::EpochSkew { current } => SubReply::EpochSkew { current },
        other => SubReply::Error(other.to_string()),
    }
}

impl<S: PpvStore + Send + Sync> SubBackend for LocalBackend<S> {
    fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn prime0(
        &self,
        shard: usize,
        query: NodeId,
        expect_epoch: Option<u64>,
    ) -> Result<SubReply<WirePrime0>, BackendError> {
        self.check_alive(shard)?;
        let service = self
            .shards
            .get(shard)
            .ok_or(BackendError::ShardDown(shard))?;
        Ok(match service.prime0(query, expect_epoch) {
            Ok((parts, epoch)) => SubReply::Ok(WirePrime0 {
                epoch,
                entries: parts.entries.clone(),
                frontier: parts.frontier.clone(),
            }),
            Err(e) => sub_failure(e),
        })
    }

    fn expand(
        &self,
        shard: usize,
        sublist: &[(NodeId, f64)],
        expect_epoch: Option<u64>,
    ) -> Result<SubReply<WireExpand>, BackendError> {
        self.check_alive(shard)?;
        let service = self
            .shards
            .get(shard)
            .ok_or(BackendError::ShardDown(shard))?;
        Ok(match service.expand(sublist, expect_epoch) {
            Ok(answer) => SubReply::Ok(WireExpand {
                epoch: answer.epoch,
                entries: answer.outcome.entries.entries().to_vec(),
                frontier: answer.outcome.frontier,
                increment_mass: answer.outcome.increment_mass,
                hubs_expanded: answer.outcome.hubs_expanded as u32,
            }),
            Err(e) => sub_failure(e),
        })
    }
}
