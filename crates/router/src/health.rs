//! Per-shard health: a three-state machine with a circuit breaker.
//!
//! Shards move `Up → Suspect → Down` on consecutive failures and snap
//! back to `Up` on any success. `Down` opens a circuit breaker: requests
//! fail fast (no socket touched) until a capped-exponential backoff
//! expires, at which point the shard goes *half-open* — one probe is let
//! through, and its outcome decides between `Up` and another, longer,
//! breaker window. The machine is pure (every transition takes an
//! explicit `Instant`), so unit tests drive it with synthetic clocks; the
//! TCP backend feeds it from request outcomes and the background
//! `OP_STATS` prober.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use fastppv_server::percentile;
use parking_lot::Mutex;

/// The observable health of one shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Health {
    /// Serving normally.
    Up,
    /// At least one recent failure (or half-open after a breaker window):
    /// still routed to, but one more bad streak opens the breaker.
    Suspect,
    /// The circuit breaker is open; requests fail fast until the backoff
    /// window expires.
    Down,
}

/// Thresholds and backoff shape of [`ShardHealth`].
#[derive(Clone, Copy, Debug)]
pub struct HealthOptions {
    /// Consecutive failures that open the circuit breaker (≥ 1).
    pub down_after: u32,
    /// First breaker window; doubles per re-opening.
    pub base_backoff: Duration,
    /// Breaker window ceiling.
    pub max_backoff: Duration,
}

impl Default for HealthOptions {
    fn default() -> Self {
        HealthOptions {
            down_after: 3,
            base_backoff: Duration::from_millis(250),
            max_backoff: Duration::from_secs(10),
        }
    }
}

impl HealthOptions {
    fn validate(&self) {
        assert!(self.down_after >= 1, "down_after must be at least 1");
        assert!(
            !self.base_backoff.is_zero(),
            "base backoff must be positive"
        );
        assert!(
            self.max_backoff >= self.base_backoff,
            "max backoff below base backoff"
        );
    }
}

/// The health state machine of a single shard. Pure: callers inject
/// `Instant`s, nothing here reads a clock.
#[derive(Clone, Debug)]
pub struct ShardHealth {
    options: HealthOptions,
    state: Health,
    consecutive_failures: u32,
    /// While `Down`: when the breaker half-opens.
    breaker_until: Option<Instant>,
    /// Set when a breaker window expired and the shard is probing: the
    /// next failure re-opens immediately instead of needing a new streak.
    half_open: bool,
    /// The *next* breaker window to use (grows while failures continue).
    backoff: Duration,
}

impl ShardHealth {
    /// A fresh shard starts `Up`.
    pub fn new(options: HealthOptions) -> Self {
        options.validate();
        ShardHealth {
            backoff: options.base_backoff,
            options,
            state: Health::Up,
            consecutive_failures: 0,
            breaker_until: None,
            half_open: false,
        }
    }

    /// Current state (without advancing the breaker clock).
    pub fn health(&self) -> Health {
        self.state
    }

    /// Consecutive failures since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Whether a request may be sent now. `Down` with an open breaker
    /// fails fast; an expired breaker half-opens the shard (→ `Suspect`)
    /// and admits the probe.
    pub fn allow(&mut self, now: Instant) -> bool {
        match self.state {
            Health::Up | Health::Suspect => true,
            Health::Down => {
                let until = self.breaker_until.expect("down shard has a breaker");
                if now < until {
                    return false;
                }
                // Half-open: let requests through to probe recovery; the
                // first failure re-opens the breaker immediately.
                self.state = Health::Suspect;
                self.half_open = true;
                self.breaker_until = None;
                true
            }
        }
    }

    /// A request (or probe) completed: snap to `Up`, reset the streak and
    /// the backoff ladder.
    pub fn on_success(&mut self) {
        self.state = Health::Up;
        self.consecutive_failures = 0;
        self.breaker_until = None;
        self.half_open = false;
        self.backoff = self.options.base_backoff;
    }

    /// A request (or probe) failed. A `down_after` streak — or any
    /// failure while half-open — opens the breaker until `now + backoff`,
    /// then doubles the backoff (capped).
    pub fn on_failure(&mut self, now: Instant) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        if self.half_open || self.consecutive_failures >= self.options.down_after {
            self.state = Health::Down;
            self.half_open = false;
            self.breaker_until = Some(now + self.backoff);
            self.backoff = (self.backoff * 2).min(self.options.max_backoff);
        } else {
            self.state = Health::Suspect;
        }
    }
}

/// How many latency samples each shard's ring retains for the hedge-delay
/// p99.
const LATENCY_WINDOW: usize = 256;

struct ShardEntry {
    health: ShardHealth,
    latencies: VecDeque<Duration>,
}

/// Shared health registry for a set of shards: the state machines plus a
/// recent-latency ring per shard (the hedge delay is derived from its
/// p99).
pub struct HealthBoard {
    shards: Vec<Mutex<ShardEntry>>,
}

impl HealthBoard {
    /// A board of `n` shards, all initially `Up`.
    pub fn new(n: usize, options: HealthOptions) -> Self {
        HealthBoard {
            shards: (0..n)
                .map(|_| {
                    Mutex::new(ShardEntry {
                        health: ShardHealth::new(options),
                        latencies: VecDeque::new(),
                    })
                })
                .collect(),
        }
    }

    /// Number of shards tracked.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the board tracks no shards.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// See [`ShardHealth::allow`].
    pub fn allow(&self, shard: usize, now: Instant) -> bool {
        self.shards[shard].lock().health.allow(now)
    }

    /// Records a completed sub-request and its latency.
    pub fn on_success(&self, shard: usize, latency: Duration) {
        let mut e = self.shards[shard].lock();
        e.health.on_success();
        if e.latencies.len() == LATENCY_WINDOW {
            e.latencies.pop_front();
        }
        e.latencies.push_back(latency);
    }

    /// Records a failed sub-request.
    pub fn on_failure(&self, shard: usize, now: Instant) {
        self.shards[shard].lock().health.on_failure(now);
    }

    /// Current state of one shard.
    pub fn health(&self, shard: usize) -> Health {
        self.shards[shard].lock().health.health()
    }

    /// Nearest-rank p99 over the shard's recent completed sub-requests
    /// (`None` until any sample exists).
    pub fn p99(&self, shard: usize) -> Option<Duration> {
        let e = self.shards[shard].lock();
        if e.latencies.is_empty() {
            return None;
        }
        let (a, b) = e.latencies.as_slices();
        let mut all: Vec<Duration> = Vec::with_capacity(e.latencies.len());
        all.extend_from_slice(a);
        all.extend_from_slice(b);
        Some(percentile(&all, 0.99))
    }

    /// Shards currently not `Down` (the breaker clock is not advanced).
    pub fn live_shards(&self) -> Vec<usize> {
        (0..self.shards.len())
            .filter(|&s| self.health(s) != Health::Down)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> HealthOptions {
        HealthOptions {
            down_after: 3,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(400),
        }
    }

    #[test]
    fn failures_walk_up_to_down_and_breaker_gates_requests() {
        let mut h = ShardHealth::new(opts());
        let t0 = Instant::now();
        assert_eq!(h.health(), Health::Up);
        h.on_failure(t0);
        assert_eq!(h.health(), Health::Suspect);
        h.on_failure(t0);
        assert_eq!(h.health(), Health::Suspect);
        h.on_failure(t0);
        // Third consecutive failure (down_after) opens the breaker.
        assert_eq!(h.health(), Health::Down);
        assert!(!h.allow(t0), "breaker must fail fast while open");
        assert!(!h.allow(t0 + Duration::from_millis(99)));
        // Breaker expires: half-open admits a probe.
        assert!(h.allow(t0 + Duration::from_millis(100)));
        assert_eq!(h.health(), Health::Suspect);
        // Probe succeeds: fully recovered, backoff ladder reset.
        h.on_success();
        assert_eq!(h.health(), Health::Up);
        assert_eq!(h.consecutive_failures(), 0);
    }

    #[test]
    fn backoff_doubles_per_reopening_and_caps() {
        let mut h = ShardHealth::new(opts());
        let mut t = Instant::now();
        // Open the breaker (streak of 3 from Up via down_after).
        h.on_failure(t);
        h.on_failure(t);
        h.on_failure(t); // Down, window 100ms, next 200ms
        for expect_ms in [200u64, 400, 400, 400] {
            // Wait out the current window, half-open, fail the probe.
            t += Duration::from_secs(3600);
            assert!(h.allow(t));
            h.on_failure(t);
            assert_eq!(h.health(), Health::Down);
            // The new window length is the previous backoff (doubled,
            // capped at 400ms).
            assert!(!h.allow(t + Duration::from_millis(expect_ms - 1)));
            assert!(h.allow(t + Duration::from_millis(expect_ms)));
            // allow() half-opened the shard; re-open for the next round is
            // driven by the loop's on_failure.
        }
        // Recovery resets the ladder to the base window.
        h.on_success();
        h.on_failure(t);
        h.on_failure(t);
        h.on_failure(t); // Down again
        assert!(!h.allow(t + Duration::from_millis(99)));
        assert!(h.allow(t + Duration::from_millis(100)));
    }

    #[test]
    fn board_tracks_latencies_and_live_set() {
        let board = HealthBoard::new(3, opts());
        assert_eq!(board.live_shards(), vec![0, 1, 2]);
        assert_eq!(board.p99(1), None);
        for ms in 1..=100u64 {
            board.on_success(1, Duration::from_millis(ms));
        }
        // Nearest-rank p99 over 1..=100 ms is the 99th sample.
        assert_eq!(board.p99(1), Some(Duration::from_millis(99)));
        let now = Instant::now();
        for _ in 0..3 {
            board.on_failure(2, now);
        }
        assert_eq!(board.health(2), Health::Down);
        assert_eq!(board.live_shards(), vec![0, 1]);
        assert!(!board.allow(2, now));
        board.on_success(2, Duration::from_millis(1));
        assert_eq!(board.live_shards(), vec![0, 1, 2]);
    }
}
