//! Length-prefixed binary TCP front-end for the query service.
//!
//! The stdin/stdout serving loop is fine for pipelines, but measuring tail
//! latency with queueing effects — and serving real remote traffic — needs
//! a socket. This module speaks a deliberately tiny protocol over TCP:
//! every message is one *frame* (`u32` little-endian payload length, then
//! the payload), the server greets each connection with a hello frame, and
//! after that the client sends request-batch frames and receives one
//! response-batch frame per request frame, answers in request order.
//!
//! ## Wire format (version 3, all integers little-endian)
//!
//! ```text
//! frame          := len:u32 payload[len]            (len ≤ 64 MiB)
//! hello          := magic:u32 ("FPPV" = 0x46505056) version:u16
//!                   num_nodes:u64 epoch:u64 alpha:f64 delta:f64
//!
//! -- every post-hello request frame starts with an op byte; the server
//! -- answers each frame with exactly one response frame (no op byte:
//! -- the protocol is strictly request→response in order, so the client
//! -- knows what to decode)
//!
//! op             := 0 query | 1 stats | 2 prime0 | 3 expand | 4 update
//!
//! -- op 0 (query): the classic batch protocol
//! request-batch  := count:u32 request*
//! request        := query:u32 top_k:u32 deadline_ms:u32 stop
//!                   -- top_k 0 returns the full score vector
//!                   -- deadline_ms 0xFFFF_FFFF means "no deadline";
//!                      otherwise a *relative* budget in milliseconds from
//!                      server receipt (an absolute `Instant` does not
//!                      serialize; queue wait counts against it)
//! stop           := 0:u8 eta:u32                    (iteration budget η)
//!                 | 1:u8 l1_target:f64              (accuracy target φ)
//! response-batch := count:u32 response*
//! response       := 0:u8 answer
//!                 | 1:u8 msg_len:u32 msg[msg_len]
//!                 | 2:u8 retry_after_ms:u32          (overloaded: shed)
//! answer         := query:u32 iterations:u32 l1_error:f64 exhausted:u8
//!                   cached:u8 degraded:u8 latency_ns:u64
//!                   n:u32 (node:u32 score:f64)*n
//!
//! -- op 1 (stats): health probe, empty request body
//! stats-response := in_flight:u64 recent_p99_ns:u64 degraded:u64
//!                   shed:u64 epoch:u64
//!
//! -- op 2 (prime0): iteration 0 of a scattered query
//! prime0-request := request_id:u64 expect_epoch:u64 query:u32
//!                   -- expect_epoch 0xFFFF…FF ("any") skips the pin
//! sub-response   := request_id:u64 status
//! status         := 0:u8 ok-body
//!                 | 1:u8 current_epoch:u64           (epoch skew)
//!                 | 2:u8 msg_len:u32 msg[msg_len]    (error)
//! prime0-ok      := epoch:u64 n:u32 (node:u32 score:f64)*n
//!                   m:u32 (hub:u32 mass:f64)*m       (border frontier)
//!
//! -- op 3 (expand): one shard's slice of one increment step
//! expand-request := request_id:u64 expect_epoch:u64
//!                   m:u32 (hub:u32 mass:f64)*m       (ascending hub id)
//! expand-ok      := epoch:u64 n:u32 (node:u32 score:f64)*n
//!                   m:u32 (hub:u32 mass:f64)*m
//!                   increment_mass:f64 hubs_expanded:u32
//!
//! -- op 4 (update): two-phase coordinated publish
//! update-request := phase:u8 target_epoch:u64 events?
//!                   -- phase 0 prepare (carries events), 1 commit, 2 abort
//! events         := k:u32 (insert:u8 tail:u32 head:u32)*k
//! update-response:= 0:u8                             (ok)
//!                 | 1:u8 msg_len:u32 msg[msg_len]    (refused)
//! ```
//!
//! Version 2 added the `degraded` flag (the server capped the stopping
//! condition under load; `l1_error` is still the certified φ of what was
//! computed) and the `Overloaded` response (tag 2): a request shed past
//! the high-water mark fails fast with a positive retry hint instead of
//! queueing. See [`crate::service::OverloadOptions`].
//!
//! Version 3 made request frames op-tagged and added the scatter/gather
//! sub-ops a shard cluster needs: `stats` (router health probes),
//! `prime0`/`expand` (per-shard halves of a distributed FastPPV query,
//! epoch-pinned so a merge never mixes graph versions, request-id-echoed
//! so a hedged retry can never be credited to the wrong request), and
//! `update` (two-phase epoch barrier: prepare stages the refreshed store
//! without publishing, commit flips every shard in lockstep). The hello
//! now announces the serving epoch and the α/δ the stored index was
//! built with, so a stateless router can configure itself entirely from
//! its backends.
//!
//! A malformed frame closes the connection; a *well-formed* request for an
//! out-of-range node gets a per-request error response (the connection —
//! and the batch's other requests — are unaffected). Validation happens
//! against the same pinned snapshot the batch executes on, so a
//! concurrently published update can never turn a validated id into a
//! panic.
//!
//! ## Robustness
//!
//! The server enforces a *frame-stall* timeout ([`NetOptions`]): a
//! connection may idle indefinitely **between** frames, but once the
//! first byte of a frame has arrived the rest must keep flowing — a
//! slow-loris peer that trickles a frame one byte a minute is
//! disconnected instead of pinning a connection thread. The client side
//! sets connect/read/write timeouts ([`ClientOptions`]) so a dead or
//! SIGSTOPped server surfaces as a typed [`ClientError::Timeout`] rather
//! than a hang, and [`ResilientClient`] layers `retry_after`-aware
//! exponential backoff with jitter and bounded reconnect on top.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fastppv_core::query::StoppingCondition;
use fastppv_core::PpvStore;
use fastppv_graph::gen::{apply_event, EdgeEvent};
use fastppv_graph::{Graph, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::service::{QueryService, Request, Response, ShardRefresh, SubQueryError};

/// Wire constants, re-exported from the workspace constant registry
/// under their historical public names. Protocol version history:
/// version 2 added the per-answer `degraded` flag and the `Overloaded`
/// response tag (accuracy shedding under load); version 3 op-tagged
/// request frames and added the scatter/gather sub-ops (`stats`,
/// `prime0`, `expand`, `update`) plus the extended hello (epoch, α, δ).
pub use fastppv_core::protocol_consts::{
    EPOCH_ANY, NET_MAGIC as MAGIC, OP_EXPAND, OP_PRIME0, OP_QUERY, OP_STATS, OP_UPDATE,
    PROTOCOL_VERSION,
};
/// Upper bound on a frame payload; larger frames are a protocol error.
pub const MAX_FRAME_BYTES: usize = 64 << 20;
/// Upper bound on requests per batch frame (a protocol error beyond it).
/// Bounds the worst-case response: even a batch of all-error responses
/// stays far below [`MAX_FRAME_BYTES`], and a batch whose *answers*
/// overflow the frame cap degrades into per-request errors instead of
/// killing the connection (see [`serve`]).
pub const MAX_BATCH_REQUESTS: usize = 1 << 16;
/// Concurrent connections the server accepts; beyond it new connections
/// are closed before the hello frame (admission control — each connection
/// gets a thread, and each in-flight batch its own scoped worker set, so
/// the cap bounds total threads).
pub const MAX_CONNECTIONS: usize = 1024;
/// `deadline_ms` sentinel for "no deadline".
const NO_DEADLINE: u32 = u32::MAX;

/// Per-request stopping condition on the wire.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WireStop {
    /// Run exactly this many increments (η).
    Iterations(u32),
    /// Iterate until the guaranteed L1 error φ falls below the target.
    L1Error(f64),
}

/// One query as sent by a client.
#[derive(Clone, Copy, Debug)]
pub struct WireRequest {
    /// The query node.
    pub query: NodeId,
    /// When to stop iterating.
    pub stop: WireStop,
    /// Relative deadline in milliseconds from server receipt (`None` = no
    /// deadline). Queue wait on the server counts against it.
    pub deadline_ms: Option<u32>,
    /// How many top entries to return; 0 returns the full score vector.
    pub top_k: u32,
}

impl WireRequest {
    /// A request running exactly `eta` increments, returning the full
    /// score vector.
    pub fn iterations(query: NodeId, eta: u32) -> Self {
        WireRequest {
            query,
            stop: WireStop::Iterations(eta),
            deadline_ms: None,
            top_k: 0,
        }
    }

    /// A request running until `φ ≤ target`.
    pub fn l1_error(query: NodeId, target: f64) -> Self {
        WireRequest {
            query,
            stop: WireStop::L1Error(target),
            deadline_ms: None,
            top_k: 0,
        }
    }

    /// Caps the response to the `k` highest-scoring entries.
    pub fn with_top_k(mut self, k: u32) -> Self {
        self.top_k = k;
        self
    }

    /// Adds a relative deadline in milliseconds from server receipt.
    pub fn with_deadline_ms(mut self, ms: u32) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    fn to_request(self, received: Instant) -> Request {
        let stop = match self.stop {
            WireStop::Iterations(eta) => StoppingCondition::iterations(eta as usize),
            WireStop::L1Error(target) => StoppingCondition::l1_error(target),
        };
        Request {
            query: self.query,
            stop,
            deadline: self
                .deadline_ms
                .map(|ms| received + Duration::from_millis(ms as u64)),
        }
    }
}

/// A served answer as decoded by a client.
#[derive(Clone, Debug)]
pub struct WireAnswer {
    /// The query node.
    pub query: NodeId,
    /// Increments run beyond iteration 0.
    pub iterations: u32,
    /// Accuracy-aware L1 error φ of the estimate.
    pub l1_error: f64,
    /// Whether the expansion frontier emptied.
    pub exhausted: bool,
    /// Whether the server's hot-PPV cache served this answer.
    pub cached: bool,
    /// Whether the server capped this request's stopping condition under
    /// load. `l1_error` is still the certified φ of what was computed.
    pub degraded: bool,
    /// Server-side service latency (queue wait within the batch included).
    pub latency: Duration,
    /// Score entries: the full vector (ascending node id) when the request
    /// asked `top_k = 0`, else the `top_k` best scores in descending order.
    pub entries: Vec<(NodeId, f64)>,
}

/// One per-request outcome in a response batch.
#[derive(Clone, Debug)]
pub enum WireResponse {
    /// The query was served.
    Answer(WireAnswer),
    /// The request was rejected (e.g. node out of range); the rest of the
    /// batch is unaffected.
    Error(String),
    /// The request was shed: the server is past its overload high-water
    /// mark and rejected it *before* queueing. Back off for at least
    /// `retry_after_ms` (always positive) before retrying.
    Overloaded {
        /// Server-suggested minimum backoff in milliseconds (> 0).
        retry_after_ms: u32,
    },
}

impl WireResponse {
    /// The answer, if the request was served.
    pub fn answer(&self) -> Option<&WireAnswer> {
        match self {
            WireResponse::Answer(a) => Some(a),
            _ => None,
        }
    }

    /// The rejection message, if the request failed.
    pub fn error(&self) -> Option<&str> {
        match self {
            WireResponse::Error(e) => Some(e),
            _ => None,
        }
    }

    /// The retry hint, if the request was shed under overload.
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            WireResponse::Overloaded { retry_after_ms } => {
                Some(Duration::from_millis(*retry_after_ms as u64))
            }
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Encoding / decoding
// ---------------------------------------------------------------------------

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// The server went away cleanly between request and response. This is a
/// *connection* failure (`ConnectionAborted` — a crashed or restarting
/// peer, retryable on a fresh connection), never a protocol violation:
/// the router's hedging layer treats `InvalidData` as non-retryable
/// misbehavior, and a SIGKILLed shard must not be classified as that.
fn closed_mid_request() -> io::Error {
    io::Error::new(
        io::ErrorKind::ConnectionAborted,
        "server closed mid-request",
    )
}

/// Bounds-checked little-endian reader over a frame payload.
struct Payload<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Payload<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Payload { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| bad_data("truncated frame payload"))?;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| bad_data("truncated frame payload"))?;
        self.pos = end;
        Ok(slice)
    }

    fn array<const N: usize>(&mut self) -> io::Result<[u8; N]> {
        self.take(N)?
            .try_into()
            .map_err(|_| bad_data("truncated frame payload"))
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(u8::from_le_bytes(self.array()?))
    }

    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn finish(self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(bad_data(format!(
                "{} trailing bytes after frame payload",
                self.buf.len() - self.pos
            )))
        }
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// Writes one length-prefixed frame and flushes. Public for the router
/// front-end, which speaks the same protocol on its client side.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    assert!(payload.len() <= MAX_FRAME_BYTES, "oversized outgoing frame");
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on a clean EOF at a frame boundary.
fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(bad_data(format!("frame of {len} bytes exceeds the cap")));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// What a server announces at connect time. A stateless router configures
/// itself entirely from this: the graph size (request validation), the
/// serving epoch (scatter pinning), and the α/δ the stored index was
/// built with (merge arithmetic must match them bit-for-bit).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServerHello {
    /// Number of graph nodes.
    pub num_nodes: u64,
    /// Serving epoch at connect time (may advance; sub-op responses carry
    /// the authoritative epoch).
    pub epoch: u64,
    /// Teleport probability α of the stored index.
    pub alpha: f64,
    /// Hub-expansion threshold δ of the stored index.
    pub delta: f64,
}

/// Encodes the server hello frame (shared by shards and the router).
pub fn encode_hello(hello: &ServerHello) -> Vec<u8> {
    let mut buf = Vec::with_capacity(38);
    put_u32(&mut buf, MAGIC);
    buf.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    put_u64(&mut buf, hello.num_nodes);
    put_u64(&mut buf, hello.epoch);
    put_f64(&mut buf, hello.alpha);
    put_f64(&mut buf, hello.delta);
    buf
}

fn decode_hello(payload: &[u8]) -> io::Result<ServerHello> {
    let mut p = Payload::new(payload);
    if p.u32()? != MAGIC {
        return Err(bad_data("bad magic: not a fastppv server"));
    }
    let version = p.u16()?;
    if version != PROTOCOL_VERSION {
        return Err(bad_data(format!(
            "protocol version {version} (this client speaks {PROTOCOL_VERSION})"
        )));
    }
    let num_nodes = p.u64()?;
    let epoch = p.u64()?;
    let alpha = p.f64()?;
    let delta = p.f64()?;
    p.finish()?;
    Ok(ServerHello {
        num_nodes,
        epoch,
        alpha,
        delta,
    })
}

fn encode_request_batch(requests: &[WireRequest]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + requests.len() * 17);
    put_u32(&mut buf, requests.len() as u32);
    for r in requests {
        put_u32(&mut buf, r.query);
        put_u32(&mut buf, r.top_k);
        put_u32(&mut buf, r.deadline_ms.unwrap_or(NO_DEADLINE));
        match r.stop {
            WireStop::Iterations(eta) => {
                buf.push(0);
                put_u32(&mut buf, eta);
            }
            WireStop::L1Error(target) => {
                buf.push(1);
                put_f64(&mut buf, target);
            }
        }
    }
    buf
}

/// Decodes an `OP_QUERY` body into its requests (shared by shards and
/// the router front-end).
pub fn decode_request_batch(payload: &[u8]) -> io::Result<Vec<WireRequest>> {
    let mut p = Payload::new(payload);
    let count = p.u32()? as usize;
    // The smallest request is 17 bytes; a count the payload cannot hold is
    // rejected before any allocation trusts it, as is a batch past the
    // response-size cap.
    if count > payload.len() / 17 {
        return Err(bad_data(format!("request count {count} overruns frame")));
    }
    if count > MAX_BATCH_REQUESTS {
        return Err(bad_data(format!(
            "request count {count} exceeds the per-frame cap ({MAX_BATCH_REQUESTS})"
        )));
    }
    let mut requests = Vec::with_capacity(count);
    for _ in 0..count {
        let query = p.u32()?;
        let top_k = p.u32()?;
        let deadline = p.u32()?;
        let stop = match p.u8()? {
            0 => WireStop::Iterations(p.u32()?),
            1 => WireStop::L1Error(p.f64()?),
            tag => return Err(bad_data(format!("unknown stop tag {tag}"))),
        };
        requests.push(WireRequest {
            query,
            stop,
            deadline_ms: (deadline != NO_DEADLINE).then_some(deadline),
            top_k,
        });
    }
    p.finish()?;
    Ok(requests)
}

/// Encodes a response batch (shared by shards and the router front-end).
pub fn encode_response_batch(responses: &[WireResponse]) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u32(&mut buf, responses.len() as u32);
    for r in responses {
        match r {
            WireResponse::Error(msg) => {
                buf.push(1);
                put_u32(&mut buf, msg.len() as u32);
                buf.extend_from_slice(msg.as_bytes());
            }
            WireResponse::Overloaded { retry_after_ms } => {
                buf.push(2);
                put_u32(&mut buf, *retry_after_ms);
            }
            WireResponse::Answer(a) => {
                buf.push(0);
                put_u32(&mut buf, a.query);
                put_u32(&mut buf, a.iterations);
                put_f64(&mut buf, a.l1_error);
                buf.push(a.exhausted as u8);
                buf.push(a.cached as u8);
                buf.push(a.degraded as u8);
                put_u64(&mut buf, a.latency.as_nanos().min(u64::MAX as u128) as u64);
                put_u32(&mut buf, a.entries.len() as u32);
                for &(node, score) in &a.entries {
                    put_u32(&mut buf, node);
                    put_f64(&mut buf, score);
                }
            }
        }
    }
    buf
}

fn decode_response_batch(payload: &[u8]) -> io::Result<Vec<WireResponse>> {
    let mut p = Payload::new(payload);
    // The smallest response (an empty error) is 5 bytes; reject counts the
    // payload cannot hold before sizing any allocation off them.
    let count = p.u32()? as usize;
    if count > payload.len() / 5 {
        return Err(bad_data(format!("response count {count} overruns frame")));
    }
    let mut responses = Vec::with_capacity(count);
    for _ in 0..count {
        match p.u8()? {
            1 => {
                let len = p.u32()? as usize;
                let msg = std::str::from_utf8(p.take(len)?)
                    .map_err(|_| bad_data("error message is not UTF-8"))?;
                responses.push(WireResponse::Error(msg.to_string()));
            }
            2 => {
                let retry_after_ms = p.u32()?;
                if retry_after_ms == 0 {
                    return Err(bad_data(
                        "overloaded response with zero retry_after (retry-storm hazard)",
                    ));
                }
                responses.push(WireResponse::Overloaded { retry_after_ms });
            }
            0 => {
                let query = p.u32()?;
                let iterations = p.u32()?;
                let l1_error = p.f64()?;
                let exhausted = p.u8()? != 0;
                let cached = p.u8()? != 0;
                let degraded = p.u8()? != 0;
                let latency = Duration::from_nanos(p.u64()?);
                let n = p.u32()? as usize;
                if n > payload.len() / 12 {
                    return Err(bad_data(format!("entry count {n} overruns frame")));
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let node = p.u32()?;
                    let score = p.f64()?;
                    entries.push((node, score));
                }
                responses.push(WireResponse::Answer(WireAnswer {
                    query,
                    iterations,
                    l1_error,
                    exhausted,
                    cached,
                    degraded,
                    latency,
                    entries,
                }));
            }
            tag => return Err(bad_data(format!("unknown response tag {tag}"))),
        }
    }
    p.finish()?;
    Ok(responses)
}

fn answer_of(response: &Response, top_k: u32) -> WireAnswer {
    let entries = if top_k == 0 {
        response.scores.entries().to_vec()
    } else {
        response.top_k(top_k as usize)
    };
    WireAnswer {
        query: response.query,
        iterations: response.iterations as u32,
        l1_error: response.l1_error,
        exhausted: response.exhausted,
        cached: response.cached,
        degraded: response.degraded,
        latency: response.latency,
        entries,
    }
}

// ---------------------------------------------------------------------------
// Sub-op wire types and codecs (version 3)
// ---------------------------------------------------------------------------

/// A server's load picture as answered to a stats (health-probe) frame.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WireStats {
    /// Requests currently inside the service.
    pub in_flight: u64,
    /// Recent p99 service latency.
    pub recent_p99: Duration,
    /// Requests served degraded since startup.
    pub degraded: u64,
    /// Requests shed since startup.
    pub shed: u64,
    /// Current serving epoch.
    pub epoch: u64,
}

/// Iteration 0 of a scattered query as answered by a shard.
#[derive(Clone, Debug, PartialEq)]
pub struct WirePrime0 {
    /// Epoch of the snapshot that produced the answer.
    pub epoch: u64,
    /// `r̊⁰_q` entries, ascending node id (trivial tour excluded).
    pub entries: Vec<(NodeId, f64)>,
    /// The border-hub entries among them — iteration 1's frontier.
    pub frontier: Vec<(NodeId, f64)>,
}

/// One shard's contribution to one scattered increment step.
#[derive(Clone, Debug, PartialEq)]
pub struct WireExpand {
    /// Epoch of the snapshot that produced the contribution.
    pub epoch: u64,
    /// Partial increment entries, ascending node id.
    pub entries: Vec<(NodeId, f64)>,
    /// Partial next frontier (border hubs reached), ascending hub id.
    pub frontier: Vec<(NodeId, f64)>,
    /// Mass this partial increment added (`Σ entries`).
    pub increment_mass: f64,
    /// Frontier hubs actually expanded (mass above δ).
    pub hubs_expanded: u32,
}

/// Outcome of a scattered sub-request (`prime0` / `expand`), with the
/// echoed request id already validated by the client.
#[derive(Clone, Debug, PartialEq)]
pub enum SubReply<T> {
    /// The shard answered on the pinned epoch.
    Ok(T),
    /// The shard serves a different epoch; retry against `current`.
    EpochSkew {
        /// The epoch the shard currently serves.
        current: u64,
    },
    /// The shard refused the sub-request (bad node id, missing hub…).
    Error(String),
}

impl<T> SubReply<T> {
    /// The answer, if the shard served the sub-request.
    pub fn ok(self) -> Option<T> {
        match self {
            SubReply::Ok(t) => Some(t),
            _ => None,
        }
    }
}

/// Phase of a two-phase update frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdatePhase {
    /// Stage the refreshed store at `target_epoch` without publishing.
    Prepare,
    /// Publish the staged snapshot.
    Commit,
    /// Discard the staged snapshot.
    Abort,
}

fn encode_stats_request() -> Vec<u8> {
    vec![OP_STATS]
}

/// Encodes an `OP_STATS` response (shared by shards and the router).
pub fn encode_stats_response(s: &WireStats) -> Vec<u8> {
    let mut buf = Vec::with_capacity(40);
    put_u64(&mut buf, s.in_flight);
    put_u64(
        &mut buf,
        s.recent_p99.as_nanos().min(u64::MAX as u128) as u64,
    );
    put_u64(&mut buf, s.degraded);
    put_u64(&mut buf, s.shed);
    put_u64(&mut buf, s.epoch);
    buf
}

fn decode_stats_response(payload: &[u8]) -> io::Result<WireStats> {
    let mut p = Payload::new(payload);
    let stats = WireStats {
        in_flight: p.u64()?,
        recent_p99: Duration::from_nanos(p.u64()?),
        degraded: p.u64()?,
        shed: p.u64()?,
        epoch: p.u64()?,
    };
    p.finish()?;
    Ok(stats)
}

fn encode_prime0_request(request_id: u64, expect_epoch: u64, query: NodeId) -> Vec<u8> {
    let mut buf = Vec::with_capacity(21);
    buf.push(OP_PRIME0);
    put_u64(&mut buf, request_id);
    put_u64(&mut buf, expect_epoch);
    put_u32(&mut buf, query);
    buf
}

fn encode_expand_request(request_id: u64, expect_epoch: u64, sublist: &[(NodeId, f64)]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(21 + sublist.len() * 12);
    buf.push(OP_EXPAND);
    put_u64(&mut buf, request_id);
    put_u64(&mut buf, expect_epoch);
    put_u32(&mut buf, sublist.len() as u32);
    for &(hub, mass) in sublist {
        put_u32(&mut buf, hub);
        put_f64(&mut buf, mass);
    }
    buf
}

fn put_entry_list(buf: &mut Vec<u8>, entries: &[(NodeId, f64)]) {
    put_u32(buf, entries.len() as u32);
    for &(node, score) in entries {
        put_u32(buf, node);
        put_f64(buf, score);
    }
}

fn take_entry_list(p: &mut Payload<'_>, payload_len: usize) -> io::Result<Vec<(NodeId, f64)>> {
    let n = p.u32()? as usize;
    if n > payload_len / 12 {
        return Err(bad_data(format!("entry count {n} overruns frame")));
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let node = p.u32()?;
        let score = p.f64()?;
        entries.push((node, score));
    }
    Ok(entries)
}

const SUB_OK: u8 = 0;
const SUB_SKEW: u8 = 1;
const SUB_ERROR: u8 = 2;

/// Shared head of every sub-response: the echoed request id plus the
/// non-Ok statuses; `Ok(None)` means "status ok, body follows".
fn encode_sub_head(buf: &mut Vec<u8>, request_id: u64, status: u8) {
    put_u64(buf, request_id);
    buf.push(status);
}

fn encode_sub_skew(request_id: u64, current: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(17);
    encode_sub_head(&mut buf, request_id, SUB_SKEW);
    put_u64(&mut buf, current);
    buf
}

fn encode_sub_error(request_id: u64, msg: &str) -> Vec<u8> {
    let mut buf = Vec::with_capacity(13 + msg.len());
    encode_sub_head(&mut buf, request_id, SUB_ERROR);
    put_u32(&mut buf, msg.len() as u32);
    buf.extend_from_slice(msg.as_bytes());
    buf
}

fn encode_prime0_ok(request_id: u64, answer: &WirePrime0) -> Vec<u8> {
    let mut buf = Vec::with_capacity(25 + (answer.entries.len() + answer.frontier.len()) * 12 + 8);
    encode_sub_head(&mut buf, request_id, SUB_OK);
    put_u64(&mut buf, answer.epoch);
    put_entry_list(&mut buf, &answer.entries);
    put_entry_list(&mut buf, &answer.frontier);
    buf
}

fn encode_expand_ok(request_id: u64, answer: &WireExpand) -> Vec<u8> {
    let mut buf = Vec::with_capacity(37 + (answer.entries.len() + answer.frontier.len()) * 12 + 8);
    encode_sub_head(&mut buf, request_id, SUB_OK);
    put_u64(&mut buf, answer.epoch);
    put_entry_list(&mut buf, &answer.entries);
    put_entry_list(&mut buf, &answer.frontier);
    put_f64(&mut buf, answer.increment_mass);
    put_u32(&mut buf, answer.hubs_expanded);
    buf
}

/// A sub-response head that was anything but `SUB_OK`. Separate from
/// [`SubReply`] so the decoders never hold an impossible `Ok(())` arm.
enum SubNonOk {
    EpochSkew { current: u64 },
    Error(String),
}

impl SubNonOk {
    fn into_reply<T>(self) -> SubReply<T> {
        match self {
            SubNonOk::EpochSkew { current } => SubReply::EpochSkew { current },
            SubNonOk::Error(e) => SubReply::Error(e),
        }
    }
}

/// Decodes a sub-response head, validating the echoed request id — a
/// response surviving from a previous (hedged, timed-out, desynced)
/// request on the same connection can never be credited to this one.
/// `Ok(None)` means the shard answered `SUB_OK` and the typed body
/// follows in the payload.
fn decode_sub_head(p: &mut Payload<'_>, expect_request_id: u64) -> io::Result<Option<SubNonOk>> {
    let request_id = p.u64()?;
    if request_id != expect_request_id {
        return Err(bad_data(format!(
            "response for request {request_id}, expected {expect_request_id}"
        )));
    }
    match p.u8()? {
        SUB_OK => Ok(None),
        SUB_SKEW => Ok(Some(SubNonOk::EpochSkew { current: p.u64()? })),
        SUB_ERROR => {
            let len = p.u32()? as usize;
            let msg = std::str::from_utf8(p.take(len)?)
                .map_err(|_| bad_data("error message is not UTF-8"))?;
            Ok(Some(SubNonOk::Error(msg.to_string())))
        }
        tag => Err(bad_data(format!("unknown sub-response status {tag}"))),
    }
}

fn decode_prime0_response(payload: &[u8], request_id: u64) -> io::Result<SubReply<WirePrime0>> {
    let mut p = Payload::new(payload);
    if let Some(non_ok) = decode_sub_head(&mut p, request_id)? {
        p.finish()?;
        return Ok(non_ok.into_reply());
    }
    let epoch = p.u64()?;
    let entries = take_entry_list(&mut p, payload.len())?;
    let frontier = take_entry_list(&mut p, payload.len())?;
    p.finish()?;
    Ok(SubReply::Ok(WirePrime0 {
        epoch,
        entries,
        frontier,
    }))
}

fn decode_expand_response(payload: &[u8], request_id: u64) -> io::Result<SubReply<WireExpand>> {
    let mut p = Payload::new(payload);
    if let Some(non_ok) = decode_sub_head(&mut p, request_id)? {
        p.finish()?;
        return Ok(non_ok.into_reply());
    }
    let epoch = p.u64()?;
    let entries = take_entry_list(&mut p, payload.len())?;
    let frontier = take_entry_list(&mut p, payload.len())?;
    let increment_mass = p.f64()?;
    let hubs_expanded = p.u32()?;
    p.finish()?;
    Ok(SubReply::Ok(WireExpand {
        epoch,
        entries,
        frontier,
        increment_mass,
        hubs_expanded,
    }))
}

fn encode_update_request(phase: UpdatePhase, target_epoch: u64, events: &[EdgeEvent]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(14 + events.len() * 9);
    buf.push(OP_UPDATE);
    buf.push(match phase {
        UpdatePhase::Prepare => 0,
        UpdatePhase::Commit => 1,
        UpdatePhase::Abort => 2,
    });
    put_u64(&mut buf, target_epoch);
    if phase == UpdatePhase::Prepare {
        put_u32(&mut buf, events.len() as u32);
        for e in events {
            buf.push(e.insert as u8);
            put_u32(&mut buf, e.tail);
            put_u32(&mut buf, e.head);
        }
    }
    buf
}

/// Decodes an `OP_UPDATE` body into its phase, target epoch, and (for
/// prepare) event batch. Shared by the shard handler and the router's
/// two-phase coordinator front-end.
pub fn decode_update_request(body: &[u8]) -> io::Result<(UpdatePhase, u64, Vec<EdgeEvent>)> {
    let mut p = Payload::new(body);
    let phase = p.u8()?;
    let target_epoch = p.u64()?;
    match phase {
        0 => {
            let k = p.u32()? as usize;
            if k > body.len() / 9 {
                return Err(bad_data(format!("event count {k} overruns frame")));
            }
            let mut events = Vec::with_capacity(k);
            for _ in 0..k {
                let insert = p.u8()? != 0;
                let tail = p.u32()?;
                let head = p.u32()?;
                events.push(EdgeEvent { tail, head, insert });
            }
            p.finish()?;
            Ok((UpdatePhase::Prepare, target_epoch, events))
        }
        1 => {
            p.finish()?;
            Ok((UpdatePhase::Commit, target_epoch, Vec::new()))
        }
        2 => {
            p.finish()?;
            Ok((UpdatePhase::Abort, target_epoch, Vec::new()))
        }
        tag => Err(bad_data(format!("unknown update phase {tag}"))),
    }
}

/// Encodes an `OP_UPDATE` response (shared by shards and the router).
pub fn encode_update_response(result: &Result<(), String>) -> Vec<u8> {
    match result {
        Ok(()) => vec![0],
        Err(msg) => {
            let mut buf = Vec::with_capacity(5 + msg.len());
            buf.push(1);
            put_u32(&mut buf, msg.len() as u32);
            buf.extend_from_slice(msg.as_bytes());
            buf
        }
    }
}

fn decode_update_response(payload: &[u8]) -> io::Result<Result<(), String>> {
    let mut p = Payload::new(payload);
    let result = match p.u8()? {
        0 => Ok(()),
        1 => {
            let len = p.u32()? as usize;
            let msg = std::str::from_utf8(p.take(len)?)
                .map_err(|_| bad_data("error message is not UTF-8"))?;
            Err(msg.to_string())
        }
        tag => return Err(bad_data(format!("unknown update status {tag}"))),
    };
    p.finish()?;
    Ok(result)
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Connection-level robustness knobs of [`serve_with_options`].
#[derive(Clone, Copy, Debug)]
pub struct NetOptions {
    /// Once the first byte of a frame has arrived, the rest must keep
    /// arriving: a read that makes no progress for this long mid-frame
    /// closes the connection (slow-loris defense). Idling *between*
    /// frames is unlimited. Also bounds how long a connection thread
    /// takes to notice server shutdown.
    pub frame_stall_timeout: Duration,
    /// Socket write timeout for response frames (`None` = no limit). A
    /// peer that stops draining its receive buffer would otherwise block
    /// the connection thread forever.
    pub write_timeout: Option<Duration>,
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            frame_stall_timeout: Duration::from_secs(10),
            write_timeout: Some(Duration::from_secs(30)),
        }
    }
}

impl NetOptions {
    fn validate(&self) {
        assert!(
            !self.frame_stall_timeout.is_zero(),
            "frame stall timeout must be positive"
        );
        assert!(
            self.write_timeout != Some(Duration::ZERO),
            "write timeout must be positive (use None for no limit)"
        );
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads one frame from a socket whose read timeout is set to the frame
/// stall timeout. `Ok(None)` on a clean EOF at a frame boundary **or**
/// when `stop` flips while idle (server shutdown). A timeout while a
/// frame is partially received is a stall and fails the connection.
pub fn read_frame_stalling<R: Read>(
    r: &mut R,
    stop: &AtomicBool,
    buf_scratch: &mut Vec<u8>,
) -> io::Result<Option<Vec<u8>>> {
    // Check at the frame boundary too, not only on idle timeouts: a
    // connection under sustained load never idles, and would otherwise
    // keep serving a stopped server indefinitely.
    if stop.load(Ordering::Acquire) {
        return Ok(None);
    }
    let mut header = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        // fppv-lint: allow(panic-freedom) -- got < 4 is the loop condition, so the slice start is in bounds
        match r.read(&mut header[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(None)
                } else {
                    Err(bad_data("connection closed mid frame header"))
                }
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                if stop.load(Ordering::Acquire) {
                    return Ok(None);
                }
                if got > 0 {
                    return Err(bad_data("frame stalled inside the header"));
                }
                // Idle at a frame boundary: keep waiting.
            }
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(bad_data(format!("frame of {len} bytes exceeds the cap")));
    }
    buf_scratch.clear();
    buf_scratch.resize(len, 0);
    let mut got = 0usize;
    while got < len {
        // fppv-lint: allow(panic-freedom) -- got < len = buf_scratch.len() is the loop condition
        match r.read(&mut buf_scratch[got..]) {
            Ok(0) => return Err(bad_data("connection closed mid frame payload")),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                if stop.load(Ordering::Acquire) {
                    return Ok(None);
                }
                return Err(bad_data("frame stalled inside the payload"));
            }
            Err(e) => return Err(e),
        }
    }
    Ok(Some(std::mem::take(buf_scratch)))
}

/// A running TCP front-end: a thread-per-connection acceptor feeding the
/// service's worker pool. Dropped or [`NetServer::shutdown`]: stops
/// accepting and joins the acceptor; connection threads observe the stop
/// flag within one frame-stall timeout, and in-flight queries are
/// cancelled at their next increment boundary.
pub struct NetServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl NetServer {
    /// The address the server is listening on (resolves port 0 binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Blocks until the acceptor exits (i.e. forever, absent a shutdown
    /// from another handle or a listener error). The CLI's
    /// `serve --listen` foreground mode.
    pub fn wait(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }

    /// Stops accepting new connections and joins the acceptor.
    pub fn shutdown(mut self) {
        self.signal_and_join();
    }

    fn signal_and_join(&mut self) {
        let Some(handle) = self.acceptor.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // Poke the blocking accept() so it observes the flag.
        let _ = TcpStream::connect(self.local_addr);
        let _ = handle.join();
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.signal_and_join();
    }
}

/// Starts serving `service` on `listener`: one acceptor thread plus one
/// thread per connection, each feeding whole request-batch frames to
/// [`QueryService::process_batch`]'s scoped worker set. Returns
/// immediately with a [`NetServer`] handle.
///
/// Threading model, explicitly: the batching worker pool is *per
/// in-flight batch* (bounded by `options.workers`), so total compute
/// threads scale with concurrent connections × workers. The
/// [`MAX_CONNECTIONS`] admission cap bounds that product; past it, new
/// connections are closed before the hello frame (a connecting
/// [`Client`] sees "server closed before sending hello"). Size
/// `options.workers` for the *expected concurrency*, not the core count
/// alone, when many simultaneous connections are the workload.
pub fn serve<S: PpvStore + ShardRefresh + Send + Sync + 'static>(
    service: Arc<QueryService<S>>,
    listener: TcpListener,
) -> io::Result<NetServer> {
    serve_with_options(service, listener, NetOptions::default())
}

/// [`serve`] with explicit connection-robustness knobs ([`NetOptions`]).
pub fn serve_with_options<S: PpvStore + ShardRefresh + Send + Sync + 'static>(
    service: Arc<QueryService<S>>,
    listener: TcpListener,
    options: NetOptions,
) -> io::Result<NetServer> {
    options.validate();
    let local_addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let active = Arc::new(AtomicUsize::new(0));
    let acceptor = std::thread::Builder::new()
        .name("fastppv-accept".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::Acquire) {
                    break;
                }
                let stream = match conn {
                    Ok(stream) => stream,
                    Err(_) => {
                        // Persistent accept failures (fd exhaustion) yield
                        // Err immediately and repeatedly; back off instead
                        // of busy-spinning the acceptor at 100% CPU.
                        std::thread::sleep(Duration::from_millis(10));
                        continue;
                    }
                };
                // Admission control: past the cap, close before hello. The
                // slot is released by a Drop guard so a panicking handler
                // cannot leak it and starve future connections.
                if active.fetch_add(1, Ordering::AcqRel) >= MAX_CONNECTIONS {
                    active.fetch_sub(1, Ordering::AcqRel);
                    drop(stream);
                    continue;
                }
                let slot = SlotGuard(Arc::clone(&active));
                let service = Arc::clone(&service);
                let stop = Arc::clone(&stop_flag);
                // If the spawn itself fails, the closure — and the guard
                // inside it — is dropped here, releasing the slot.
                let _ = std::thread::Builder::new()
                    .name("fastppv-conn".into())
                    .spawn(move || {
                        let _slot = slot;
                        // A protocol error or broken pipe closes just this
                        // connection; the acceptor keeps serving others.
                        let _ = handle_connection(&service, stream, &stop, options);
                    });
            }
        })?;
    Ok(NetServer {
        local_addr,
        stop,
        acceptor: Some(acceptor),
    })
}

/// Releases one admission slot on drop — including on unwind, so a panic
/// inside a connection handler cannot permanently shrink the accept cap.
struct SlotGuard(Arc<AtomicUsize>);

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

fn handle_connection<S: PpvStore + ShardRefresh + Send + Sync>(
    service: &QueryService<S>,
    stream: TcpStream,
    stop: &AtomicBool,
    options: NetOptions,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    // The read timeout doubles as the frame-stall bound and the shutdown
    // poll interval; read_frame_stalling distinguishes idle-at-boundary
    // (fine, keep waiting) from stalled-mid-frame (close).
    stream.set_read_timeout(Some(options.frame_stall_timeout))?;
    stream.set_write_timeout(options.write_timeout)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    {
        let state = service.snapshot();
        let config = service.config();
        write_frame(
            &mut writer,
            &encode_hello(&ServerHello {
                num_nodes: state.graph().num_nodes() as u64,
                epoch: state.epoch(),
                alpha: config.alpha,
                delta: config.delta,
            }),
        )?;
    }
    let mut scratch = Vec::new();
    while let Some(payload) = read_frame_stalling(&mut reader, stop, &mut scratch)? {
        let Some((&op, body)) = payload.split_first() else {
            return Err(bad_data("empty frame (missing op byte)"));
        };
        match op {
            OP_QUERY => handle_query_frame(service, &mut writer, body, stop)?,
            OP_STATS => {
                Payload::new(body).finish()?;
                let load = service.load_stats();
                let stats = WireStats {
                    in_flight: load.in_flight as u64,
                    recent_p99: load.recent_p99,
                    degraded: load.degraded,
                    shed: load.shed,
                    epoch: service.epoch(),
                };
                write_frame(&mut writer, &encode_stats_response(&stats))?;
            }
            OP_PRIME0 => {
                let mut p = Payload::new(body);
                let request_id = p.u64()?;
                let expect_epoch = p.u64()?;
                let query = p.u32()?;
                p.finish()?;
                let expect = (expect_epoch != EPOCH_ANY).then_some(expect_epoch);
                let encoded = match service.prime0(query, expect) {
                    Ok((parts, epoch)) => encode_prime0_ok(
                        request_id,
                        &WirePrime0 {
                            epoch,
                            entries: parts.entries.clone(),
                            frontier: parts.frontier.clone(),
                        },
                    ),
                    Err(e) => encode_sub_failure(request_id, &e),
                };
                write_frame(&mut writer, &cap_sub_frame(request_id, encoded))?;
            }
            OP_EXPAND => {
                let mut p = Payload::new(body);
                let request_id = p.u64()?;
                let expect_epoch = p.u64()?;
                let sublist = take_entry_list(&mut p, body.len())?;
                p.finish()?;
                let expect = (expect_epoch != EPOCH_ANY).then_some(expect_epoch);
                let encoded = match service.expand(&sublist, expect) {
                    Ok(answer) => encode_expand_ok(
                        request_id,
                        &WireExpand {
                            epoch: answer.epoch,
                            entries: answer.outcome.entries.entries().to_vec(),
                            frontier: answer.outcome.frontier,
                            increment_mass: answer.outcome.increment_mass,
                            hubs_expanded: answer.outcome.hubs_expanded as u32,
                        },
                    ),
                    Err(e) => encode_sub_failure(request_id, &e),
                };
                write_frame(&mut writer, &cap_sub_frame(request_id, encoded))?;
            }
            OP_UPDATE => {
                let (phase, target_epoch, events) = decode_update_request(body)?;
                let result = match phase {
                    UpdatePhase::Prepare => prepare_from_events(service, target_epoch, &events),
                    UpdatePhase::Commit => service.commit_update(target_epoch),
                    UpdatePhase::Abort => {
                        service.abort_update();
                        Ok(())
                    }
                };
                write_frame(&mut writer, &encode_update_response(&result))?;
            }
            tag => return Err(bad_data(format!("unknown op byte {tag}"))),
        }
    }
    Ok(())
}

fn encode_sub_failure(request_id: u64, e: &SubQueryError) -> Vec<u8> {
    match e {
        SubQueryError::EpochSkew { current } => encode_sub_skew(request_id, *current),
        other => encode_sub_error(request_id, &other.to_string()),
    }
}

/// A sub-response whose entries overflow the frame cap degrades into an
/// in-protocol error (the router treats it like any per-shard refusal)
/// instead of an oversized-frame panic killing the connection.
fn cap_sub_frame(request_id: u64, encoded: Vec<u8>) -> Vec<u8> {
    if encoded.len() <= MAX_FRAME_BYTES {
        return encoded;
    }
    encode_sub_error(
        request_id,
        &format!(
            "sub-response of {} bytes exceeds the {} MiB frame cap",
            encoded.len(),
            MAX_FRAME_BYTES >> 20
        ),
    )
}

/// Phase-one handler: replays the event batch onto the pinned snapshot's
/// graph (every shard holds the full graph; only the PPV store is sliced)
/// and stages the shard-local refresh at `target_epoch`. Public so an
/// in-process shard backend can stage updates without a socket.
pub fn prepare_from_events<S: PpvStore + ShardRefresh + Send + Sync>(
    service: &QueryService<S>,
    target_epoch: u64,
    events: &[EdgeEvent],
) -> Result<(), String> {
    let state = service.snapshot();
    let n = state.graph().num_nodes();
    for e in events {
        if (e.tail as usize) >= n || (e.head as usize) >= n {
            return Err(format!(
                "event edge {} -> {} out of range ({n} nodes)",
                e.tail, e.head
            ));
        }
    }
    let mut graph: Option<Graph> = None;
    for e in events {
        let base = graph.as_ref().unwrap_or_else(|| state.graph());
        graph = Some(apply_event(base, e));
    }
    let new_graph = graph.unwrap_or_else(|| state.graph().as_ref().clone());
    let mut tails: Vec<NodeId> = events.iter().map(|e| e.tail).collect();
    tails.sort_unstable();
    tails.dedup();
    service
        .prepare_update(target_epoch, new_graph, &tails)
        .map(|_| ())
}

fn handle_query_frame<S: PpvStore + Send + Sync>(
    service: &QueryService<S>,
    writer: &mut BufWriter<TcpStream>,
    body: &[u8],
    stop: &AtomicBool,
) -> io::Result<()> {
    {
        let wire_requests = decode_request_batch(body)?;
        let received = Instant::now();
        // Pin one snapshot for the whole frame: ids are validated against
        // the exact graph the batch will run on, so a concurrent update
        // cannot invalidate the check mid-flight.
        let state = service.snapshot();
        let mut slots: Vec<Option<WireResponse>> = Vec::new();
        slots.resize_with(wire_requests.len(), || None);
        let mut batch: Vec<Request> = Vec::with_capacity(wire_requests.len());
        let mut batch_slots: Vec<usize> = Vec::with_capacity(wire_requests.len());
        for (i, wr) in wire_requests.iter().enumerate() {
            // Shed *before* queueing: a request past the high-water mark
            // gets its typed rejection immediately instead of adding to
            // the very backlog that triggered it.
            if let crate::service::Admission::Shed { retry_after } = service.admission() {
                service.note_shed();
                let retry_after_ms = (retry_after.as_millis() as u32).max(1);
                slots[i] = Some(WireResponse::Overloaded { retry_after_ms });
                continue;
            }
            match crate::service::check_in_range(state.graph(), wr.query) {
                Err(e) => slots[i] = Some(WireResponse::Error(e)),
                Ok(()) => {
                    batch.push(wr.to_request(received));
                    batch_slots.push(i);
                }
            }
        }
        // The server stop flag doubles as the cancellation token: shutdown
        // stops in-flight queries at their next increment boundary (each
        // returns its partial answer with its current certified φ).
        let responses = service.process_batch_on_cancel(&state, batch, Some(stop));
        for (&slot, response) in batch_slots.iter().zip(&responses) {
            slots[slot] = Some(WireResponse::Answer(answer_of(
                response,
                wire_requests[slot].top_k,
            )));
        }
        let out: Vec<WireResponse> = slots
            .into_iter()
            .map(|s| s.expect("every request got a slot"))
            .collect();
        let mut encoded = encode_response_batch(&out);
        if encoded.len() > MAX_FRAME_BYTES {
            // A well-formed batch whose *answers* (full score vectors on a
            // big graph) overflow the frame cap degrades into per-request
            // errors — bounded by MAX_BATCH_REQUESTS, so this frame always
            // fits — instead of killing the connection.
            let errors: Vec<WireResponse> = out
                .iter()
                .map(|r| match r {
                    WireResponse::Error(e) => WireResponse::Error(e.clone()),
                    WireResponse::Overloaded { retry_after_ms } => WireResponse::Overloaded {
                        retry_after_ms: *retry_after_ms,
                    },
                    WireResponse::Answer(a) => WireResponse::Error(format!(
                        "response batch exceeds the {} MiB frame cap; request \
                         fewer entries (top_k) or smaller batches (answer for \
                         node {} alone held {} entries)",
                        MAX_FRAME_BYTES >> 20,
                        a.query,
                        a.entries.len()
                    )),
                })
                .collect();
            encoded = encode_response_batch(&errors);
        }
        write_frame(writer, &encoded)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Socket timeouts of a [`Client`]. The defaults protect every phase —
/// connect, the hello handshake, request writes, response reads — so a
/// dead or SIGSTOPped server surfaces as a timeout error instead of
/// hanging the caller forever.
#[derive(Clone, Copy, Debug)]
pub struct ClientOptions {
    /// TCP connect timeout (`None` = OS default).
    pub connect_timeout: Option<Duration>,
    /// Socket read timeout, covering the hello frame and every response
    /// frame (`None` = wait forever).
    pub read_timeout: Option<Duration>,
    /// Socket write timeout for request frames (`None` = wait forever).
    pub write_timeout: Option<Duration>,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            connect_timeout: Some(Duration::from_secs(10)),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
        }
    }
}

impl ClientOptions {
    /// No timeouts anywhere: the pre-robustness behavior. Only sensible
    /// against a server you also control the lifetime of.
    pub fn unbounded() -> Self {
        ClientOptions {
            connect_timeout: None,
            read_timeout: None,
            write_timeout: None,
        }
    }
}

/// What went wrong talking to a fastppv server, split by what the caller
/// should *do* about it: back off and retry ([`ClientError::Timeout`],
/// [`ClientError::Disconnected`], [`ClientError::Io`] — the connection is
/// gone or wedged, a reconnect may succeed) versus give up
/// ([`ClientError::Protocol`] — retrying malformed traffic reproduces
/// it). [`ResilientClient`] applies exactly that split.
#[derive(Debug)]
pub enum ClientError {
    /// A connect, read, or write exceeded its [`ClientOptions`] timeout —
    /// the server is dead, stalled, or unreachable.
    Timeout(io::Error),
    /// The server closed or reset the connection.
    Disconnected(io::Error),
    /// Any other I/O failure.
    Io(io::Error),
    /// Malformed or protocol-violating data; not retryable.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Timeout(e) => write!(f, "timed out waiting on the server: {e}"),
            ClientError::Disconnected(e) => write!(f, "server closed the connection: {e}"),
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Timeout(e) | ClientError::Disconnected(e) | ClientError::Io(e) => Some(e),
            ClientError::Protocol(_) => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ClientError::Timeout(e),
            io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::BrokenPipe => ClientError::Disconnected(e),
            io::ErrorKind::InvalidData => ClientError::Protocol(e.to_string()),
            _ => ClientError::Io(e),
        }
    }
}

impl ClientError {
    /// Whether a fresh connection and retry could plausibly succeed.
    pub fn is_retryable(&self) -> bool {
        !matches!(self, ClientError::Protocol(_))
    }
}

/// A blocking client for the fastppv TCP protocol (one connection, one
/// outstanding request frame at a time).
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    hello: ServerHello,
    /// Monotonic per-connection request-id source for sub-ops.
    next_request_id: u64,
}

impl Client {
    /// Connects with [`ClientOptions::default`] timeouts and consumes the
    /// server's hello frame. A dead or stalled server fails within the
    /// timeouts instead of hanging forever; use [`Client::connect_with`]
    /// to tune or disable them.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        Self::connect_with(addr, ClientOptions::default())
    }

    /// Connects with explicit timeouts and consumes the server's hello
    /// frame (which counts against `read_timeout` — the handshake is
    /// where a SIGSTOPped server hangs a naive client).
    pub fn connect_with<A: ToSocketAddrs>(addr: A, options: ClientOptions) -> io::Result<Self> {
        let stream = match options.connect_timeout {
            None => TcpStream::connect(addr)?,
            Some(limit) => {
                // connect_timeout needs concrete addresses; try each
                // resolution like TcpStream::connect does.
                let mut last = None;
                let mut stream = None;
                for a in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&a, limit) {
                        Ok(s) => {
                            stream = Some(s);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                stream.ok_or_else(|| {
                    last.unwrap_or_else(|| {
                        io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
                    })
                })?
            }
        };
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(options.read_timeout)?;
        stream.set_write_timeout(options.write_timeout)?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        let hello = read_frame(&mut reader)?
            .ok_or_else(|| bad_data("server closed before sending hello"))?;
        let hello = decode_hello(&hello)?;
        Ok(Client {
            reader,
            writer,
            hello,
            next_request_id: 1,
        })
    }

    /// Number of graph nodes the server announced at connect time.
    pub fn num_nodes(&self) -> u64 {
        self.hello.num_nodes
    }

    /// Everything the server announced at connect time (node count,
    /// serving epoch, index α/δ).
    pub fn hello(&self) -> &ServerHello {
        &self.hello
    }

    /// Sends one request batch and blocks for the response batch
    /// (responses in request order, one per request). Batches above
    /// [`MAX_BATCH_REQUESTS`] are rejected here with a precise error —
    /// the server would reject the frame and close the connection.
    pub fn request_batch(&mut self, requests: &[WireRequest]) -> io::Result<Vec<WireResponse>> {
        if requests.len() > MAX_BATCH_REQUESTS {
            return Err(bad_data(format!(
                "batch of {} requests exceeds the per-frame cap ({MAX_BATCH_REQUESTS})",
                requests.len()
            )));
        }
        let mut frame = vec![OP_QUERY];
        frame.extend_from_slice(&encode_request_batch(requests));
        write_frame(&mut self.writer, &frame)?;
        let payload = read_frame(&mut self.reader)?.ok_or_else(closed_mid_request)?;
        let responses = decode_response_batch(&payload)?;
        if responses.len() != requests.len() {
            return Err(bad_data(format!(
                "{} responses for {} requests",
                responses.len(),
                requests.len()
            )));
        }
        Ok(responses)
    }

    /// Sends a single request and blocks for its response.
    pub fn request_one(&mut self, request: WireRequest) -> io::Result<WireResponse> {
        let mut responses = self.request_batch(std::slice::from_ref(&request))?;
        Ok(responses.remove(0))
    }

    fn round_trip(&mut self, frame: &[u8]) -> io::Result<Vec<u8>> {
        write_frame(&mut self.writer, frame)?;
        read_frame(&mut self.reader)?.ok_or_else(closed_mid_request)
    }

    fn take_request_id(&mut self) -> u64 {
        let id = self.next_request_id;
        self.next_request_id += 1;
        id
    }

    /// Probes the server's load picture (the router's health check).
    pub fn stats(&mut self) -> io::Result<WireStats> {
        let payload = self.round_trip(&encode_stats_request())?;
        decode_stats_response(&payload)
    }

    /// Asks for iteration 0 of a scattered query, pinned to
    /// `expect_epoch` (`None` = whatever the shard serves). The request id
    /// is assigned here and validated against the response's echo.
    pub fn prime0(
        &mut self,
        query: NodeId,
        expect_epoch: Option<u64>,
    ) -> io::Result<SubReply<WirePrime0>> {
        let id = self.take_request_id();
        let payload = self.round_trip(&encode_prime0_request(
            id,
            expect_epoch.unwrap_or(EPOCH_ANY),
            query,
        ))?;
        decode_prime0_response(&payload, id)
    }

    /// Asks for one shard's slice of one increment step: `sublist` holds
    /// the frontier hubs this shard owns (ascending id) with their merged
    /// masses.
    pub fn expand(
        &mut self,
        sublist: &[(NodeId, f64)],
        expect_epoch: Option<u64>,
    ) -> io::Result<SubReply<WireExpand>> {
        let id = self.take_request_id();
        let payload = self.round_trip(&encode_expand_request(
            id,
            expect_epoch.unwrap_or(EPOCH_ANY),
            sublist,
        ))?;
        decode_expand_response(&payload, id)
    }

    /// Phase one of a coordinated update: ship the event batch and stage
    /// the refreshed store at `target_epoch` without publishing.
    pub fn update_prepare(
        &mut self,
        target_epoch: u64,
        events: &[EdgeEvent],
    ) -> io::Result<Result<(), String>> {
        let payload = self.round_trip(&encode_update_request(
            UpdatePhase::Prepare,
            target_epoch,
            events,
        ))?;
        decode_update_response(&payload)
    }

    /// Phase two: publish the snapshot staged at `target_epoch`.
    pub fn update_commit(&mut self, target_epoch: u64) -> io::Result<Result<(), String>> {
        let payload = self.round_trip(&encode_update_request(
            UpdatePhase::Commit,
            target_epoch,
            &[],
        ))?;
        decode_update_response(&payload)
    }

    /// Discards any staged snapshot on the server.
    pub fn update_abort(&mut self) -> io::Result<Result<(), String>> {
        let payload = self.round_trip(&encode_update_request(UpdatePhase::Abort, 0, &[]))?;
        decode_update_response(&payload)
    }
}

/// Retry behavior of a [`ResilientClient`].
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts per call, including the first (≥ 1). Reconnects are
    /// bounded by the same budget.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Backoff ceiling (the exponential stops growing here).
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    fn validate(&self) {
        assert!(self.max_attempts >= 1, "at least one attempt is required");
    }

    /// Exponential backoff before retry number `retry` (1-based), capped.
    fn backoff(&self, retry: u32) -> Duration {
        let factor = 1u32 << retry.saturating_sub(1).min(16);
        self.base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
    }
}

/// A [`Client`] wrapper that survives a flaky or overloaded server:
/// retryable failures (timeout, disconnect, I/O) drop the connection,
/// back off exponentially **with jitter**, reconnect, and try again,
/// bounded by [`RetryPolicy::max_attempts`]; a batch the server shed
/// *entirely* waits at least the server's `retry_after` hint before the
/// retry. Protocol errors are never retried — replaying malformed
/// traffic reproduces them.
///
/// Queries are read-only, so a retry after a mid-request failure is safe
/// (at worst the server computes an answer twice).
pub struct ResilientClient {
    addr: SocketAddr,
    options: ClientOptions,
    policy: RetryPolicy,
    client: Option<Client>,
    /// Backoff jitter source — seeded (port-derived by default) so tests
    /// stay reproducible under [`ResilientClient::with_jitter_seed`].
    rng: ChaCha8Rng,
}

impl ResilientClient {
    /// Creates a client for `addr` (no connection is made until the
    /// first request; [`ResilientClient::connect`] forces one eagerly).
    pub fn new(addr: SocketAddr, options: ClientOptions, policy: RetryPolicy) -> Self {
        policy.validate();
        ResilientClient {
            addr,
            options,
            policy,
            client: None,
            rng: ChaCha8Rng::seed_from_u64(0x243F_6A88_85A3_08D3 ^ (addr.port() as u64)),
        }
    }

    /// Seeds the backoff jitter (defaults to a port-derived constant).
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.rng = ChaCha8Rng::seed_from_u64(seed);
        self
    }

    /// Connects eagerly (with the retry budget) and reports the server's
    /// announced node count.
    pub fn connect(&mut self) -> Result<u64, ClientError> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.ensure_connected() {
                Ok(c) => return Ok(c.num_nodes()),
                Err(e) => self.backoff_or_fail(e, attempt, None)?,
            }
        }
    }

    /// Sends one request batch, retrying per the policy. Responses come
    /// back in request order; per-request `Overloaded` outcomes inside a
    /// *partially* served batch are returned as-is (the caller decides
    /// which requests to replay) — only a fully-shed batch is retried
    /// here, honoring the server's largest `retry_after` hint.
    pub fn request_batch(
        &mut self,
        requests: &[WireRequest],
    ) -> Result<Vec<WireResponse>, ClientError> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let result = self
                .ensure_connected()
                .and_then(|c| c.request_batch(requests).map_err(ClientError::from));
            match result {
                Ok(responses) => {
                    let fully_shed = !responses.is_empty()
                        && responses.iter().all(|r| r.retry_after().is_some());
                    if !fully_shed {
                        return Ok(responses);
                    }
                    if attempt >= self.policy.max_attempts {
                        return Ok(responses); // hand the shed outcome back
                    }
                    let hint = responses
                        .iter()
                        .filter_map(|r| r.retry_after())
                        .max()
                        .unwrap_or(Duration::ZERO);
                    let wait = self.policy.backoff(attempt).max(hint);
                    std::thread::sleep(self.jittered(wait));
                }
                Err(e) => self.backoff_or_fail(e, attempt, Some(requests.len()))?,
            }
        }
    }

    /// Sends a single request with the full retry policy.
    pub fn request_one(&mut self, request: WireRequest) -> Result<WireResponse, ClientError> {
        let mut responses = self.request_batch(std::slice::from_ref(&request))?;
        Ok(responses.remove(0))
    }

    fn ensure_connected(&mut self) -> Result<&mut Client, ClientError> {
        if self.client.is_none() {
            self.client = Some(Client::connect_with(self.addr, self.options)?);
        }
        Ok(self.client.as_mut().expect("just connected"))
    }

    /// On a retryable error below the attempt budget: drop the (possibly
    /// wedged) connection, sleep a jittered backoff, and return `Ok` so
    /// the caller loops. Otherwise propagate the error.
    fn backoff_or_fail(
        &mut self,
        e: ClientError,
        attempt: u32,
        _batch: Option<usize>,
    ) -> Result<(), ClientError> {
        self.client = None;
        if !e.is_retryable() || attempt >= self.policy.max_attempts {
            return Err(e);
        }
        let wait = self.policy.backoff(attempt);
        std::thread::sleep(self.jittered(wait));
        Ok(())
    }

    /// Full jitter in `[wait/2, wait]`: desynchronizes a fleet of
    /// retrying clients without ever undercutting half the intended
    /// backoff (or a server-sent `retry_after` by more than half).
    fn jittered(&mut self, wait: Duration) -> Duration {
        let half = wait / 2;
        half + half.mul_f64(self.rng.gen::<f64>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceOptions;
    use fastppv_core::offline::build_index;
    use fastppv_core::{Config, HubSet, MemoryIndex, QueryEngine};
    use fastppv_graph::toy;

    fn toy_service() -> Arc<QueryService<MemoryIndex>> {
        let g = toy::graph();
        let hubs = HubSet::from_ids(8, toy::PAPER_HUBS.to_vec());
        let config = Config::exhaustive();
        let (index, _) = build_index(&g, &hubs, &config);
        Arc::new(QueryService::new(
            Arc::new(g),
            Arc::new(hubs),
            Arc::new(index),
            config,
            ServiceOptions {
                workers: 2,
                queue_capacity: 8,
                cache_capacity: 16,
            },
        ))
    }

    #[test]
    fn request_batch_round_trips() {
        let requests = vec![
            WireRequest::iterations(3, 2),
            WireRequest::l1_error(5, 0.125).with_top_k(7),
            WireRequest::iterations(0, 9).with_deadline_ms(1500),
        ];
        let decoded = decode_request_batch(&encode_request_batch(&requests)).unwrap();
        assert_eq!(decoded.len(), 3);
        for (a, b) in requests.iter().zip(&decoded) {
            assert_eq!(a.query, b.query);
            assert_eq!(a.stop, b.stop);
            assert_eq!(a.deadline_ms, b.deadline_ms);
            assert_eq!(a.top_k, b.top_k);
        }
    }

    #[test]
    fn response_batch_round_trips() {
        let responses = vec![
            WireResponse::Answer(WireAnswer {
                query: 4,
                iterations: 3,
                l1_error: 0.25,
                exhausted: true,
                cached: false,
                degraded: true,
                latency: Duration::from_micros(1234),
                entries: vec![(1, 0.5), (7, 0.25)],
            }),
            WireResponse::Error("node 99 out of range".into()),
            WireResponse::Overloaded { retry_after_ms: 75 },
        ];
        let decoded = decode_response_batch(&encode_response_batch(&responses)).unwrap();
        let a = decoded[0].answer().unwrap();
        assert_eq!((a.query, a.iterations), (4, 3));
        assert_eq!(a.l1_error, 0.25);
        assert!(a.exhausted && !a.cached);
        assert!(a.degraded, "degraded flag survives the wire");
        assert_eq!(a.latency, Duration::from_micros(1234));
        assert_eq!(a.entries, vec![(1, 0.5), (7, 0.25)]);
        assert_eq!(decoded[1].error(), Some("node 99 out of range"));
        assert_eq!(
            decoded[2].retry_after(),
            Some(Duration::from_millis(75)),
            "overloaded responses carry their retry hint"
        );
    }

    #[test]
    fn zero_retry_after_is_rejected_on_decode() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 1);
        buf.push(2);
        put_u32(&mut buf, 0);
        let err = decode_response_batch(&buf).unwrap_err();
        assert!(err.to_string().contains("retry-storm"), "{err}");
    }

    #[test]
    fn truncated_and_trailing_payloads_are_rejected() {
        let good = encode_request_batch(&[WireRequest::iterations(1, 2)]);
        assert!(decode_request_batch(&good[..good.len() - 1]).is_err());
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(decode_request_batch(&trailing).is_err());
        // A count that the payload cannot possibly hold is rejected early.
        let mut huge = Vec::new();
        put_u32(&mut huge, u32::MAX);
        assert!(decode_request_batch(&huge).is_err());
        let hello = ServerHello {
            num_nodes: 42,
            epoch: 7,
            alpha: 0.15,
            delta: 1e-4,
        };
        assert!(decode_hello(&encode_hello(&hello)[..3]).is_err());
        assert_eq!(decode_hello(&encode_hello(&hello)).unwrap(), hello);
    }

    #[test]
    fn sub_op_payloads_round_trip_and_validate_request_ids() {
        let p0 = WirePrime0 {
            epoch: 3,
            entries: vec![(1, 0.5), (4, 0.25)],
            frontier: vec![(4, 0.25)],
        };
        let decoded = decode_prime0_response(&encode_prime0_ok(9, &p0), 9).unwrap();
        assert_eq!(decoded, SubReply::Ok(p0.clone()));
        // A response echoing the wrong request id is a protocol error, not
        // a silently mis-credited answer (hedging correctness).
        let err = decode_prime0_response(&encode_prime0_ok(9, &p0), 10).unwrap_err();
        assert!(err.to_string().contains("expected 10"), "{err}");

        let ex = WireExpand {
            epoch: 5,
            entries: vec![(2, 0.125)],
            frontier: vec![],
            increment_mass: 0.125,
            hubs_expanded: 1,
        };
        let decoded = decode_expand_response(&encode_expand_ok(1, &ex), 1).unwrap();
        assert_eq!(decoded, SubReply::Ok(ex));

        assert_eq!(
            decode_prime0_response(&encode_sub_skew(2, 8), 2).unwrap(),
            SubReply::EpochSkew { current: 8 }
        );
        assert_eq!(
            decode_expand_response(&encode_sub_error(3, "nope"), 3).unwrap(),
            SubReply::Error("nope".into())
        );

        let stats = WireStats {
            in_flight: 2,
            recent_p99: Duration::from_micros(750),
            degraded: 1,
            shed: 4,
            epoch: 6,
        };
        assert_eq!(
            decode_stats_response(&encode_stats_response(&stats)).unwrap(),
            stats
        );

        let events = vec![
            EdgeEvent {
                tail: 1,
                head: 2,
                insert: true,
            },
            EdgeEvent {
                tail: 3,
                head: 0,
                insert: false,
            },
        ];
        let frame = encode_update_request(UpdatePhase::Prepare, 4, &events);
        assert_eq!(frame[0], OP_UPDATE);
        assert_eq!(
            decode_update_response(&encode_update_response(&Ok(()))).unwrap(),
            Ok(())
        );
        assert_eq!(
            decode_update_response(&encode_update_response(&Err("busy".into()))).unwrap(),
            Err("busy".to_string())
        );
    }

    #[test]
    fn loopback_sub_ops_serve_scatter_halves_and_two_phase_updates() {
        use fastppv_graph::gen::synth_events;
        let service = toy_service();
        let server = serve(
            Arc::clone(&service),
            TcpListener::bind("127.0.0.1:0").unwrap(),
        )
        .unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let hello = *client.hello();
        assert_eq!(hello.num_nodes, 8);
        assert_eq!(hello.epoch, 0);
        assert_eq!(hello.alpha, service.config().alpha);
        assert_eq!(hello.delta, service.config().delta);

        // Health probe.
        let stats = client.stats().unwrap();
        assert_eq!(stats.epoch, 0);

        // prime0 of a hub matches the stored prime PPV; pinning to a wrong
        // epoch skews instead of mixing versions.
        let hub = toy::PAPER_HUBS[0];
        let p0 = client.prime0(hub, Some(0)).unwrap().ok().expect("epoch 0");
        assert_eq!(p0.epoch, 0);
        let state = service.snapshot();
        let stored: Vec<(NodeId, f64)> = state
            .store()
            .view(hub)
            .expect("hub is stored")
            .to_prime_ppv()
            .entries
            .entries()
            .to_vec();
        assert_eq!(p0.entries, stored);
        assert!(p0.frontier.iter().all(|&(h, _)| { state.hubs().is_hub(h) }));
        assert!(matches!(
            client.prime0(hub, Some(99)).unwrap(),
            SubReply::EpochSkew { current: 0 }
        ));
        assert!(matches!(
            client.prime0(999, None).unwrap(),
            SubReply::Error(_)
        ));

        // expand over the prime0 frontier reproduces the first increment:
        // iteration 1 of the single-process engine.
        if !p0.frontier.is_empty() {
            let ex = client
                .expand(&p0.frontier, Some(0))
                .unwrap()
                .ok()
                .expect("epoch 0");
            assert!(ex.increment_mass > 0.0);
            assert_eq!(ex.hubs_expanded as usize, p0.frontier.len());
        }

        // Two-phase update: prepare stages (serving epoch unchanged),
        // commit publishes, and a pre-update pin now skews.
        let events = synth_events(state.graph(), 3, 0.0, 42);
        assert_eq!(client.update_prepare(1, &events).unwrap(), Ok(()));
        assert_eq!(service.epoch(), 0, "prepare must not publish");
        assert!(client.prime0(hub, Some(0)).unwrap().ok().is_some());
        assert_eq!(client.update_commit(1).unwrap(), Ok(()));
        assert_eq!(service.epoch(), 1);
        assert!(matches!(
            client.prime0(hub, Some(0)).unwrap(),
            SubReply::EpochSkew { current: 1 }
        ));
        assert!(client.prime0(hub, Some(1)).unwrap().ok().is_some());

        // Committing again fails cleanly; a fresh prepare can be aborted.
        assert!(client.update_commit(1).unwrap().is_err());
        let events2 = synth_events(&service.graph(), 2, 0.0, 43);
        assert_eq!(client.update_prepare(2, &events2).unwrap(), Ok(()));
        assert_eq!(client.update_abort().unwrap(), Ok(()));
        assert!(client.update_commit(2).unwrap().is_err());
        assert_eq!(service.epoch(), 1, "aborted update must not publish");

        drop(client);
        server.shutdown();
    }

    #[test]
    fn batch_and_count_caps_are_enforced() {
        // A frame large enough to hold MAX_BATCH_REQUESTS + 1 requests is
        // still rejected by the per-frame cap (bounds the response size).
        let over = MAX_BATCH_REQUESTS + 1;
        let mut payload = vec![0u8; 4 + over * 17];
        payload[..4].copy_from_slice(&(over as u32).to_le_bytes());
        let err = decode_request_batch(&payload).unwrap_err();
        assert!(err.to_string().contains("per-frame cap"), "{err}");
        // A response count the payload cannot hold is rejected before any
        // allocation is sized off it (client-side OOM guard).
        let mut bogus = Vec::new();
        put_u32(&mut bogus, 1000);
        let err = decode_response_batch(&bogus).unwrap_err();
        assert!(err.to_string().contains("overruns frame"), "{err}");
    }

    #[test]
    fn loopback_serves_exact_answers_and_per_request_errors() {
        let service = toy_service();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let server = serve(Arc::clone(&service), listener).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        assert_eq!(client.num_nodes(), 8);

        let responses = client
            .request_batch(&[
                WireRequest::iterations(toy::A, 3),
                WireRequest::iterations(99, 3), // out of range
                WireRequest::iterations(toy::E, 2).with_top_k(2),
            ])
            .unwrap();
        assert_eq!(responses.len(), 3);

        let state = service.snapshot();
        let engine = state.engine(*service.config());
        let direct = engine.query(toy::A, &StoppingCondition::iterations(3));
        let a = responses[0].answer().unwrap();
        assert_eq!(a.entries, direct.scores.entries().to_vec());
        assert_eq!(a.iterations as usize, direct.iterations);
        assert!((a.l1_error - direct.l1_error).abs() < 1e-15);

        let err = responses[1].error().unwrap();
        assert!(err.contains("out of range"), "{err}");

        let top2 = responses[2].answer().unwrap();
        let direct_e = engine.query(toy::E, &StoppingCondition::iterations(2));
        assert_eq!(top2.entries, direct_e.scores.top_k(2));

        // The connection survived the per-request error.
        let again = client
            .request_one(WireRequest::iterations(toy::A, 3))
            .unwrap();
        let again = again.answer().unwrap();
        assert!(again.cached, "repeat deterministic request hits the cache");
        assert_eq!(again.entries, direct.scores.entries().to_vec());

        drop(client);
        server.shutdown();
    }

    #[test]
    fn loopback_expired_deadline_stops_immediately() {
        let service = toy_service();
        let server = serve(
            Arc::clone(&service),
            TcpListener::bind("127.0.0.1:0").unwrap(),
        )
        .unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let r = client
            .request_one(WireRequest::iterations(toy::A, 50).with_deadline_ms(0))
            .unwrap();
        let a = r.answer().unwrap();
        assert_eq!(a.iterations, 0, "0 ms deadline must stop at iteration 0");
        drop(client);
        server.shutdown();
    }

    #[test]
    fn loopback_sheds_past_high_water_mark_and_recovers() {
        use crate::service::OverloadOptions;
        let g = toy::graph();
        let hubs = HubSet::from_ids(8, toy::PAPER_HUBS.to_vec());
        let config = Config::exhaustive();
        let (index, _) = build_index(&g, &hubs, &config);
        let service = Arc::new(
            QueryService::new(
                Arc::new(g),
                Arc::new(hubs),
                Arc::new(index),
                config,
                ServiceOptions {
                    workers: 1,
                    queue_capacity: 8,
                    cache_capacity: 0,
                },
            )
            .with_overload(OverloadOptions {
                degrade_in_flight: 2,
                shed_in_flight: 4,
                ..OverloadOptions::default()
            }),
        );
        let server = serve(
            Arc::clone(&service),
            TcpListener::bind("127.0.0.1:0").unwrap(),
        )
        .unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        // Pin the service past the high-water mark, as a flood of slow
        // batches would.
        let held = service.track_in_flight(4);
        let shed = client
            .request_one(WireRequest::iterations(toy::A, 3))
            .unwrap();
        let retry = shed.retry_after().expect("past high water: must shed");
        assert!(retry > Duration::ZERO, "retry hint must be positive");
        assert!(service.load_stats().shed >= 1);
        // Load drains: the same connection serves normally again.
        drop(held);
        let ok = client
            .request_one(WireRequest::iterations(toy::A, 3))
            .unwrap();
        assert!(ok.answer().is_some(), "recovered after shed: {ok:?}");
        // Between the watermarks: admitted but degraded, φ still carried.
        let held = service.track_in_flight(1); // +1 for the request itself = 2
        let soft = client
            .request_one(WireRequest::iterations(toy::A, 8))
            .unwrap();
        let a = soft.answer().expect("degrade admits the request");
        assert!(a.degraded, "degrade regime must flag the answer");
        assert!(a.l1_error.is_finite());
        drop(held);
        drop(client);
        server.shutdown();
    }

    #[test]
    fn slow_loris_connection_is_disconnected_but_idle_survives() {
        let service = toy_service();
        let server = serve_with_options(
            Arc::clone(&service),
            TcpListener::bind("127.0.0.1:0").unwrap(),
            NetOptions {
                frame_stall_timeout: Duration::from_millis(100),
                write_timeout: Some(Duration::from_secs(5)),
            },
        )
        .unwrap();
        // An idle (frame-boundary) connection outlives many stall windows.
        let mut idle = Client::connect(server.local_addr()).unwrap();
        // A slow-loris peer: starts a frame, then stalls mid-header.
        let mut loris = TcpStream::connect(server.local_addr()).unwrap();
        loris
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        {
            let mut r = BufReader::new(loris.try_clone().unwrap());
            read_frame(&mut r).unwrap().expect("hello");
        }
        loris.write_all(&[7u8, 0]).unwrap(); // 2 of 4 header bytes, then silence
        std::thread::sleep(Duration::from_millis(400));
        // The server must have closed the stalled connection…
        loris.write_all(&[0u8, 0]).ok(); // complete the header (may already fail)
        let mut probe = [0u8; 1];
        let outcome = loris.read(&mut probe);
        assert!(
            matches!(outcome, Ok(0) | Err(_)),
            "stalled connection must be closed, got {outcome:?}"
        );
        // …while the idle one still serves.
        let r = idle
            .request_one(WireRequest::iterations(toy::A, 2))
            .unwrap();
        assert!(r.answer().is_some());
        drop(idle);
        server.shutdown();
    }

    #[test]
    fn client_times_out_instead_of_hanging_on_a_silent_server() {
        // A listener that accepts but never says hello: the old client
        // blocked forever here; the typed path must fail within the read
        // timeout.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || {
            let conn = listener.accept().map(|(s, _)| s);
            std::thread::sleep(Duration::from_secs(2));
            drop(conn);
        });
        let started = Instant::now();
        let err = Client::connect_with(
            addr,
            ClientOptions {
                connect_timeout: Some(Duration::from_secs(5)),
                read_timeout: Some(Duration::from_millis(100)),
                write_timeout: Some(Duration::from_millis(100)),
            },
        )
        .unwrap_err();
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "must not wait out the silent server"
        );
        assert!(
            matches!(ClientError::from(err), ClientError::Timeout(_)),
            "a silent server is a typed timeout"
        );
        hold.join().unwrap();
    }

    #[test]
    fn resilient_client_reconnects_when_the_server_comes_back() {
        // Claim a port, then leave nothing listening on it.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let mut rc = ResilientClient::new(
            addr,
            ClientOptions::default(),
            RetryPolicy {
                max_attempts: 3,
                base_backoff: Duration::from_millis(2),
                max_backoff: Duration::from_millis(20),
            },
        )
        .with_jitter_seed(42);
        // Dead server: the bounded retry budget is exhausted and the
        // failure surfaces typed and retryable — no infinite loop, no
        // hang.
        let err = rc
            .request_one(WireRequest::iterations(toy::A, 2))
            .unwrap_err();
        assert!(err.is_retryable(), "dead server must be retryable: {err}");
        // Server appears on the claimed port: the same client heals
        // transparently on its next call.
        let service = toy_service();
        let server = serve(
            Arc::clone(&service),
            TcpListener::bind(addr).expect("rebind the claimed port"),
        )
        .unwrap();
        assert_eq!(rc.connect().unwrap(), 8);
        let healed = rc.request_one(WireRequest::iterations(toy::A, 2)).unwrap();
        assert!(healed.answer().is_some(), "reconnect must heal: {healed:?}");
        server.shutdown();
    }

    #[test]
    fn retry_policy_backoff_grows_and_caps() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(60),
        };
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(3), Duration::from_millis(40));
        assert_eq!(p.backoff(4), Duration::from_millis(60), "capped");
        assert_eq!(p.backoff(30), Duration::from_millis(60), "no overflow");
        // Jitter stays within [wait/2, wait] — never below half the
        // intended backoff, never above the cap — and actually spreads
        // (a fleet of clients must desynchronize, not march in lockstep).
        let mut rc =
            ResilientClient::new("127.0.0.1:1".parse().unwrap(), ClientOptions::default(), p)
                .with_jitter_seed(7);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..100 {
            let j = rc.jittered(Duration::from_millis(100));
            assert!(j >= Duration::from_millis(50) && j <= Duration::from_millis(100));
            distinct.insert(j.as_nanos());
        }
        assert!(
            distinct.len() > 50,
            "jitter must spread: {}",
            distinct.len()
        );
        // Same seed, same delays: reproducible tests.
        let mut a =
            ResilientClient::new("127.0.0.1:1".parse().unwrap(), ClientOptions::default(), p)
                .with_jitter_seed(11);
        let mut b =
            ResilientClient::new("127.0.0.1:2".parse().unwrap(), ClientOptions::default(), p)
                .with_jitter_seed(11);
        for _ in 0..10 {
            assert_eq!(
                a.jittered(Duration::from_millis(64)),
                b.jittered(Duration::from_millis(64))
            );
        }
    }

    #[test]
    fn engine_matches_queryengine_reference() {
        // Guard against drift between `ServingState::engine` and a
        // hand-built QueryEngine over the same pieces.
        let service = toy_service();
        let state = service.snapshot();
        let by_state = state
            .engine(*service.config())
            .query(toy::B, &StoppingCondition::iterations(2));
        let by_hand = QueryEngine::new(
            state.graph(),
            state.hubs(),
            state.store().as_ref(),
            *service.config(),
        )
        .query(toy::B, &StoppingCondition::iterations(2));
        assert_eq!(by_state.scores, by_hand.scores);
    }
}
