//! Length-prefixed binary TCP front-end for the query service.
//!
//! The stdin/stdout serving loop is fine for pipelines, but measuring tail
//! latency with queueing effects — and serving real remote traffic — needs
//! a socket. This module speaks a deliberately tiny protocol over TCP:
//! every message is one *frame* (`u32` little-endian payload length, then
//! the payload), the server greets each connection with a hello frame, and
//! after that the client sends request-batch frames and receives one
//! response-batch frame per request frame, answers in request order.
//!
//! ## Wire format (version 1, all integers little-endian)
//!
//! ```text
//! frame          := len:u32 payload[len]            (len ≤ 64 MiB)
//! hello          := magic:u32 ("FPPV" = 0x46505056) version:u16 num_nodes:u64
//! request-batch  := count:u32 request*
//! request        := query:u32 top_k:u32 deadline_ms:u32 stop
//!                   -- top_k 0 returns the full score vector
//!                   -- deadline_ms 0xFFFF_FFFF means "no deadline";
//!                      otherwise a *relative* budget in milliseconds from
//!                      server receipt (an absolute `Instant` does not
//!                      serialize; queue wait counts against it)
//! stop           := 0:u8 eta:u32                    (iteration budget η)
//!                 | 1:u8 l1_target:f64              (accuracy target φ)
//! response-batch := count:u32 response*
//! response       := 0:u8 answer | 1:u8 msg_len:u32 msg[msg_len]
//! answer         := query:u32 iterations:u32 l1_error:f64 exhausted:u8
//!                   cached:u8 latency_ns:u64 n:u32 (node:u32 score:f64)*n
//! ```
//!
//! A malformed frame closes the connection; a *well-formed* request for an
//! out-of-range node gets a per-request error response (the connection —
//! and the batch's other requests — are unaffected). Validation happens
//! against the same pinned snapshot the batch executes on, so a
//! concurrently published update can never turn a validated id into a
//! panic.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fastppv_core::query::StoppingCondition;
use fastppv_core::PpvStore;
use fastppv_graph::NodeId;

use crate::service::{QueryService, Request, Response};

/// Protocol magic: `"FPPV"` read as a little-endian `u32`.
pub const MAGIC: u32 = 0x4650_5056;
/// Current protocol version.
pub const PROTOCOL_VERSION: u16 = 1;
/// Upper bound on a frame payload; larger frames are a protocol error.
pub const MAX_FRAME_BYTES: usize = 64 << 20;
/// Upper bound on requests per batch frame (a protocol error beyond it).
/// Bounds the worst-case response: even a batch of all-error responses
/// stays far below [`MAX_FRAME_BYTES`], and a batch whose *answers*
/// overflow the frame cap degrades into per-request errors instead of
/// killing the connection (see [`serve`]).
pub const MAX_BATCH_REQUESTS: usize = 1 << 16;
/// Concurrent connections the server accepts; beyond it new connections
/// are closed before the hello frame (admission control — each connection
/// gets a thread, and each in-flight batch its own scoped worker set, so
/// the cap bounds total threads).
pub const MAX_CONNECTIONS: usize = 1024;
/// `deadline_ms` sentinel for "no deadline".
const NO_DEADLINE: u32 = u32::MAX;

/// Per-request stopping condition on the wire.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WireStop {
    /// Run exactly this many increments (η).
    Iterations(u32),
    /// Iterate until the guaranteed L1 error φ falls below the target.
    L1Error(f64),
}

/// One query as sent by a client.
#[derive(Clone, Copy, Debug)]
pub struct WireRequest {
    /// The query node.
    pub query: NodeId,
    /// When to stop iterating.
    pub stop: WireStop,
    /// Relative deadline in milliseconds from server receipt (`None` = no
    /// deadline). Queue wait on the server counts against it.
    pub deadline_ms: Option<u32>,
    /// How many top entries to return; 0 returns the full score vector.
    pub top_k: u32,
}

impl WireRequest {
    /// A request running exactly `eta` increments, returning the full
    /// score vector.
    pub fn iterations(query: NodeId, eta: u32) -> Self {
        WireRequest {
            query,
            stop: WireStop::Iterations(eta),
            deadline_ms: None,
            top_k: 0,
        }
    }

    /// A request running until `φ ≤ target`.
    pub fn l1_error(query: NodeId, target: f64) -> Self {
        WireRequest {
            query,
            stop: WireStop::L1Error(target),
            deadline_ms: None,
            top_k: 0,
        }
    }

    /// Caps the response to the `k` highest-scoring entries.
    pub fn with_top_k(mut self, k: u32) -> Self {
        self.top_k = k;
        self
    }

    /// Adds a relative deadline in milliseconds from server receipt.
    pub fn with_deadline_ms(mut self, ms: u32) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    fn to_request(self, received: Instant) -> Request {
        let stop = match self.stop {
            WireStop::Iterations(eta) => StoppingCondition::iterations(eta as usize),
            WireStop::L1Error(target) => StoppingCondition::l1_error(target),
        };
        Request {
            query: self.query,
            stop,
            deadline: self
                .deadline_ms
                .map(|ms| received + Duration::from_millis(ms as u64)),
        }
    }
}

/// A served answer as decoded by a client.
#[derive(Clone, Debug)]
pub struct WireAnswer {
    /// The query node.
    pub query: NodeId,
    /// Increments run beyond iteration 0.
    pub iterations: u32,
    /// Accuracy-aware L1 error φ of the estimate.
    pub l1_error: f64,
    /// Whether the expansion frontier emptied.
    pub exhausted: bool,
    /// Whether the server's hot-PPV cache served this answer.
    pub cached: bool,
    /// Server-side service latency (queue wait within the batch included).
    pub latency: Duration,
    /// Score entries: the full vector (ascending node id) when the request
    /// asked `top_k = 0`, else the `top_k` best scores in descending order.
    pub entries: Vec<(NodeId, f64)>,
}

/// One per-request outcome in a response batch.
#[derive(Clone, Debug)]
pub enum WireResponse {
    /// The query was served.
    Answer(WireAnswer),
    /// The request was rejected (e.g. node out of range); the rest of the
    /// batch is unaffected.
    Error(String),
}

impl WireResponse {
    /// The answer, if the request was served.
    pub fn answer(&self) -> Option<&WireAnswer> {
        match self {
            WireResponse::Answer(a) => Some(a),
            WireResponse::Error(_) => None,
        }
    }

    /// The rejection message, if the request failed.
    pub fn error(&self) -> Option<&str> {
        match self {
            WireResponse::Answer(_) => None,
            WireResponse::Error(e) => Some(e),
        }
    }
}

// ---------------------------------------------------------------------------
// Encoding / decoding
// ---------------------------------------------------------------------------

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Bounds-checked little-endian reader over a frame payload.
struct Payload<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Payload<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Payload { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad_data("truncated frame payload"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn finish(self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(bad_data(format!(
                "{} trailing bytes after frame payload",
                self.buf.len() - self.pos
            )))
        }
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    assert!(payload.len() <= MAX_FRAME_BYTES, "oversized outgoing frame");
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on a clean EOF at a frame boundary.
fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(bad_data(format!("frame of {len} bytes exceeds the cap")));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

fn encode_hello(num_nodes: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(14);
    put_u32(&mut buf, MAGIC);
    buf.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    put_u64(&mut buf, num_nodes);
    buf
}

fn decode_hello(payload: &[u8]) -> io::Result<u64> {
    let mut p = Payload::new(payload);
    if p.u32()? != MAGIC {
        return Err(bad_data("bad magic: not a fastppv server"));
    }
    let version = p.u16()?;
    if version != PROTOCOL_VERSION {
        return Err(bad_data(format!(
            "protocol version {version} (this client speaks {PROTOCOL_VERSION})"
        )));
    }
    let num_nodes = p.u64()?;
    p.finish()?;
    Ok(num_nodes)
}

fn encode_request_batch(requests: &[WireRequest]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + requests.len() * 17);
    put_u32(&mut buf, requests.len() as u32);
    for r in requests {
        put_u32(&mut buf, r.query);
        put_u32(&mut buf, r.top_k);
        put_u32(&mut buf, r.deadline_ms.unwrap_or(NO_DEADLINE));
        match r.stop {
            WireStop::Iterations(eta) => {
                buf.push(0);
                put_u32(&mut buf, eta);
            }
            WireStop::L1Error(target) => {
                buf.push(1);
                put_f64(&mut buf, target);
            }
        }
    }
    buf
}

fn decode_request_batch(payload: &[u8]) -> io::Result<Vec<WireRequest>> {
    let mut p = Payload::new(payload);
    let count = p.u32()? as usize;
    // The smallest request is 17 bytes; a count the payload cannot hold is
    // rejected before any allocation trusts it, as is a batch past the
    // response-size cap.
    if count > payload.len() / 17 {
        return Err(bad_data(format!("request count {count} overruns frame")));
    }
    if count > MAX_BATCH_REQUESTS {
        return Err(bad_data(format!(
            "request count {count} exceeds the per-frame cap ({MAX_BATCH_REQUESTS})"
        )));
    }
    let mut requests = Vec::with_capacity(count);
    for _ in 0..count {
        let query = p.u32()?;
        let top_k = p.u32()?;
        let deadline = p.u32()?;
        let stop = match p.u8()? {
            0 => WireStop::Iterations(p.u32()?),
            1 => WireStop::L1Error(p.f64()?),
            tag => return Err(bad_data(format!("unknown stop tag {tag}"))),
        };
        requests.push(WireRequest {
            query,
            stop,
            deadline_ms: (deadline != NO_DEADLINE).then_some(deadline),
            top_k,
        });
    }
    p.finish()?;
    Ok(requests)
}

fn encode_response_batch(responses: &[WireResponse]) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u32(&mut buf, responses.len() as u32);
    for r in responses {
        match r {
            WireResponse::Error(msg) => {
                buf.push(1);
                put_u32(&mut buf, msg.len() as u32);
                buf.extend_from_slice(msg.as_bytes());
            }
            WireResponse::Answer(a) => {
                buf.push(0);
                put_u32(&mut buf, a.query);
                put_u32(&mut buf, a.iterations);
                put_f64(&mut buf, a.l1_error);
                buf.push(a.exhausted as u8);
                buf.push(a.cached as u8);
                put_u64(&mut buf, a.latency.as_nanos().min(u64::MAX as u128) as u64);
                put_u32(&mut buf, a.entries.len() as u32);
                for &(node, score) in &a.entries {
                    put_u32(&mut buf, node);
                    put_f64(&mut buf, score);
                }
            }
        }
    }
    buf
}

fn decode_response_batch(payload: &[u8]) -> io::Result<Vec<WireResponse>> {
    let mut p = Payload::new(payload);
    // The smallest response (an empty error) is 5 bytes; reject counts the
    // payload cannot hold before sizing any allocation off them.
    let count = p.u32()? as usize;
    if count > payload.len() / 5 {
        return Err(bad_data(format!("response count {count} overruns frame")));
    }
    let mut responses = Vec::with_capacity(count);
    for _ in 0..count {
        match p.u8()? {
            1 => {
                let len = p.u32()? as usize;
                let msg = std::str::from_utf8(p.take(len)?)
                    .map_err(|_| bad_data("error message is not UTF-8"))?;
                responses.push(WireResponse::Error(msg.to_string()));
            }
            0 => {
                let query = p.u32()?;
                let iterations = p.u32()?;
                let l1_error = p.f64()?;
                let exhausted = p.u8()? != 0;
                let cached = p.u8()? != 0;
                let latency = Duration::from_nanos(p.u64()?);
                let n = p.u32()? as usize;
                if n > payload.len() / 12 {
                    return Err(bad_data(format!("entry count {n} overruns frame")));
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let node = p.u32()?;
                    let score = p.f64()?;
                    entries.push((node, score));
                }
                responses.push(WireResponse::Answer(WireAnswer {
                    query,
                    iterations,
                    l1_error,
                    exhausted,
                    cached,
                    latency,
                    entries,
                }));
            }
            tag => return Err(bad_data(format!("unknown response tag {tag}"))),
        }
    }
    p.finish()?;
    Ok(responses)
}

fn answer_of(response: &Response, top_k: u32) -> WireAnswer {
    let entries = if top_k == 0 {
        response.scores.entries().to_vec()
    } else {
        response.top_k(top_k as usize)
    };
    WireAnswer {
        query: response.query,
        iterations: response.iterations as u32,
        l1_error: response.l1_error,
        exhausted: response.exhausted,
        cached: response.cached,
        latency: response.latency,
        entries,
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// A running TCP front-end: a thread-per-connection acceptor feeding the
/// service's worker pool. Dropped or [`NetServer::shutdown`]: stops
/// accepting and joins the acceptor (connections already established run
/// until their client disconnects).
pub struct NetServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl NetServer {
    /// The address the server is listening on (resolves port 0 binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Blocks until the acceptor exits (i.e. forever, absent a shutdown
    /// from another handle or a listener error). The CLI's
    /// `serve --listen` foreground mode.
    pub fn wait(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }

    /// Stops accepting new connections and joins the acceptor.
    pub fn shutdown(mut self) {
        self.signal_and_join();
    }

    fn signal_and_join(&mut self) {
        let Some(handle) = self.acceptor.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // Poke the blocking accept() so it observes the flag.
        let _ = TcpStream::connect(self.local_addr);
        let _ = handle.join();
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.signal_and_join();
    }
}

/// Starts serving `service` on `listener`: one acceptor thread plus one
/// thread per connection, each feeding whole request-batch frames to
/// [`QueryService::process_batch`]'s scoped worker set. Returns
/// immediately with a [`NetServer`] handle.
///
/// Threading model, explicitly: the batching worker pool is *per
/// in-flight batch* (bounded by `options.workers`), so total compute
/// threads scale with concurrent connections × workers. The
/// [`MAX_CONNECTIONS`] admission cap bounds that product; past it, new
/// connections are closed before the hello frame (a connecting
/// [`Client`] sees "server closed before sending hello"). Size
/// `options.workers` for the *expected concurrency*, not the core count
/// alone, when many simultaneous connections are the workload.
pub fn serve<S: PpvStore + Send + Sync + 'static>(
    service: Arc<QueryService<S>>,
    listener: TcpListener,
) -> io::Result<NetServer> {
    let local_addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let active = Arc::new(AtomicUsize::new(0));
    let acceptor = std::thread::Builder::new()
        .name("fastppv-accept".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::Acquire) {
                    break;
                }
                let stream = match conn {
                    Ok(stream) => stream,
                    Err(_) => {
                        // Persistent accept failures (fd exhaustion) yield
                        // Err immediately and repeatedly; back off instead
                        // of busy-spinning the acceptor at 100% CPU.
                        std::thread::sleep(Duration::from_millis(10));
                        continue;
                    }
                };
                // Admission control: past the cap, close before hello. The
                // slot is released by a Drop guard so a panicking handler
                // cannot leak it and starve future connections.
                if active.fetch_add(1, Ordering::AcqRel) >= MAX_CONNECTIONS {
                    active.fetch_sub(1, Ordering::AcqRel);
                    drop(stream);
                    continue;
                }
                let slot = SlotGuard(Arc::clone(&active));
                let service = Arc::clone(&service);
                // If the spawn itself fails, the closure — and the guard
                // inside it — is dropped here, releasing the slot.
                let _ = std::thread::Builder::new()
                    .name("fastppv-conn".into())
                    .spawn(move || {
                        let _slot = slot;
                        // A protocol error or broken pipe closes just this
                        // connection; the acceptor keeps serving others.
                        let _ = handle_connection(&service, stream);
                    });
            }
        })?;
    Ok(NetServer {
        local_addr,
        stop,
        acceptor: Some(acceptor),
    })
}

/// Releases one admission slot on drop — including on unwind, so a panic
/// inside a connection handler cannot permanently shrink the accept cap.
struct SlotGuard(Arc<AtomicUsize>);

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

fn handle_connection<S: PpvStore + Send + Sync>(
    service: &QueryService<S>,
    stream: TcpStream,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    write_frame(
        &mut writer,
        &encode_hello(service.snapshot().graph().num_nodes() as u64),
    )?;
    while let Some(payload) = read_frame(&mut reader)? {
        let wire_requests = decode_request_batch(&payload)?;
        let received = Instant::now();
        // Pin one snapshot for the whole frame: ids are validated against
        // the exact graph the batch will run on, so a concurrent update
        // cannot invalidate the check mid-flight.
        let state = service.snapshot();
        let mut slots: Vec<Option<WireResponse>> = Vec::new();
        slots.resize_with(wire_requests.len(), || None);
        let mut batch: Vec<Request> = Vec::with_capacity(wire_requests.len());
        let mut batch_slots: Vec<usize> = Vec::with_capacity(wire_requests.len());
        for (i, wr) in wire_requests.iter().enumerate() {
            match crate::service::check_in_range(state.graph(), wr.query) {
                Err(e) => slots[i] = Some(WireResponse::Error(e)),
                Ok(()) => {
                    batch.push(wr.to_request(received));
                    batch_slots.push(i);
                }
            }
        }
        let responses = service.process_batch_on(&state, batch);
        for (&slot, response) in batch_slots.iter().zip(&responses) {
            slots[slot] = Some(WireResponse::Answer(answer_of(
                response,
                wire_requests[slot].top_k,
            )));
        }
        let out: Vec<WireResponse> = slots
            .into_iter()
            .map(|s| s.expect("every request got a slot"))
            .collect();
        let mut encoded = encode_response_batch(&out);
        if encoded.len() > MAX_FRAME_BYTES {
            // A well-formed batch whose *answers* (full score vectors on a
            // big graph) overflow the frame cap degrades into per-request
            // errors — bounded by MAX_BATCH_REQUESTS, so this frame always
            // fits — instead of killing the connection.
            let errors: Vec<WireResponse> = out
                .iter()
                .map(|r| match r {
                    WireResponse::Error(e) => WireResponse::Error(e.clone()),
                    WireResponse::Answer(a) => WireResponse::Error(format!(
                        "response batch exceeds the {} MiB frame cap; request \
                         fewer entries (top_k) or smaller batches (answer for \
                         node {} alone held {} entries)",
                        MAX_FRAME_BYTES >> 20,
                        a.query,
                        a.entries.len()
                    )),
                })
                .collect();
            encoded = encode_response_batch(&errors);
        }
        write_frame(&mut writer, &encoded)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// A blocking client for the fastppv TCP protocol (one connection, one
/// outstanding request frame at a time).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    num_nodes: u64,
}

impl Client {
    /// Connects and consumes the server's hello frame.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        let hello = read_frame(&mut reader)?
            .ok_or_else(|| bad_data("server closed before sending hello"))?;
        let num_nodes = decode_hello(&hello)?;
        Ok(Client {
            reader,
            writer,
            num_nodes,
        })
    }

    /// Number of graph nodes the server announced at connect time.
    pub fn num_nodes(&self) -> u64 {
        self.num_nodes
    }

    /// Sends one request batch and blocks for the response batch
    /// (responses in request order, one per request). Batches above
    /// [`MAX_BATCH_REQUESTS`] are rejected here with a precise error —
    /// the server would reject the frame and close the connection.
    pub fn request_batch(&mut self, requests: &[WireRequest]) -> io::Result<Vec<WireResponse>> {
        if requests.len() > MAX_BATCH_REQUESTS {
            return Err(bad_data(format!(
                "batch of {} requests exceeds the per-frame cap ({MAX_BATCH_REQUESTS})",
                requests.len()
            )));
        }
        write_frame(&mut self.writer, &encode_request_batch(requests))?;
        let payload =
            read_frame(&mut self.reader)?.ok_or_else(|| bad_data("server closed mid-request"))?;
        let responses = decode_response_batch(&payload)?;
        if responses.len() != requests.len() {
            return Err(bad_data(format!(
                "{} responses for {} requests",
                responses.len(),
                requests.len()
            )));
        }
        Ok(responses)
    }

    /// Sends a single request and blocks for its response.
    pub fn request_one(&mut self, request: WireRequest) -> io::Result<WireResponse> {
        let mut responses = self.request_batch(std::slice::from_ref(&request))?;
        Ok(responses.remove(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceOptions;
    use fastppv_core::offline::build_index;
    use fastppv_core::{Config, HubSet, MemoryIndex, QueryEngine};
    use fastppv_graph::toy;

    fn toy_service() -> Arc<QueryService<MemoryIndex>> {
        let g = toy::graph();
        let hubs = HubSet::from_ids(8, toy::PAPER_HUBS.to_vec());
        let config = Config::exhaustive();
        let (index, _) = build_index(&g, &hubs, &config);
        Arc::new(QueryService::new(
            Arc::new(g),
            Arc::new(hubs),
            Arc::new(index),
            config,
            ServiceOptions {
                workers: 2,
                queue_capacity: 8,
                cache_capacity: 16,
            },
        ))
    }

    #[test]
    fn request_batch_round_trips() {
        let requests = vec![
            WireRequest::iterations(3, 2),
            WireRequest::l1_error(5, 0.125).with_top_k(7),
            WireRequest::iterations(0, 9).with_deadline_ms(1500),
        ];
        let decoded = decode_request_batch(&encode_request_batch(&requests)).unwrap();
        assert_eq!(decoded.len(), 3);
        for (a, b) in requests.iter().zip(&decoded) {
            assert_eq!(a.query, b.query);
            assert_eq!(a.stop, b.stop);
            assert_eq!(a.deadline_ms, b.deadline_ms);
            assert_eq!(a.top_k, b.top_k);
        }
    }

    #[test]
    fn response_batch_round_trips() {
        let responses = vec![
            WireResponse::Answer(WireAnswer {
                query: 4,
                iterations: 3,
                l1_error: 0.25,
                exhausted: true,
                cached: false,
                latency: Duration::from_micros(1234),
                entries: vec![(1, 0.5), (7, 0.25)],
            }),
            WireResponse::Error("node 99 out of range".into()),
        ];
        let decoded = decode_response_batch(&encode_response_batch(&responses)).unwrap();
        let a = decoded[0].answer().unwrap();
        assert_eq!((a.query, a.iterations), (4, 3));
        assert_eq!(a.l1_error, 0.25);
        assert!(a.exhausted && !a.cached);
        assert_eq!(a.latency, Duration::from_micros(1234));
        assert_eq!(a.entries, vec![(1, 0.5), (7, 0.25)]);
        assert_eq!(decoded[1].error(), Some("node 99 out of range"));
    }

    #[test]
    fn truncated_and_trailing_payloads_are_rejected() {
        let good = encode_request_batch(&[WireRequest::iterations(1, 2)]);
        assert!(decode_request_batch(&good[..good.len() - 1]).is_err());
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(decode_request_batch(&trailing).is_err());
        // A count that the payload cannot possibly hold is rejected early.
        let mut huge = Vec::new();
        put_u32(&mut huge, u32::MAX);
        assert!(decode_request_batch(&huge).is_err());
        assert!(decode_hello(&encode_hello(5)[..3]).is_err());
        assert_eq!(decode_hello(&encode_hello(42)).unwrap(), 42);
    }

    #[test]
    fn batch_and_count_caps_are_enforced() {
        // A frame large enough to hold MAX_BATCH_REQUESTS + 1 requests is
        // still rejected by the per-frame cap (bounds the response size).
        let over = MAX_BATCH_REQUESTS + 1;
        let mut payload = vec![0u8; 4 + over * 17];
        payload[..4].copy_from_slice(&(over as u32).to_le_bytes());
        let err = decode_request_batch(&payload).unwrap_err();
        assert!(err.to_string().contains("per-frame cap"), "{err}");
        // A response count the payload cannot hold is rejected before any
        // allocation is sized off it (client-side OOM guard).
        let mut bogus = Vec::new();
        put_u32(&mut bogus, 1000);
        let err = decode_response_batch(&bogus).unwrap_err();
        assert!(err.to_string().contains("overruns frame"), "{err}");
    }

    #[test]
    fn loopback_serves_exact_answers_and_per_request_errors() {
        let service = toy_service();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let server = serve(Arc::clone(&service), listener).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        assert_eq!(client.num_nodes(), 8);

        let responses = client
            .request_batch(&[
                WireRequest::iterations(toy::A, 3),
                WireRequest::iterations(99, 3), // out of range
                WireRequest::iterations(toy::E, 2).with_top_k(2),
            ])
            .unwrap();
        assert_eq!(responses.len(), 3);

        let state = service.snapshot();
        let engine = state.engine(*service.config());
        let direct = engine.query(toy::A, &StoppingCondition::iterations(3));
        let a = responses[0].answer().unwrap();
        assert_eq!(a.entries, direct.scores.entries().to_vec());
        assert_eq!(a.iterations as usize, direct.iterations);
        assert!((a.l1_error - direct.l1_error).abs() < 1e-15);

        let err = responses[1].error().unwrap();
        assert!(err.contains("out of range"), "{err}");

        let top2 = responses[2].answer().unwrap();
        let direct_e = engine.query(toy::E, &StoppingCondition::iterations(2));
        assert_eq!(top2.entries, direct_e.scores.top_k(2));

        // The connection survived the per-request error.
        let again = client
            .request_one(WireRequest::iterations(toy::A, 3))
            .unwrap();
        let again = again.answer().unwrap();
        assert!(again.cached, "repeat deterministic request hits the cache");
        assert_eq!(again.entries, direct.scores.entries().to_vec());

        drop(client);
        server.shutdown();
    }

    #[test]
    fn loopback_expired_deadline_stops_immediately() {
        let service = toy_service();
        let server = serve(
            Arc::clone(&service),
            TcpListener::bind("127.0.0.1:0").unwrap(),
        )
        .unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let r = client
            .request_one(WireRequest::iterations(toy::A, 50).with_deadline_ms(0))
            .unwrap();
        let a = r.answer().unwrap();
        assert_eq!(a.iterations, 0, "0 ms deadline must stop at iteration 0");
        drop(client);
        server.shutdown();
    }

    #[test]
    fn engine_matches_queryengine_reference() {
        // Guard against drift between `ServingState::engine` and a
        // hand-built QueryEngine over the same pieces.
        let service = toy_service();
        let state = service.snapshot();
        let by_state = state
            .engine(*service.config())
            .query(toy::B, &StoppingCondition::iterations(2));
        let by_hand = QueryEngine::new(
            state.graph(),
            state.hubs(),
            state.store().as_ref(),
            *service.config(),
        )
        .query(toy::B, &StoppingCondition::iterations(2));
        assert_eq!(by_state.scores, by_hand.scores);
    }
}
