//! A true LRU cache with O(1) get/insert (hash map + intrusive list).
//!
//! The disk index ships a FIFO read cache (good enough below the store);
//! the *service* cache sits in front of whole query results, where repeat
//! traffic is Zipf-skewed and recency actually matters, so this one pays
//! for the doubly-linked bookkeeping. Entries live in a slab indexed by the
//! map; the list threads through the slab, most-recently-used first.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used cache.
///
/// `get` refreshes recency; `insert` evicts the least-recently-used entry
/// once `capacity` is reached. A capacity of 0 disables the cache (inserts
/// are dropped).
pub struct LruCache<K: Eq + Hash + Clone, V> {
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// A cache holding at most `capacity` entries. Storage grows lazily
    /// (capacity may legitimately be huge and never filled).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::with_capacity(capacity.min(1024)),
            slots: Vec::with_capacity(capacity.min(1024)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let &idx = self.map.get(key)?;
        self.detach(idx);
        self.attach_front(idx);
        Some(&self.slots[idx].value)
    }

    /// Looks up `key` without touching recency.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&idx| &self.slots[idx].value)
    }

    /// Inserts (or replaces) `key`, evicting the least-recently-used entry
    /// if the cache is full. The inserted entry becomes most recently used.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.slots[idx].value = value;
            self.detach(idx);
            self.attach_front(idx);
            return;
        }
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.detach(lru);
            self.map.remove(&self.slots[lru].key);
            self.free.push(lru);
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                };
                idx
            }
            None => {
                self.slots.push(Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.attach_front(idx);
    }

    /// Removes every entry, returning how many were dropped.
    pub fn clear(&mut self) -> usize {
        let n = self.map.len();
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        n
    }

    /// The key that would be evicted next, if any (test/diagnostic hook).
    pub fn lru_key(&self) -> Option<&K> {
        (self.tail != NIL).then(|| &self.slots[self.tail].key)
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.slots[idx].prev = NIL;
        self.slots[idx].next = NIL;
    }

    fn attach_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut c = LruCache::new(4);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"b"), Some(&2));
        assert_eq!(c.get(&"c"), None);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.get(&"a"); // refresh a; b becomes LRU
        c.insert("c", 3);
        assert_eq!(c.get(&"b"), None, "b was LRU and must be evicted");
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn eviction_order_without_touches_is_fifo() {
        let mut c = LruCache::new(3);
        for (i, k) in ["a", "b", "c"].into_iter().enumerate() {
            c.insert(k, i);
        }
        assert_eq!(c.lru_key(), Some(&"a"));
        c.insert("d", 9);
        assert_eq!(c.peek(&"a"), None);
        assert_eq!(c.lru_key(), Some(&"b"));
    }

    #[test]
    fn replace_updates_value_and_recency_without_growth() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10); // replace: a becomes MRU, len stays 2
        assert_eq!(c.len(), 2);
        c.insert("c", 3); // evicts b, not a
        assert_eq!(c.peek(&"b"), None);
        assert_eq!(c.peek(&"a"), Some(&10));
    }

    #[test]
    fn peek_does_not_refresh() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.peek(&"a"); // no recency change: a stays LRU
        c.insert("c", 3);
        assert_eq!(c.peek(&"a"), None);
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c = LruCache::new(0);
        c.insert("a", 1);
        assert!(c.is_empty());
        assert_eq!(c.get(&"a"), None);
    }

    #[test]
    fn clear_empties_and_reports_count() {
        let mut c = LruCache::new(4);
        c.insert(1u32, "x");
        c.insert(2, "y");
        assert_eq!(c.clear(), 2);
        assert!(c.is_empty());
        assert_eq!(c.lru_key(), None);
        c.insert(3, "z"); // usable after clear
        assert_eq!(c.get(&3), Some(&"z"));
    }

    #[test]
    fn slab_reuse_after_eviction_is_consistent() {
        let mut c = LruCache::new(2);
        for i in 0..100u32 {
            c.insert(i, i * 2);
        }
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&99), Some(&198));
        assert_eq!(c.get(&98), Some(&196));
        assert_eq!(c.get(&97), None);
    }
}
