//! The concurrent query service: one shared read-only engine, a fixed-size
//! worker pool over a bounded submission queue, and a hot-PPV result cache.
//!
//! FastPPV's online phase is read-only over the graph, hub set, and index,
//! so a single [`QueryEngine`] serves every worker; each worker brings its
//! own [`QueryWorkspace`] (the only per-query mutable state). Requests
//! carry their own stopping condition — iteration budget η, accuracy-aware
//! L1 target (Eq. 6), or a wall-clock deadline — so one deployment serves
//! latency-budgeted and accuracy-budgeted traffic side by side.
//!
//! Deterministic requests (pure iteration stops) are memoized in an LRU
//! cache keyed by `(query, η)`; [`QueryService::apply_update`] refreshes
//! the index after graph edits (via [`fastppv_core::dynamic`]) and
//! invalidates the cache, so hits can never serve stale scores.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use fastppv_core::dynamic::{refresh_flat_index, refresh_index, RefreshStats};
use fastppv_core::query::{QueryWorkspace, StoppingCondition};
use fastppv_core::{Config, FlatIndex, HubSet, MemoryIndex, PpvStore, QueryEngine};
use fastppv_graph::{Graph, NodeId, SparseVector};

use crate::cache::LruCache;

/// Sizing knobs of a [`QueryService`].
#[derive(Clone, Copy, Debug)]
pub struct ServiceOptions {
    /// Worker threads per batch (the paper's online phase is CPU-bound, so
    /// more than the core count buys nothing).
    pub workers: usize,
    /// Bound of the submission queue; submission blocks when the pool falls
    /// this far behind (backpressure instead of unbounded buffering).
    pub queue_capacity: usize,
    /// Entries in the hot-PPV result cache (0 disables caching).
    pub cache_capacity: usize,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            workers: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4),
            queue_capacity: 1024,
            cache_capacity: 4096,
        }
    }
}

impl ServiceOptions {
    fn validate(&self) {
        assert!(self.workers >= 1, "a service needs at least one worker");
        assert!(self.queue_capacity >= 1, "queue capacity must be positive");
    }
}

/// One query to serve.
#[derive(Clone, Copy, Debug)]
pub struct Request {
    /// The query node.
    pub query: NodeId,
    /// When to stop iterating (see [`StoppingCondition`]).
    pub stop: StoppingCondition,
    /// Absolute wall-clock deadline; converted to a remaining-time limit at
    /// execution, so time spent waiting in the queue counts against it.
    pub deadline: Option<Instant>,
}

impl Request {
    /// A request running exactly `eta` increments (cacheable).
    pub fn iterations(query: NodeId, eta: usize) -> Self {
        Request {
            query,
            stop: StoppingCondition::iterations(eta),
            deadline: None,
        }
    }

    /// A request running until `φ ≤ target`.
    pub fn l1_error(query: NodeId, target: f64) -> Self {
        Request {
            query,
            stop: StoppingCondition::l1_error(target),
            deadline: None,
        }
    }

    /// Adds an absolute deadline (disables caching for this request).
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// A served query.
#[derive(Clone, Debug)]
pub struct Response {
    /// The query node.
    pub query: NodeId,
    /// The PPV estimate (shared, so cache hits copy nothing).
    pub scores: Arc<SparseVector>,
    /// Accuracy-aware L1 error `φ` of the estimate (Eq. 6).
    pub l1_error: f64,
    /// Increments run beyond iteration 0.
    pub iterations: usize,
    /// Whether the expansion frontier emptied.
    pub exhausted: bool,
    /// Whether the hot-PPV cache served this response.
    pub cached: bool,
    /// Service-side latency: cache probe + (on a miss) engine time.
    pub latency: Duration,
}

impl Response {
    /// Top-`k` nodes by estimated score.
    pub fn top_k(&self, k: usize) -> Vec<(NodeId, f64)> {
        self.scores.top_k(k)
    }
}

/// The `p`-quantile (0 < p ≤ 1) of an unsorted latency sample, by the
/// nearest-rank definition (the smallest value with at least `p·n` of the
/// sample at or below it). Shared by the CLI serve summary and the bench
/// crate's closed-loop driver.
pub fn percentile(latencies: &[Duration], p: f64) -> Duration {
    assert!(p > 0.0 && p <= 1.0, "p must be in (0, 1]");
    if latencies.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = latencies.to_vec();
    sorted.sort_unstable();
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// A latency sample boiled down to the figures every serving report needs:
/// request count, median, and 99th percentile (nearest-rank, see
/// [`percentile`]). Used by the CLI serve summary and the bench crate's
/// closed-loop driver to report hub and non-hub sources separately —
/// hub-source requests are index lookups while cold non-hub sources run
/// the prime-PPV kernel, so their latency distributions are different
/// regimes and a pooled percentile hides the tail.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencySummary {
    /// Requests in the sample.
    pub queries: usize,
    /// Median latency.
    pub p50: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
}

impl LatencySummary {
    /// Summarizes an unsorted latency sample.
    pub fn of(latencies: &[Duration]) -> Self {
        LatencySummary {
            queries: latencies.len(),
            p50: percentile(latencies, 0.50),
            p99: percentile(latencies, 0.99),
        }
    }
}

/// Cache hit/miss counters and current size.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Cacheable requests answered from memory.
    pub hits: u64,
    /// Cacheable requests that ran the engine.
    pub misses: u64,
    /// Entries currently cached.
    pub entries: usize,
}

type CacheKey = (NodeId, u64);

struct CachedResult {
    scores: Arc<SparseVector>,
    l1_error: f64,
    iterations: usize,
    exhausted: bool,
}

/// A concurrent PPV query service over a shared read-only engine.
///
/// The graph, hub set, and store are held in `Arc`s: callers keep handles,
/// [`QueryService::apply_update`] swaps them atomically between batches.
pub struct QueryService<S: PpvStore + Send + Sync> {
    graph: Arc<Graph>,
    hubs: Arc<HubSet>,
    store: Arc<S>,
    config: Config,
    options: ServiceOptions,
    cache: Mutex<LruCache<CacheKey, Arc<CachedResult>>>,
    // Recycled per-worker scratch: graph-sized, so worth keeping across
    // batches instead of re-zeroing O(n) arrays every flush.
    workspaces: Mutex<Vec<QueryWorkspace>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<S: PpvStore + Send + Sync> QueryService<S> {
    /// Creates a service over a built deployment.
    pub fn new(
        graph: Arc<Graph>,
        hubs: Arc<HubSet>,
        store: Arc<S>,
        config: Config,
        options: ServiceOptions,
    ) -> Self {
        config.validate();
        options.validate();
        let cache = Mutex::new(LruCache::new(options.cache_capacity));
        QueryService {
            graph,
            hubs,
            store,
            config,
            options,
            cache,
            workspaces: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Pops a recycled workspace (or allocates one sized to the current
    /// graph). Recycled workspaces too small for the graph — possible
    /// after [`QueryService::apply_update`] grew it — are dropped.
    fn take_workspace(&self) -> QueryWorkspace {
        let n = self.graph.num_nodes();
        loop {
            match self.workspaces.lock().pop() {
                Some(ws) if ws.capacity() >= n => return ws,
                Some(_) => continue,
                None => return QueryWorkspace::new(n),
            }
        }
    }

    fn recycle_workspace(&self, ws: QueryWorkspace) {
        let mut pool = self.workspaces.lock();
        if pool.len() < self.options.workers {
            pool.push(ws);
        }
    }

    /// The graph currently served.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// The hub set currently served.
    pub fn hubs(&self) -> &Arc<HubSet> {
        &self.hubs
    }

    /// The PPV store currently served.
    pub fn store(&self) -> &Arc<S> {
        &self.store
    }

    /// The service configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The sizing options.
    pub fn options(&self) -> &ServiceOptions {
        &self.options
    }

    /// Cache hit/miss counters (cacheable requests only) and current size.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.cache.lock().len(),
        }
    }

    /// Drops every cached result, returning how many were evicted. Call
    /// after any out-of-band change to the graph or store;
    /// [`QueryService::apply_update`] does it automatically.
    pub fn invalidate_cache(&self) -> usize {
        self.cache.lock().clear()
    }

    /// Serves one request on the calling thread (no pool, no queue).
    pub fn query(&self, request: Request) -> Response {
        let engine = QueryEngine::new(&self.graph, &self.hubs, self.store.as_ref(), self.config);
        let mut ws = self.take_workspace();
        let response = self.execute(&engine, &mut ws, request);
        self.recycle_workspace(ws);
        response
    }

    /// Serves a batch through the worker pool: `options.workers` scoped
    /// threads share one engine (each with its own workspace) and drain a
    /// submission queue bounded at `options.queue_capacity`. Responses come
    /// back in request order.
    pub fn process_batch(&self, requests: Vec<Request>) -> Vec<Response> {
        let n = requests.len();
        if n == 0 {
            return Vec::new();
        }
        // Validate before spawning: an out-of-range id inside a worker
        // would kill the pool and surface as a misleading channel error.
        let nodes = self.graph.num_nodes();
        for r in &requests {
            assert!(
                (r.query as usize) < nodes,
                "query node {} out of range ({nodes} nodes)",
                r.query
            );
        }
        let engine = QueryEngine::new(&self.graph, &self.hubs, self.store.as_ref(), self.config);
        let workers = self.options.workers.min(n);
        if workers == 1 {
            let mut ws = self.take_workspace();
            let responses = requests
                .into_iter()
                .map(|r| self.execute(&engine, &mut ws, r))
                .collect();
            self.recycle_workspace(ws);
            return responses;
        }
        let (job_tx, job_rx) = mpsc::sync_channel::<(usize, Request)>(self.options.queue_capacity);
        let job_rx = Mutex::new(job_rx);
        let slots: Vec<Mutex<Option<Response>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut ws = self.take_workspace();
                    loop {
                        // Hold the receiver lock only for the dequeue, not
                        // for the query execution.
                        let job = job_rx.lock().recv();
                        let Ok((i, request)) = job else { break };
                        *slots[i].lock() = Some(self.execute(&engine, &mut ws, request));
                    }
                    self.recycle_workspace(ws);
                });
            }
            for job in requests.into_iter().enumerate() {
                // Blocks when the queue is full: bounded submission is the
                // backpressure mechanism. Workers only stop once the sender
                // is dropped, so this cannot fail.
                job_tx.send(job).expect("worker pool hung up early");
            }
            drop(job_tx);
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("every request is answered"))
            .collect()
    }

    /// A request is cacheable when its result is a pure function of
    /// `(query, η)`: an iteration-only stop and no deadline.
    fn cache_key(&self, request: &Request) -> Option<CacheKey> {
        if self.options.cache_capacity == 0 || request.deadline.is_some() {
            return None;
        }
        match request.stop {
            StoppingCondition {
                max_iterations: Some(eta),
                l1_target: None,
                time_limit: None,
            } => Some((request.query, eta as u64)),
            _ => None,
        }
    }

    fn execute(
        &self,
        engine: &QueryEngine<'_, S>,
        ws: &mut QueryWorkspace,
        request: Request,
    ) -> Response {
        let started = Instant::now();
        let key = self.cache_key(&request);
        if let Some(ref k) = key {
            let hit = self.cache.lock().get(k).cloned();
            if let Some(hit) = hit {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Response {
                    query: request.query,
                    scores: Arc::clone(&hit.scores),
                    l1_error: hit.l1_error,
                    iterations: hit.iterations,
                    exhausted: hit.exhausted,
                    cached: true,
                    latency: started.elapsed(),
                };
            }
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let mut stop = request.stop;
        if let Some(deadline) = request.deadline {
            // Queue wait counts against the deadline: the limit is whatever
            // time remains *now*, clamped below any explicit time limit.
            let remaining = deadline.saturating_duration_since(Instant::now());
            stop.time_limit = Some(stop.time_limit.map_or(remaining, |l| l.min(remaining)));
        }
        let result = engine.query_with(ws, request.query, &stop);
        let scores = Arc::new(result.scores);
        if let Some(k) = key {
            self.cache.lock().insert(
                k,
                Arc::new(CachedResult {
                    scores: Arc::clone(&scores),
                    l1_error: result.l1_error,
                    iterations: result.iterations,
                    exhausted: result.exhausted,
                }),
            );
        }
        Response {
            query: request.query,
            scores,
            l1_error: result.l1_error,
            iterations: result.iterations,
            exhausted: result.exhausted,
            cached: false,
            latency: started.elapsed(),
        }
    }
}

impl QueryService<MemoryIndex> {
    /// Applies a graph update: refreshes only the prime PPVs whose prime
    /// subgraphs the changed edges touch ([`fastppv_core::dynamic`]), swaps
    /// in the new graph and index, and invalidates the hot-PPV cache.
    ///
    /// `changed_tails` are the source nodes of every inserted or deleted
    /// edge (both endpoints for undirected edits).
    pub fn apply_update(&mut self, new_graph: Graph, changed_tails: &[NodeId]) -> RefreshStats {
        let (index, stats) = refresh_index(
            &self.store,
            &self.graph,
            &new_graph,
            &self.hubs,
            changed_tails,
            &self.config,
        );
        self.store = Arc::new(index);
        self.graph = Arc::new(new_graph);
        self.invalidate_cache();
        stats
    }
}

impl QueryService<FlatIndex> {
    /// Applies a graph update to a flat-arena deployment: affected
    /// segments are patched in place via
    /// [`fastppv_core::dynamic::refresh_flat_index`] (tombstone-and-append
    /// with threshold compaction), and the hot-PPV cache is invalidated.
    /// The arena is only deep-copied when a caller still holds the old
    /// `Arc` (copy-on-write via [`Arc::make_mut`]) — such readers keep
    /// seeing the pre-update arena, undisturbed.
    pub fn apply_update(&mut self, new_graph: Graph, changed_tails: &[NodeId]) -> RefreshStats {
        let flat = Arc::make_mut(&mut self.store);
        let stats = refresh_flat_index(
            flat,
            &self.graph,
            &new_graph,
            &self.hubs,
            changed_tails,
            &self.config,
        );
        self.graph = Arc::new(new_graph);
        self.invalidate_cache();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastppv_core::offline::build_index;
    use fastppv_core::HubSet;
    use fastppv_graph::toy;
    use fastppv_graph::GraphBuilder;

    fn toy_service(options: ServiceOptions) -> QueryService<MemoryIndex> {
        let g = toy::graph();
        let hubs = HubSet::from_ids(8, toy::PAPER_HUBS.to_vec());
        let config = Config::exhaustive();
        let (index, _) = build_index(&g, &hubs, &config);
        QueryService::new(
            Arc::new(g),
            Arc::new(hubs),
            Arc::new(index),
            config,
            options,
        )
    }

    #[test]
    fn latency_summary_matches_percentiles() {
        let ms = |v: u64| Duration::from_millis(v);
        let sample = vec![ms(9), ms(1), ms(5), ms(3), ms(7)];
        let s = LatencySummary::of(&sample);
        assert_eq!(s.queries, 5);
        assert_eq!(s.p50, ms(5));
        assert_eq!(s.p99, ms(9));
        let empty = LatencySummary::of(&[]);
        assert_eq!((empty.queries, empty.p50, empty.p99), (0, ms(0), ms(0)));
    }

    #[test]
    fn batch_matches_direct_engine() {
        let service = toy_service(ServiceOptions {
            workers: 4,
            queue_capacity: 2,
            cache_capacity: 0,
        });
        let requests: Vec<Request> = (0..8u32)
            .cycle()
            .take(32)
            .map(|q| Request::iterations(q, 3))
            .collect();
        let responses = service.process_batch(requests.clone());
        assert_eq!(responses.len(), 32);
        let engine = QueryEngine::new(
            service.graph(),
            service.hubs(),
            service.store().as_ref(),
            *service.config(),
        );
        for (req, resp) in requests.iter().zip(&responses) {
            assert_eq!(resp.query, req.query, "responses keep request order");
            let direct = engine.query(req.query, &req.stop);
            assert_eq!(*resp.scores, direct.scores);
            assert_eq!(resp.iterations, direct.iterations);
            assert!((resp.l1_error - direct.l1_error).abs() < 1e-15);
        }
    }

    #[test]
    fn cache_hits_are_identical_and_flagged() {
        let service = toy_service(ServiceOptions {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 16,
        });
        let first = service.query(Request::iterations(toy::A, 2));
        assert!(!first.cached);
        let second = service.query(Request::iterations(toy::A, 2));
        assert!(second.cached, "repeat (query, eta) must hit the cache");
        assert!(Arc::ptr_eq(&first.scores, &second.scores));
        assert_eq!(second.l1_error, first.l1_error);
        let stats = service.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // Different eta is a different key.
        let third = service.query(Request::iterations(toy::A, 3));
        assert!(!third.cached);
    }

    #[test]
    fn non_deterministic_requests_bypass_cache() {
        let service = toy_service(ServiceOptions {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 16,
        });
        for _ in 0..2 {
            let r = service.query(
                Request::iterations(toy::A, 1)
                    .with_deadline(Instant::now() + Duration::from_secs(5)),
            );
            assert!(!r.cached);
        }
        let l1 = service.query(Request::l1_error(toy::A, 0.05));
        assert!(!l1.cached);
        assert_eq!(service.cache_stats().entries, 0);
    }

    #[test]
    fn expired_deadline_stops_at_iteration_zero() {
        let service = toy_service(ServiceOptions {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 0,
        });
        let r = service.query(
            Request {
                query: toy::A,
                stop: StoppingCondition::iterations(50),
                deadline: None,
            }
            .with_deadline(Instant::now() - Duration::from_millis(1)),
        );
        assert_eq!(r.iterations, 0, "an expired deadline must stop immediately");
    }

    #[test]
    fn tiny_queue_still_serves_large_batch() {
        let service = toy_service(ServiceOptions {
            workers: 3,
            queue_capacity: 1,
            cache_capacity: 0,
        });
        let requests: Vec<Request> = (0..8u32)
            .cycle()
            .take(100)
            .map(|q| Request::iterations(q, 2))
            .collect();
        let responses = service.process_batch(requests);
        assert_eq!(responses.len(), 100);
        assert!(responses.iter().all(|r| r.l1_error < 1.0));
    }

    #[test]
    fn empty_batch_is_fine() {
        let service = toy_service(ServiceOptions::default());
        assert!(service.process_batch(Vec::new()).is_empty());
    }

    #[test]
    fn apply_update_invalidates_and_refreshes() {
        let mut service = toy_service(ServiceOptions {
            workers: 2,
            queue_capacity: 8,
            cache_capacity: 16,
        });
        let stale = service.query(Request::iterations(toy::A, 4));
        assert_eq!(service.cache_stats().entries, 1);

        // Add an edge a -> e: a's PPV must change.
        let old = Arc::clone(service.graph());
        let mut b = GraphBuilder::new(8);
        for (s, t) in old.edges() {
            b.add_edge(s, t);
        }
        b.add_edge(toy::A, toy::E);
        let stats = service.apply_update(b.build(), &[toy::A]);
        assert!(stats.recomputed + stats.reused > 0);
        assert_eq!(
            service.cache_stats().entries,
            0,
            "update must clear the cache"
        );

        let fresh = service.query(Request::iterations(toy::A, 4));
        assert!(!fresh.cached);
        // The new result reflects the new graph, not the stale cache: the
        // fresh estimate must put mass on e (now a direct out-neighbor).
        assert!(fresh.scores.get(toy::E) > stale.scores.get(toy::E));
    }

    #[test]
    fn flat_service_matches_memory_service_and_updates() {
        let g = toy::graph();
        let hubs = HubSet::from_ids(8, toy::PAPER_HUBS.to_vec());
        let config = Config::exhaustive();
        let (index, _) = build_index(&g, &hubs, &config);
        let flat = fastppv_core::FlatIndex::from_memory(&index, &hubs);
        let options = ServiceOptions {
            workers: 2,
            queue_capacity: 8,
            cache_capacity: 16,
        };
        let mem_service = QueryService::new(
            Arc::new(g.clone()),
            Arc::new(hubs.clone()),
            Arc::new(index),
            config,
            options,
        );
        let mut flat_service =
            QueryService::new(Arc::new(g), Arc::new(hubs), Arc::new(flat), config, options);
        for q in 0..8u32 {
            let a = mem_service.query(Request::iterations(q, 3));
            let b = flat_service.query(Request::iterations(q, 3));
            assert_eq!(*a.scores, *b.scores, "query {q}");
        }
        // A flat deployment takes updates too: patch, then reflect them.
        let old = Arc::clone(flat_service.graph());
        let mut b = GraphBuilder::new(8);
        for (s, t) in old.edges() {
            b.add_edge(s, t);
        }
        b.add_edge(toy::A, toy::E);
        let stats = flat_service.apply_update(b.build(), &[toy::A]);
        assert!(stats.recomputed + stats.reused > 0);
        assert_eq!(flat_service.cache_stats().entries, 0);
        let fresh = flat_service.query(Request::iterations(toy::A, 4));
        assert!(fresh.scores.get(toy::E) > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn rejects_zero_workers() {
        toy_service(ServiceOptions {
            workers: 0,
            queue_capacity: 1,
            cache_capacity: 0,
        });
    }
}
