//! The concurrent query service: an epoch-stamped immutable serving
//! snapshot behind a swap cell, a fixed-size worker pool over a bounded
//! submission queue, and a hot-PPV result cache.
//!
//! FastPPV's online phase is read-only over the graph, hub set, and index,
//! so everything a query touches lives in one immutable [`ServingState`]
//! (graph + hubs + store + epoch) published through an `ArcSwap`. Workers
//! pin one snapshot per request ([`QueryService::snapshot`] is an `Arc`
//! clone); each brings its own [`fastppv_core::QueryWorkspace`] (the only
//! per-query mutable state). Requests carry their own stopping condition —
//! iteration budget η, accuracy-aware L1 target (Eq. 6), or a wall-clock
//! deadline — so one deployment serves latency-budgeted and
//! accuracy-budgeted traffic side by side.
//!
//! [`QueryService::apply_update`] takes `&self` and runs **concurrently
//! with serving**: it refreshes the index against the pinned old snapshot
//! (via [`fastppv_core::dynamic`]), then publishes a new snapshot with a
//! bumped epoch. In-flight queries finish on the old state undisturbed —
//! they hold its `Arc` — and simply drop it when done.
//!
//! Deterministic requests (pure iteration stops) are memoized in an LRU
//! cache keyed by `(query, η)`. Every cache entry is stamped with the
//! epoch of the snapshot that produced it; publishing a new snapshot
//! clears the cache *and* rejects late inserts stamped with an older
//! epoch, so a worker that raced an update can never resurrect pre-update
//! scores.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use arc_swap::ArcSwap;
use parking_lot::Mutex;

use fastppv_core::dynamic::{
    refresh_flat_index_snapshot_delta, refresh_index_delta, refresh_index_delta_subset,
    same_adjacency, DeltaConfig, RefreshStats,
};
use fastppv_core::query::{expand_frontier, QueryWorkspace, StoppingCondition};
use fastppv_core::{Config, FlatIndex, HubSet, MemoryIndex, PpvStore, QueryEngine};
use fastppv_graph::{Graph, NodeId, SparseVector};

use crate::cache::LruCache;

/// Sizing knobs of a [`QueryService`].
#[derive(Clone, Copy, Debug)]
pub struct ServiceOptions {
    /// Worker threads per batch (the paper's online phase is CPU-bound, so
    /// more than the core count buys nothing).
    pub workers: usize,
    /// Bound of the submission queue; submission blocks when the pool falls
    /// this far behind (backpressure instead of unbounded buffering).
    pub queue_capacity: usize,
    /// Entries in the hot-PPV result cache (0 disables caching).
    pub cache_capacity: usize,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            workers: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4),
            queue_capacity: 1024,
            cache_capacity: 4096,
        }
    }
}

impl ServiceOptions {
    fn validate(&self) {
        assert!(self.workers >= 1, "a service needs at least one worker");
        assert!(self.queue_capacity >= 1, "queue capacity must be positive");
    }
}

/// Overload policy of a [`QueryService`] (opt in via
/// [`QueryService::with_overload`]).
///
/// The load tracker watches two signals: how many requests are inside the
/// service right now (queued + executing, the *in-flight* count) and the
/// recent p99 of served latencies. They drive three regimes
/// ([`LoadRegime`]):
///
/// * **Normal** — requests run exactly as asked.
/// * **Degrade** — admitted requests get their stopping condition capped
///   at [`OverloadOptions::degraded_max_iterations`] increments. FastPPV
///   makes this safe: every answer carries its certified error φ
///   (Eq. 6), so a degraded answer is a *looser bound*, never a wrong
///   score — and [`Response::degraded`] says the cap was applied.
/// * **Shed** — past the high-water mark, callers should fail fast with
///   an `Overloaded` error carrying [`OverloadOptions::retry_after`]
///   instead of queueing ([`QueryService::admission`]).
#[derive(Clone, Copy, Debug)]
pub struct OverloadOptions {
    /// In-flight requests at which *degrade* begins.
    pub degrade_in_flight: usize,
    /// In-flight high-water mark at which new requests are shed.
    pub shed_in_flight: usize,
    /// Increment cap applied to admitted requests while degrading.
    pub degraded_max_iterations: usize,
    /// Optional latency target: when the recent p99 of served requests
    /// exceeds it, the service degrades even below the in-flight
    /// watermark (the pool is keeping up with arrivals but not with the
    /// deadline).
    pub deadline_p99: Option<Duration>,
    /// Retry hint attached to shed decisions. Must be positive — a zero
    /// hint invites an immediate retry storm.
    pub retry_after: Duration,
}

impl Default for OverloadOptions {
    fn default() -> Self {
        OverloadOptions {
            degrade_in_flight: 64,
            shed_in_flight: 256,
            degraded_max_iterations: 1,
            deadline_p99: None,
            retry_after: Duration::from_millis(50),
        }
    }
}

impl OverloadOptions {
    fn validate(&self) {
        assert!(
            self.degrade_in_flight >= 1,
            "degrade watermark must be positive"
        );
        assert!(
            self.shed_in_flight >= self.degrade_in_flight,
            "shed watermark must be at or above the degrade watermark"
        );
        assert!(
            !self.retry_after.is_zero(),
            "retry_after must be positive (a zero hint invites a retry storm)"
        );
    }
}

/// The serving regime the load tracker currently prescribes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadRegime {
    /// Requests run exactly as asked.
    Normal,
    /// Admitted requests get a capped stopping condition (looser φ).
    Degrade,
    /// New requests should be rejected with a retry hint.
    Shed,
}

/// One admission decision (see [`QueryService::admission`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Run the request; `degraded` says the service will cap its
    /// stopping condition.
    Admit {
        /// Whether the degrade cap is in force.
        degraded: bool,
    },
    /// Reject immediately; the client should back off for `retry_after`.
    Shed {
        /// How long the client should wait before retrying.
        retry_after: Duration,
    },
}

/// A point-in-time picture of the load tracker.
#[derive(Clone, Copy, Debug, Default)]
pub struct LoadStats {
    /// Requests inside the service right now (queued + executing).
    pub in_flight: usize,
    /// p99 of the recent served-latency window ([`Duration::ZERO`] until
    /// any sample lands).
    pub recent_p99: Duration,
    /// Responses served with the degrade cap applied.
    pub degraded: u64,
    /// Shed decisions recorded via [`QueryService::note_shed`].
    pub shed: u64,
}

/// Recent-latency window size. Big enough to make the p99 meaningful,
/// small enough that the regime reacts to the last moment, not the last
/// minute.
const LOAD_WINDOW: usize = 128;

struct OverloadState {
    options: OverloadOptions,
    in_flight: AtomicUsize,
    /// Ring of recent served latencies in microseconds (0 = empty slot —
    /// a genuine 0µs sample rounds up, which biases nothing at p99).
    samples: Vec<AtomicU64>,
    sample_pos: AtomicUsize,
    degraded: AtomicU64,
    shed: AtomicU64,
}

impl OverloadState {
    fn new(options: OverloadOptions) -> Self {
        OverloadState {
            options,
            in_flight: AtomicUsize::new(0),
            samples: (0..LOAD_WINDOW).map(|_| AtomicU64::new(0)).collect(),
            sample_pos: AtomicUsize::new(0),
            degraded: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    fn record(&self, latency: Duration) {
        let micros = (latency.as_micros() as u64).max(1);
        let pos = self.sample_pos.fetch_add(1, Ordering::Relaxed) % LOAD_WINDOW;
        self.samples[pos].store(micros, Ordering::Relaxed);
    }

    fn recent_p99(&self) -> Duration {
        let mut window: Vec<u64> = self
            .samples
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .filter(|&v| v != 0)
            .collect();
        if window.is_empty() {
            return Duration::ZERO;
        }
        window.sort_unstable();
        let rank = ((window.len() as f64 * 0.99).ceil() as usize).clamp(1, window.len());
        Duration::from_micros(window[rank - 1])
    }

    fn regime(&self) -> LoadRegime {
        let in_flight = self.in_flight.load(Ordering::Relaxed);
        if in_flight >= self.options.shed_in_flight {
            return LoadRegime::Shed;
        }
        if in_flight >= self.options.degrade_in_flight {
            return LoadRegime::Degrade;
        }
        if self
            .options
            .deadline_p99
            .is_some_and(|target| self.recent_p99() > target)
        {
            return LoadRegime::Degrade;
        }
        LoadRegime::Normal
    }
}

/// Decrements the in-flight count when a request (or batch) leaves the
/// service, however it leaves — normal return or panic unwind.
pub(crate) struct InFlightGuard<'a> {
    state: Option<&'a OverloadState>,
    n: usize,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        if let Some(state) = self.state {
            state.in_flight.fetch_sub(self.n, Ordering::Relaxed);
        }
    }
}

/// One query to serve.
#[derive(Clone, Copy, Debug)]
pub struct Request {
    /// The query node.
    pub query: NodeId,
    /// When to stop iterating (see [`StoppingCondition`]).
    pub stop: StoppingCondition,
    /// Absolute wall-clock deadline; converted to a remaining-time limit at
    /// execution, so time spent waiting in the queue counts against it.
    pub deadline: Option<Instant>,
}

impl Request {
    /// A request running exactly `eta` increments (cacheable).
    pub fn iterations(query: NodeId, eta: usize) -> Self {
        Request {
            query,
            stop: StoppingCondition::iterations(eta),
            deadline: None,
        }
    }

    /// A request running until `φ ≤ target`.
    pub fn l1_error(query: NodeId, target: f64) -> Self {
        Request {
            query,
            stop: StoppingCondition::l1_error(target),
            deadline: None,
        }
    }

    /// Adds an absolute deadline (disables caching for this request).
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// A served query.
#[derive(Clone, Debug)]
pub struct Response {
    /// The query node.
    pub query: NodeId,
    /// The PPV estimate (shared, so cache hits copy nothing).
    pub scores: Arc<SparseVector>,
    /// Accuracy-aware L1 error `φ` of the estimate (Eq. 6).
    pub l1_error: f64,
    /// Increments run beyond iteration 0.
    pub iterations: usize,
    /// Whether the expansion frontier emptied.
    pub exhausted: bool,
    /// Whether the hot-PPV cache served this response.
    pub cached: bool,
    /// Whether the overload policy capped this request's stopping
    /// condition ([`OverloadOptions`]). The reported [`Response::l1_error`]
    /// is still the certified φ of what was actually computed —
    /// degradation is certified, never silent.
    pub degraded: bool,
    /// Service-side latency: cache probe + (on a miss) engine time.
    pub latency: Duration,
}

impl Response {
    /// Top-`k` nodes by estimated score.
    pub fn top_k(&self, k: usize) -> Vec<(NodeId, f64)> {
        self.scores.top_k(k)
    }
}

/// The `p`-quantile (0 < p ≤ 1) of an **ascending-sorted** latency sample,
/// by the nearest-rank definition (the smallest value with at least `p·n`
/// of the sample at or below it). Sort once, then take every quantile you
/// need from the same slice.
pub fn percentile_of_sorted(sorted: &[Duration], p: f64) -> Duration {
    assert!(p > 0.0 && p <= 1.0, "p must be in (0, 1]");
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "sample not sorted");
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The `p`-quantile of the *union* of two ascending-sorted samples,
/// without materializing (or re-sorting) the merged sample: a two-pointer
/// walk to the nearest rank. Lets a serving report derive its overall
/// percentile from the per-class (hub / non-hub) sorted samples for free.
pub fn percentile_of_sorted_pair(a: &[Duration], b: &[Duration], p: f64) -> Duration {
    assert!(p > 0.0 && p <= 1.0, "p must be in (0, 1]");
    let total = a.len() + b.len();
    if total == 0 {
        return Duration::ZERO;
    }
    let rank = ((total as f64 * p).ceil() as usize).clamp(1, total);
    let (mut i, mut j) = (0usize, 0usize);
    let mut last = Duration::ZERO;
    for _ in 0..rank {
        let take_a = match (a.get(i), b.get(j)) {
            (Some(x), Some(y)) => x <= y,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => unreachable!("rank is clamped to the union size"),
        };
        if take_a {
            last = a[i];
            i += 1;
        } else {
            last = b[j];
            j += 1;
        }
    }
    last
}

/// The `p`-quantile of an unsorted latency sample (one clone + one sort).
/// For more than one quantile over the same sample, sort it once yourself
/// and use [`percentile_of_sorted`] / [`LatencySummary::of_mut`].
pub fn percentile(latencies: &[Duration], p: f64) -> Duration {
    let mut sorted = latencies.to_vec();
    sorted.sort_unstable();
    percentile_of_sorted(&sorted, p)
}

/// A latency sample boiled down to the figures every serving report needs:
/// request count, median, and 99th percentile (nearest-rank, see
/// [`percentile_of_sorted`]). Used by the CLI serve summary and the bench
/// crate's closed-loop driver to report hub and non-hub sources separately
/// — hub-source requests are index lookups while cold non-hub sources run
/// the prime-PPV kernel, so their latency distributions are different
/// regimes and a pooled percentile hides the tail.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencySummary {
    /// Requests in the sample.
    pub queries: usize,
    /// Median latency.
    pub p50: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
}

impl LatencySummary {
    /// Summarizes a sample that is already ascending-sorted.
    pub fn of_sorted(sorted: &[Duration]) -> Self {
        LatencySummary {
            queries: sorted.len(),
            p50: percentile_of_sorted(sorted, 0.50),
            p99: percentile_of_sorted(sorted, 0.99),
        }
    }

    /// Sorts the sample in place (once), then summarizes it. The sample is
    /// left sorted, so callers can keep slicing quantiles out of it.
    pub fn of_mut(sample: &mut [Duration]) -> Self {
        sample.sort_unstable();
        Self::of_sorted(sample)
    }

    /// Summarizes an unsorted sample the caller must not mutate (one
    /// clone + one sort; prefer [`LatencySummary::of_mut`] in reports).
    pub fn of(latencies: &[Duration]) -> Self {
        let mut sample = latencies.to_vec();
        Self::of_mut(&mut sample)
    }
}

/// Cache hit/miss counters and current size.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Cacheable requests answered from memory.
    pub hits: u64,
    /// Cacheable requests that ran the engine.
    pub misses: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// Inserts rejected because the result was computed against a snapshot
    /// older than the current epoch (a worker raced an update; accepting
    /// the entry would resurrect pre-update scores).
    pub stale_rejects: u64,
    /// Update batches that changed nothing ([`QueryService::apply_update`]
    /// found the adjacency unchanged and every refresh a no-op) and were
    /// therefore *not* published — the epoch stayed put and the warm
    /// hot-PPV cache survived.
    pub noop_update_skips: u64,
}

type CacheKey = (NodeId, u64);

struct CachedResult {
    scores: Arc<SparseVector>,
    l1_error: f64,
    iterations: usize,
    exhausted: bool,
    /// Epoch of the snapshot this result was computed against.
    epoch: u64,
}

/// One immutable serving snapshot: everything a query reads, published
/// atomically as a unit. Readers pin a snapshot (an `Arc` clone) and keep
/// it for the duration of a request or batch; an update never mutates a
/// published snapshot — it builds the next one and swaps it in.
pub struct ServingState<S> {
    graph: Arc<Graph>,
    hubs: Arc<HubSet>,
    store: Arc<S>,
    epoch: u64,
}

impl<S: PpvStore> ServingState<S> {
    /// The graph of this snapshot.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// The hub set of this snapshot.
    pub fn hubs(&self) -> &Arc<HubSet> {
        &self.hubs
    }

    /// The PPV store of this snapshot.
    pub fn store(&self) -> &Arc<S> {
        &self.store
    }

    /// The snapshot's epoch: 0 at service creation, +1 per published
    /// update or invalidation.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// A query engine borrowing this snapshot's pieces.
    pub fn engine(&self, config: Config) -> QueryEngine<'_, S> {
        QueryEngine::new(&self.graph, &self.hubs, self.store.as_ref(), config)
    }
}

/// A concurrent PPV query service over epoch-stamped immutable snapshots.
///
/// The graph, hub set, and store live in a [`ServingState`] behind a swap
/// cell: queries pin the current snapshot, [`QueryService::apply_update`]
/// (`&self` — concurrent with serving) publishes the next one.
pub struct QueryService<S: PpvStore + Send + Sync> {
    state: ArcSwap<ServingState<S>>,
    config: Config,
    // Delta-patch tuning of apply_update. The default is exact
    // (budget 0): every update keeps the store bit-identical to a dirty-hub
    // recompute; opt into patching with QueryService::with_delta_config.
    delta: DeltaConfig,
    options: ServiceOptions,
    cache: Mutex<LruCache<CacheKey, Arc<CachedResult>>>,
    // Mirror of the published snapshot's epoch, readable under the cache
    // lock without loading the snapshot (stale-insert rejection).
    current_epoch: AtomicU64,
    // Mirror of the published graph's node count: recycled workspaces are
    // checked against it so an update that grew the graph retires the
    // now-undersized scratch at recycle time.
    current_nodes: AtomicUsize,
    // Serializes updates (publishers) against each other — never against
    // readers. Without it, two concurrent refreshes would both pin the
    // same old snapshot and the second publish would silently drop the
    // first update's work.
    update_lock: Mutex<()>,
    // Recycled per-worker scratch: graph-sized, so worth keeping across
    // batches instead of re-zeroing O(n) arrays every flush.
    workspaces: Mutex<Vec<QueryWorkspace>>,
    // Overload policy + load tracker (None = always Normal; opt in with
    // QueryService::with_overload).
    overload: Option<OverloadState>,
    // The snapshot a two-phase prepare built but has not committed yet
    // (shard mode). Committed or aborted under the update lock; serving
    // never reads it.
    staged: Mutex<Option<ServingState<S>>>,
    // Scattered iteration-0 answers, keyed (query, epoch): the shard-side
    // analogue of the whole-answer cache (a router never asks a shard for
    // a whole answer, so the main cache would not see its traffic).
    sub_cache: Mutex<LruCache<(NodeId, u64), Arc<Prime0Parts>>>,
    // Scattered increment contributions, keyed (frontier slice, epoch).
    // The router's merge is deterministic, so a repeated (query, stop)
    // resends bit-identical frontier slices every round; keying by the
    // exact mass bit patterns means a hit can only be an exact replay of
    // the same expansion. Cleared eagerly on publish like `sub_cache`.
    expand_cache: Mutex<LruCache<ExpandKey, ExpandAnswer>>,
    hits: AtomicU64,
    misses: AtomicU64,
    stale_rejects: AtomicU64,
    noop_skips: AtomicU64,
}

/// Expand-cache key: the frontier slice with masses as raw IEEE-754 bit
/// patterns (so the key is `Eq`-able and a hit implies a bit-identical
/// resend), plus the epoch that served it.
type ExpandKey = (Vec<(NodeId, u64)>, u64);

/// Iteration 0 of a scattered query, as shipped to the router: the raw
/// prime-PPV entries (trivial tour excluded) and their border-hub
/// frontier, both in entry (ascending node id) order.
#[derive(Clone, Debug, Default)]
pub struct Prime0Parts {
    /// `r̊⁰_q` entries, sorted by node id.
    pub entries: Vec<(NodeId, f64)>,
    /// The hub entries among them — iteration 1's frontier.
    pub frontier: Vec<(NodeId, f64)>,
}

/// One shard's contribution to a scattered increment
/// ([`QueryService::expand`]): a thin epoch-stamped wrapper around the
/// core [`fastppv_core::ExpandOutcome`].
#[derive(Clone, Debug)]
pub struct ExpandAnswer {
    /// Epoch of the snapshot that produced the contribution.
    pub epoch: u64,
    /// The partial increment.
    pub outcome: fastppv_core::ExpandOutcome,
}

/// Why a scattered sub-query ([`QueryService::prime0`] /
/// [`QueryService::expand`]) was refused.
#[derive(Clone, Debug, PartialEq)]
pub enum SubQueryError {
    /// The shard serves a different epoch than the router scattered
    /// against; the response names it so the router can retry once
    /// against the new version instead of merging mixed graphs.
    EpochSkew {
        /// The epoch this shard currently serves.
        current: u64,
    },
    /// A frontier hub this shard does not own (stale or wrong shard map).
    MissingHub(NodeId),
    /// Malformed request (out-of-range query node, unsorted frontier…).
    BadRequest(String),
}

impl std::fmt::Display for SubQueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubQueryError::EpochSkew { current } => {
                write!(f, "epoch skew: shard serves epoch {current}")
            }
            SubQueryError::MissingHub(h) => write!(f, "hub {h} not in this shard's store"),
            SubQueryError::BadRequest(msg) => write!(f, "bad sub-query: {msg}"),
        }
    }
}

/// Shared range check of every serving path ([`QueryService::query`],
/// [`QueryService::process_batch`], and the network front-end): an
/// out-of-range id would otherwise surface as an opaque
/// index-out-of-bounds panic deep inside the engine. One owner for the
/// rule and the message; in-process paths panic via [`assert_in_range`],
/// the wire path turns the `Err` into a per-request error response.
pub(crate) fn check_in_range(graph: &Graph, query: NodeId) -> Result<(), String> {
    let nodes = graph.num_nodes();
    if (query as usize) < nodes {
        Ok(())
    } else {
        Err(format!("query node {query} out of range ({nodes} nodes)"))
    }
}

fn assert_in_range(graph: &Graph, request: &Request) {
    if let Err(e) = check_in_range(graph, request.query) {
        panic!("{e}");
    }
}

impl<S: PpvStore + Send + Sync> QueryService<S> {
    /// Creates a service over a built deployment (epoch 0).
    pub fn new(
        graph: Arc<Graph>,
        hubs: Arc<HubSet>,
        store: Arc<S>,
        config: Config,
        options: ServiceOptions,
    ) -> Self {
        config.validate();
        options.validate();
        let nodes = graph.num_nodes();
        let cache = Mutex::new(LruCache::new(options.cache_capacity));
        QueryService {
            state: ArcSwap::from_pointee(ServingState {
                graph,
                hubs,
                store,
                epoch: 0,
            }),
            config,
            delta: DeltaConfig::exact(),
            options,
            cache,
            current_epoch: AtomicU64::new(0),
            current_nodes: AtomicUsize::new(nodes),
            update_lock: Mutex::new(()),
            workspaces: Mutex::new(Vec::new()),
            overload: None,
            staged: Mutex::new(None),
            sub_cache: Mutex::new(LruCache::new(options.cache_capacity)),
            expand_cache: Mutex::new(LruCache::new(options.cache_capacity)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stale_rejects: AtomicU64::new(0),
            noop_skips: AtomicU64::new(0),
        }
    }

    /// Opts [`QueryService::apply_update`] into delta-patched refreshes
    /// with the given per-hub error budget configuration. The default is
    /// [`DeltaConfig::exact`] (budget 0): every dirty hub is recomputed
    /// and served answers carry no update-induced error at all.
    pub fn with_delta_config(mut self, delta: DeltaConfig) -> Self {
        delta.validate();
        self.delta = delta;
        self
    }

    /// The delta-patch configuration updates run with.
    pub fn delta_config(&self) -> &DeltaConfig {
        &self.delta
    }

    /// Opts the service into overload-aware serving: a load tracker
    /// (in-flight count + recent p99) drives the Normal / Degrade / Shed
    /// regimes described on [`OverloadOptions`]. Without this, the
    /// service always runs requests exactly as asked and
    /// [`QueryService::admission`] always admits.
    pub fn with_overload(mut self, overload: OverloadOptions) -> Self {
        overload.validate();
        self.overload = Some(OverloadState::new(overload));
        self
    }

    /// The regime the load tracker currently prescribes
    /// ([`LoadRegime::Normal`] when overload handling is not enabled).
    pub fn load_regime(&self) -> LoadRegime {
        self.overload
            .as_ref()
            .map_or(LoadRegime::Normal, |o| o.regime())
    }

    /// One admission decision for a request about to enter the service.
    /// Callers that shed (the network front-end) should report it back
    /// via [`QueryService::note_shed`] so [`LoadStats`] stays honest.
    pub fn admission(&self) -> Admission {
        match self.load_regime() {
            LoadRegime::Normal => Admission::Admit { degraded: false },
            LoadRegime::Degrade => Admission::Admit { degraded: true },
            LoadRegime::Shed => Admission::Shed {
                retry_after: self
                    .overload
                    .as_ref()
                    .expect("Shed regime requires an overload policy")
                    .options
                    .retry_after,
            },
        }
    }

    /// Records one shed decision taken by a front-end on this service's
    /// behalf.
    pub fn note_shed(&self) {
        if let Some(o) = &self.overload {
            o.shed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A point-in-time picture of the load tracker (all zeros when
    /// overload handling is not enabled).
    pub fn load_stats(&self) -> LoadStats {
        match &self.overload {
            None => LoadStats::default(),
            Some(o) => LoadStats {
                in_flight: o.in_flight.load(Ordering::Relaxed),
                recent_p99: o.recent_p99(),
                degraded: o.degraded.load(Ordering::Relaxed),
                shed: o.shed.load(Ordering::Relaxed),
            },
        }
    }

    /// Counts `n` requests as inside the service until the guard drops.
    /// Crate-visible so the net front-end tests (and fault harness) can
    /// pin the service at a chosen load level deterministically.
    pub(crate) fn track_in_flight(&self, n: usize) -> InFlightGuard<'_> {
        if let Some(o) = &self.overload {
            o.in_flight.fetch_add(n, Ordering::Relaxed);
        }
        InFlightGuard {
            state: self.overload.as_ref(),
            n,
        }
    }

    /// Applies the degrade cap if the regime calls for it, returning the
    /// (possibly loosened) request and whether it was changed.
    fn maybe_degrade(&self, mut request: Request) -> (Request, bool) {
        let Some(o) = &self.overload else {
            return (request, false);
        };
        if o.regime() != LoadRegime::Degrade {
            return (request, false);
        }
        let cap = o.options.degraded_max_iterations;
        let capped = match request.stop.max_iterations {
            Some(eta) => eta.min(cap),
            None => cap,
        };
        if request.stop.max_iterations == Some(capped) {
            return (request, false);
        }
        request.stop.max_iterations = Some(capped);
        (request, true)
    }

    /// Pins the current serving snapshot (an `Arc` clone). The caller's
    /// view is immutable and survives any number of concurrent updates.
    pub fn snapshot(&self) -> Arc<ServingState<S>> {
        self.state.load_full()
    }

    /// Publishes `state` as the next snapshot and clears the hot-PPV
    /// cache, all under the cache lock so a racing insert is either
    /// cleared (it landed first) or epoch-rejected (it lands after).
    /// Returns how many cache entries were dropped.
    fn publish(&self, state: ServingState<S>) -> usize {
        let mut cache = self.cache.lock();
        // Sub-query entries are epoch-keyed (a stale entry can never be
        // served), but they hold graph-sized vectors — drop them eagerly.
        self.sub_cache.lock().clear();
        self.expand_cache.lock().clear();
        self.current_epoch.store(state.epoch, Ordering::Release);
        self.current_nodes
            .store(state.graph.num_nodes(), Ordering::Relaxed);
        self.state.store(Arc::new(state));
        cache.clear()
    }

    /// Pops a recycled workspace covering at least `nodes` slots (or
    /// allocates one). Recycled workspaces that are too small — possible
    /// after [`QueryService::apply_update`] grew the graph — are dropped.
    fn take_workspace(&self, nodes: usize) -> QueryWorkspace {
        loop {
            match self.workspaces.lock().pop() {
                Some(ws) if ws.capacity() >= nodes => return ws,
                Some(_) => continue,
                None => return QueryWorkspace::new(nodes),
            }
        }
    }

    /// Returns a workspace to the pool — unless it is undersized for the
    /// *currently published* graph (an update grew it mid-flight), in
    /// which case it is dropped here instead of being popped-and-dropped
    /// forever by [`QueryService::take_workspace`].
    fn recycle_workspace(&self, ws: QueryWorkspace) {
        if ws.capacity() < self.current_nodes.load(Ordering::Relaxed) {
            return;
        }
        let mut pool = self.workspaces.lock();
        if pool.len() < self.options.workers {
            pool.push(ws);
        }
    }

    /// The graph of the current snapshot.
    pub fn graph(&self) -> Arc<Graph> {
        Arc::clone(&self.snapshot().graph)
    }

    /// The hub set of the current snapshot.
    pub fn hubs(&self) -> Arc<HubSet> {
        Arc::clone(&self.snapshot().hubs)
    }

    /// The PPV store of the current snapshot.
    pub fn store(&self) -> Arc<S> {
        Arc::clone(&self.snapshot().store)
    }

    /// The current epoch: 0 at creation, +1 per update or invalidation.
    pub fn epoch(&self) -> u64 {
        self.current_epoch.load(Ordering::Acquire)
    }

    /// The service configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The sizing options.
    pub fn options(&self) -> &ServiceOptions {
        &self.options
    }

    /// Cache hit/miss/stale-reject counters (cacheable requests only) and
    /// current size.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.cache.lock().len(),
            stale_rejects: self.stale_rejects.load(Ordering::Relaxed),
            noop_update_skips: self.noop_skips.load(Ordering::Relaxed),
        }
    }

    /// Whether an update batch changed nothing: the adjacency is unchanged
    /// at every claimed tail and the refresh neither recomputed nor
    /// rewrote any stored PPV (empty delta patches carry no budget spend
    /// on an unchanged graph). Publishing such a batch would evict the
    /// entire warm cache for nothing, so `apply_update` skips it.
    fn update_was_noop(
        &self,
        stats: &RefreshStats,
        old_graph: &Graph,
        new_graph: &Graph,
        changed_tails: &[NodeId],
    ) -> bool {
        stats.recomputed == 0
            && stats.delta_patched == stats.delta_noop
            && same_adjacency(old_graph, new_graph, changed_tails)
    }

    /// Drops every cached result, returning how many were evicted, and
    /// bumps the epoch (republishing the current snapshot) so in-flight
    /// results computed before the invalidation cannot be re-inserted.
    /// Call after any out-of-band change to the graph or store;
    /// [`QueryService::apply_update`] does it automatically.
    pub fn invalidate_cache(&self) -> usize {
        let _updates = self.update_lock.lock();
        let old = self.snapshot();
        // fppv-lint: allow(lock-across-io) -- update_lock exists to serialize publishers; readers never take it
        self.publish(ServingState {
            graph: Arc::clone(&old.graph),
            hubs: Arc::clone(&old.hubs),
            store: Arc::clone(&old.store),
            epoch: old.epoch + 1,
        })
    }

    /// Serves one request on the calling thread (no pool, no queue).
    pub fn query(&self, request: Request) -> Response {
        let state = self.snapshot();
        assert_in_range(&state.graph, &request);
        let _in_flight = self.track_in_flight(1);
        let engine = state.engine(self.config);
        let mut ws = self.take_workspace(state.graph.num_nodes());
        let response = self.execute(&engine, state.epoch, &mut ws, request, None);
        self.recycle_workspace(ws);
        response
    }

    /// Serves a batch through the worker pool: `options.workers` scoped
    /// threads share one pinned snapshot (each with its own workspace) and
    /// drain a submission queue bounded at `options.queue_capacity`.
    /// Responses come back in request order. An update published while the
    /// batch is in flight does not disturb it — the whole batch answers on
    /// the snapshot pinned at entry.
    pub fn process_batch(&self, requests: Vec<Request>) -> Vec<Response> {
        let state = self.snapshot();
        // Validate against the same snapshot the batch will run on, before
        // spawning: an out-of-range id inside a worker would kill the pool
        // and surface as a misleading channel error.
        for r in &requests {
            assert_in_range(&state.graph, r);
        }
        self.process_batch_on(&state, requests)
    }

    /// [`QueryService::process_batch`] against an explicitly pinned
    /// snapshot. Callers (the network front-end) must have range-checked
    /// every request against `state`'s graph.
    pub(crate) fn process_batch_on(
        &self,
        state: &Arc<ServingState<S>>,
        requests: Vec<Request>,
    ) -> Vec<Response> {
        self.process_batch_on_cancel(state, requests, None)
    }

    /// [`QueryService::process_batch_on`] with an optional cancellation
    /// token: when the flag flips, requests stop at their next increment
    /// boundary and return partial answers with their current certified
    /// φ. The network front-end threads its shutdown flag through here so
    /// closing the server never waits on a long-running query.
    pub(crate) fn process_batch_on_cancel(
        &self,
        state: &Arc<ServingState<S>>,
        requests: Vec<Request>,
        cancel: Option<&std::sync::atomic::AtomicBool>,
    ) -> Vec<Response> {
        let n = requests.len();
        if n == 0 {
            return Vec::new();
        }
        let _in_flight = self.track_in_flight(n);
        let nodes = state.graph.num_nodes();
        let engine = state.engine(self.config);
        let workers = self.options.workers.min(n);
        if workers == 1 {
            let mut ws = self.take_workspace(nodes);
            let responses = requests
                .into_iter()
                .map(|r| self.execute(&engine, state.epoch, &mut ws, r, cancel))
                .collect();
            self.recycle_workspace(ws);
            return responses;
        }
        let (job_tx, job_rx) = mpsc::sync_channel::<(usize, Request)>(self.options.queue_capacity);
        let job_rx = Mutex::new(job_rx);
        let slots: Vec<Mutex<Option<Response>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut ws = self.take_workspace(nodes);
                    loop {
                        // Hold the receiver lock only for the dequeue, not
                        // for the query execution.
                        // fppv-lint: allow(lock-across-io) -- the lock IS the handoff: workers take turns blocking on the shared receiver
                        let job = job_rx.lock().recv();
                        let Ok((i, request)) = job else { break };
                        *slots[i].lock() =
                            Some(self.execute(&engine, state.epoch, &mut ws, request, cancel));
                    }
                    self.recycle_workspace(ws);
                });
            }
            for job in requests.into_iter().enumerate() {
                // Blocks when the queue is full: bounded submission is the
                // backpressure mechanism. Workers only stop once the sender
                // is dropped, so this cannot fail.
                job_tx.send(job).expect("worker pool hung up early");
            }
            drop(job_tx);
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("every request is answered"))
            .collect()
    }

    /// A request is cacheable when its result is a pure function of
    /// `(query, η)`: an iteration-only stop and no deadline.
    fn cache_key(&self, request: &Request) -> Option<CacheKey> {
        if self.options.cache_capacity == 0 || request.deadline.is_some() {
            return None;
        }
        match request.stop {
            StoppingCondition {
                max_iterations: Some(eta),
                l1_target: None,
                time_limit: None,
            } => Some((request.query, eta as u64)),
            _ => None,
        }
    }

    fn execute(
        &self,
        engine: &QueryEngine<'_, S>,
        epoch: u64,
        ws: &mut QueryWorkspace,
        request: Request,
        cancel: Option<&std::sync::atomic::AtomicBool>,
    ) -> Response {
        let started = Instant::now();
        // The degrade cap is applied *before* the cache key is derived, so
        // a degraded iteration request caches (and hits) under its capped
        // η — identical requests in the same regime share one entry.
        let (request, degraded) = self.maybe_degrade(request);
        if degraded {
            if let Some(o) = &self.overload {
                o.degraded.fetch_add(1, Ordering::Relaxed);
            }
        }
        let key = self.cache_key(&request);
        if let Some(ref k) = key {
            // Snapshot isolation: only accept an entry computed against
            // the *same* epoch this request pinned. A newer entry (a
            // racing update published mid-batch) would be a perfectly
            // fresh answer — but it would let one pooled batch mix
            // snapshots, and the contract is that a batch answers
            // entirely on the state it pinned at entry.
            let hit = self
                .cache
                .lock()
                .get(k)
                .filter(|v| v.epoch == epoch)
                .cloned();
            if let Some(hit) = hit {
                self.hits.fetch_add(1, Ordering::Relaxed);
                let latency = started.elapsed();
                if let Some(o) = &self.overload {
                    o.record(latency);
                }
                return Response {
                    query: request.query,
                    scores: Arc::clone(&hit.scores),
                    l1_error: hit.l1_error,
                    iterations: hit.iterations,
                    exhausted: hit.exhausted,
                    cached: true,
                    degraded,
                    latency,
                };
            }
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let mut stop = request.stop;
        if let Some(deadline) = request.deadline {
            // Queue wait counts against the deadline: the limit is whatever
            // time remains *now*, clamped below any explicit time limit.
            let remaining = deadline.saturating_duration_since(Instant::now());
            stop.time_limit = Some(stop.time_limit.map_or(remaining, |l| l.min(remaining)));
        }
        let result = engine.query_with_cancel(ws, request.query, &stop, cancel);
        let scores = Arc::new(result.scores);
        if let Some(k) = key {
            self.try_cache_insert(
                k,
                CachedResult {
                    scores: Arc::clone(&scores),
                    l1_error: result.l1_error,
                    iterations: result.iterations,
                    exhausted: result.exhausted,
                    epoch,
                },
            );
        }
        let latency = started.elapsed();
        if let Some(o) = &self.overload {
            o.record(latency);
        }
        Response {
            query: request.query,
            scores,
            l1_error: result.l1_error,
            iterations: result.iterations,
            exhausted: result.exhausted,
            cached: false,
            degraded,
            latency,
        }
    }

    /// Inserts a computed result unless it was produced against a snapshot
    /// older than the current epoch. The epoch mirror is read under the
    /// cache lock, and [`QueryService::publish`] bumps it under the same
    /// lock, so an insert racing an update is either cleared by the
    /// publish (it landed first) or rejected here (it landed after) —
    /// never resurrected.
    fn try_cache_insert(&self, key: CacheKey, entry: CachedResult) {
        let mut cache = self.cache.lock();
        if entry.epoch < self.current_epoch.load(Ordering::Acquire) {
            self.stale_rejects.fetch_add(1, Ordering::Relaxed);
            return;
        }
        cache.insert(key, Arc::new(entry));
    }

    /// Serves iteration 0 of a scattered query: the prime PPV of `q` from
    /// this shard's store (or computed on the fly for a non-hub `q`),
    /// split into entries + border-hub frontier for the router to fan out.
    ///
    /// `expect_epoch` (`None` = any) pins the merge to one graph version:
    /// a shard serving a different epoch refuses with
    /// [`SubQueryError::EpochSkew`] instead of contributing mixed-version
    /// mass. Results are cached per `(q, epoch)` in a dedicated LRU — the
    /// whole-answer cache never sees router traffic.
    pub fn prime0(
        &self,
        q: NodeId,
        expect_epoch: Option<u64>,
    ) -> Result<(Arc<Prime0Parts>, u64), SubQueryError> {
        let state = self.snapshot();
        if let Some(expected) = expect_epoch {
            if expected != state.epoch {
                return Err(SubQueryError::EpochSkew {
                    current: state.epoch,
                });
            }
        }
        check_in_range(&state.graph, q).map_err(SubQueryError::BadRequest)?;
        let started = Instant::now();
        let _in_flight = self.track_in_flight(1);
        let key = (q, state.epoch);
        if let Some(hit) = self.sub_cache.lock().get(&key).map(Arc::clone) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.record_sub_latency(started);
            return Ok((hit, state.epoch));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut ws = self.take_workspace(state.graph.num_nodes());
        let (entries, frontier) = ws.prime0_parts(
            &state.graph,
            &state.hubs,
            state.store.as_ref(),
            q,
            &self.config,
        );
        self.recycle_workspace(ws);
        let parts = Arc::new(Prime0Parts { entries, frontier });
        // Same stale-insert discipline as try_cache_insert: a publish
        // either clears this entry or the epoch mirror rejects it.
        let mut cache = self.sub_cache.lock();
        if state.epoch >= self.current_epoch.load(Ordering::Acquire) {
            cache.insert(key, Arc::clone(&parts));
        }
        drop(cache);
        self.record_sub_latency(started);
        Ok((parts, state.epoch))
    }

    /// Feeds one served sub-request into the load tracker's latency
    /// window, so a shard whose traffic is purely scattered sub-requests
    /// still reports an honest `recent_p99` (and its overload regimes see
    /// the load). Refused sub-requests (epoch skew, bad request) are not
    /// served work and are not recorded — mirroring `execute`, which only
    /// records answers.
    fn record_sub_latency(&self, started: Instant) {
        if let Some(o) = &self.overload {
            o.record(started.elapsed());
        }
    }

    /// Serves one shard's share of a scattered increment step: expands the
    /// border hubs in `sublist` (this shard's slice of the router's
    /// frontier, ascending by hub id, masses as merged so far) against the
    /// stored prime PPVs. The returned partial entries / frontier /
    /// increment mass are merged router-side with the other shards'.
    pub fn expand(
        &self,
        sublist: &[(NodeId, f64)],
        expect_epoch: Option<u64>,
    ) -> Result<ExpandAnswer, SubQueryError> {
        let state = self.snapshot();
        if let Some(expected) = expect_epoch {
            if expected != state.epoch {
                return Err(SubQueryError::EpochSkew {
                    current: state.epoch,
                });
            }
        }
        for &(h, mass) in sublist {
            check_in_range(&state.graph, h).map_err(SubQueryError::BadRequest)?;
            if !mass.is_finite() || mass < 0.0 {
                return Err(SubQueryError::BadRequest(format!(
                    "non-finite or negative frontier mass {mass} at hub {h}"
                )));
            }
        }
        let started = Instant::now();
        let _in_flight = self.track_in_flight(1);
        let key = (
            sublist
                .iter()
                .map(|&(h, m)| (h, m.to_bits()))
                .collect::<Vec<_>>(),
            state.epoch,
        );
        if let Some(hit) = self.expand_cache.lock().get(&key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.record_sub_latency(started);
            return Ok(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut ws = self.take_workspace(state.graph.num_nodes());
        let outcome = expand_frontier(
            sublist,
            &state.hubs,
            state.store.as_ref(),
            &self.config,
            ws.increment_scratch(),
        );
        self.recycle_workspace(ws);
        match outcome {
            Ok(outcome) => {
                let answer = ExpandAnswer {
                    epoch: state.epoch,
                    outcome,
                };
                // Same stale-insert discipline as the prime0 sub-cache: a
                // racing publish either clears this entry or the epoch
                // mirror rejects it.
                let mut cache = self.expand_cache.lock();
                if state.epoch >= self.current_epoch.load(Ordering::Acquire) {
                    cache.insert(key, answer.clone());
                }
                drop(cache);
                self.record_sub_latency(started);
                Ok(answer)
            }
            Err(h) => Err(SubQueryError::MissingHub(h)),
        }
    }
}

impl QueryService<MemoryIndex> {
    /// Applies a graph update **concurrently with serving**: pins the
    /// current snapshot, refreshes only the prime PPVs whose prime
    /// subgraphs the changed edges touch ([`fastppv_core::dynamic`])
    /// against that pinned state, then publishes a new snapshot with a
    /// bumped epoch and clears the hot-PPV cache. In-flight queries keep
    /// answering on the old snapshot until they finish.
    ///
    /// `changed_tails` are the source nodes of every inserted or deleted
    /// edge (both endpoints for undirected edits). Concurrent updates
    /// serialize against each other (never against readers).
    ///
    /// Dirty hubs are patched by delta propagation when
    /// [`QueryService::with_delta_config`] enabled a budget (recomputed
    /// exactly otherwise), and a batch that changed nothing is *not*
    /// published at all — the epoch stays put and the warm cache survives
    /// ([`CacheStats::noop_update_skips`]).
    pub fn apply_update(&self, new_graph: Graph, changed_tails: &[NodeId]) -> RefreshStats {
        let _updates = self.update_lock.lock();
        let old = self.snapshot();
        let (index, stats) = refresh_index_delta(
            &old.store,
            &old.graph,
            &new_graph,
            &old.hubs,
            changed_tails,
            &self.config,
            &self.delta,
        );
        if self.update_was_noop(&stats, &old.graph, &new_graph, changed_tails) {
            self.noop_skips.fetch_add(1, Ordering::Relaxed);
            return stats;
        }
        // fppv-lint: allow(lock-across-io) -- update_lock exists to serialize publishers; readers never take it
        self.publish(ServingState {
            graph: Arc::new(new_graph),
            hubs: Arc::clone(&old.hubs),
            store: Arc::new(index),
            epoch: old.epoch + 1,
        });
        stats
    }
}

impl QueryService<FlatIndex> {
    /// Applies a graph update to a flat-arena deployment, concurrently
    /// with serving: the pinned snapshot's arena is cloned and patched via
    /// [`fastppv_core::dynamic::refresh_flat_index_snapshot`]
    /// (tombstone-and-append with threshold compaction), then published as
    /// the next epoch. The clone is copy-on-write at *chunk* granularity:
    /// it Arc-shares every arena chunk with the old snapshot (O(chunks)
    /// pointer copies, no entry data moved), and the patch seals shared
    /// chunks before appending, so readers pinning the old snapshot keep
    /// the pre-update arena bit-identical for as long as they hold it.
    /// [`RefreshStats::cloned_bytes`] reports the bytes actually copied
    /// (compaction only); [`RefreshStats::resident_bytes`] and
    /// [`RefreshStats::mapped_bytes`] report the published arena's memory
    /// footprint.
    /// Dirty hubs are patched by delta propagation when
    /// [`QueryService::with_delta_config`] enabled a budget, and no-op
    /// batches skip the publish (and the cache eviction) entirely, exactly
    /// as in the [`MemoryIndex`] variant.
    pub fn apply_update(&self, new_graph: Graph, changed_tails: &[NodeId]) -> RefreshStats {
        let _updates = self.update_lock.lock();
        let old = self.snapshot();
        let (store, stats) = refresh_flat_index_snapshot_delta(
            &old.store,
            &old.graph,
            &new_graph,
            &old.hubs,
            changed_tails,
            &self.config,
            &self.delta,
        );
        if self.update_was_noop(&stats, &old.graph, &new_graph, changed_tails) {
            self.noop_skips.fetch_add(1, Ordering::Relaxed);
            return stats;
        }
        // fppv-lint: allow(lock-across-io) -- update_lock exists to serialize publishers; readers never take it
        self.publish(ServingState {
            graph: Arc::new(new_graph),
            hubs: Arc::clone(&old.hubs),
            store: Arc::new(store),
            epoch: old.epoch + 1,
        });
        stats
    }
}

/// Store-specific half of a staged (two-phase) update: build the next
/// store off the pinned one without publishing. The crucial property for
/// sharded deployments: the refresh is restricted to the hubs the old
/// store actually holds, so a partial (sliced) store stays partial —
/// a full-hub-set refresh would recompute every missing hub and balloon
/// one shard's slice into the whole index. Stores that cannot refresh
/// incrementally keep the `None` default and refuse staged updates.
pub trait ShardRefresh: Sized {
    /// Builds the refreshed store for `new_graph`, or `None` if this
    /// store type does not support staged refreshes.
    #[allow(clippy::too_many_arguments)]
    fn refresh_for_shard(
        &self,
        old_graph: &Graph,
        new_graph: &Graph,
        hubs: &HubSet,
        changed_tails: &[NodeId],
        config: &Config,
        delta: &DeltaConfig,
    ) -> Option<(Self, RefreshStats)> {
        let _ = (old_graph, new_graph, hubs, changed_tails, config, delta);
        None
    }
}

impl ShardRefresh for MemoryIndex {
    fn refresh_for_shard(
        &self,
        old_graph: &Graph,
        new_graph: &Graph,
        hubs: &HubSet,
        changed_tails: &[NodeId],
        config: &Config,
        delta: &DeltaConfig,
    ) -> Option<(Self, RefreshStats)> {
        Some(refresh_index_delta_subset(
            self,
            old_graph,
            new_graph,
            hubs,
            self.hub_ids(),
            changed_tails,
            config,
            delta,
        ))
    }
}

/// Disk-resident stores cannot rebuild themselves in memory — they keep
/// the default (`None`) and refuse staged updates over the wire.
impl ShardRefresh for fastppv_core::DiskIndex {}

impl ShardRefresh for FlatIndex {
    fn refresh_for_shard(
        &self,
        old_graph: &Graph,
        new_graph: &Graph,
        hubs: &HubSet,
        changed_tails: &[NodeId],
        config: &Config,
        delta: &DeltaConfig,
    ) -> Option<(Self, RefreshStats)> {
        // Flat arenas are only deployed whole (slices are MemoryIndex),
        // so the full-hub-set snapshot refresh is the right one.
        Some(refresh_flat_index_snapshot_delta(
            self,
            old_graph,
            new_graph,
            hubs,
            changed_tails,
            config,
            delta,
        ))
    }
}

impl<S: PpvStore + ShardRefresh + Send + Sync> QueryService<S> {
    /// Phase one of a coordinated cluster update: refresh the store
    /// against `new_graph` and stage the resulting snapshot at
    /// `target_epoch` **without publishing it**. Serving continues on the
    /// current snapshot; a later [`QueryService::commit_update`] flips the
    /// cluster to the staged version, [`QueryService::abort_update`]
    /// discards it. Re-preparing replaces any previously staged snapshot.
    ///
    /// Unlike [`QueryService::apply_update`] there is no no-op skip: the
    /// coordinator bumps every shard to `target_epoch` in lockstep, and a
    /// shard whose slice happened to be untouched must still advance or
    /// the cluster's epochs diverge and every scattered query hits
    /// [`SubQueryError::EpochSkew`].
    pub fn prepare_update(
        &self,
        target_epoch: u64,
        new_graph: Graph,
        changed_tails: &[NodeId],
    ) -> Result<RefreshStats, String> {
        let _updates = self.update_lock.lock();
        let old = self.snapshot();
        if target_epoch != old.epoch + 1 {
            return Err(format!(
                "prepare for epoch {target_epoch} but serving epoch {} (want {})",
                old.epoch,
                old.epoch + 1
            ));
        }
        let (store, stats) = old
            .store
            .refresh_for_shard(
                &old.graph,
                &new_graph,
                &old.hubs,
                changed_tails,
                &self.config,
                &self.delta,
            )
            .ok_or_else(|| "store does not support staged updates".to_string())?;
        *self.staged.lock() = Some(ServingState {
            graph: Arc::new(new_graph),
            hubs: Arc::clone(&old.hubs),
            store: Arc::new(store),
            epoch: target_epoch,
        });
        Ok(stats)
    }

    /// Phase two: publish the snapshot staged for `target_epoch`. Fails —
    /// leaving serving untouched — if nothing is staged, the staged epoch
    /// does not match, or an update published in between made the staged
    /// snapshot stale.
    pub fn commit_update(&self, target_epoch: u64) -> Result<(), String> {
        let _updates = self.update_lock.lock();
        let mut staged = self.staged.lock();
        let ready = staged
            .take()
            .ok_or_else(|| format!("no staged update to commit at epoch {target_epoch}"))?;
        if ready.epoch != target_epoch {
            let have = ready.epoch;
            *staged = Some(ready);
            return Err(format!(
                "staged epoch {have} does not match commit target {target_epoch}"
            ));
        }
        drop(staged);
        let current = self.epoch();
        if target_epoch != current + 1 {
            return Err(format!(
                "staged epoch {target_epoch} is stale (serving epoch {current})"
            ));
        }
        // fppv-lint: allow(lock-across-io) -- update_lock exists to serialize publishers; readers never take it
        self.publish(ready);
        Ok(())
    }

    /// Discards any staged snapshot, returning whether one existed.
    pub fn abort_update(&self) -> bool {
        let _updates = self.update_lock.lock();
        self.staged.lock().take().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastppv_core::offline::build_index;
    use fastppv_core::HubSet;
    use fastppv_graph::toy;
    use fastppv_graph::GraphBuilder;

    fn toy_service(options: ServiceOptions) -> QueryService<MemoryIndex> {
        let g = toy::graph();
        let hubs = HubSet::from_ids(8, toy::PAPER_HUBS.to_vec());
        let config = Config::exhaustive();
        let (index, _) = build_index(&g, &hubs, &config);
        QueryService::new(
            Arc::new(g),
            Arc::new(hubs),
            Arc::new(index),
            config,
            options,
        )
    }

    #[test]
    fn latency_summary_matches_percentiles() {
        let ms = |v: u64| Duration::from_millis(v);
        let sample = vec![ms(9), ms(1), ms(5), ms(3), ms(7)];
        let s = LatencySummary::of(&sample);
        assert_eq!(s.queries, 5);
        assert_eq!(s.p50, ms(5));
        assert_eq!(s.p99, ms(9));
        let empty = LatencySummary::of(&[]);
        assert_eq!((empty.queries, empty.p50, empty.p99), (0, ms(0), ms(0)));
        // of_mut: sorts in place once, same figures.
        let mut sample = sample;
        let s2 = LatencySummary::of_mut(&mut sample);
        assert_eq!((s2.p50, s2.p99), (s.p50, s.p99));
        assert!(sample.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sorted_pair_percentile_matches_merged_sample() {
        let ms = |v: u64| Duration::from_millis(v);
        let a: Vec<Duration> = [1u64, 4, 9, 12].into_iter().map(ms).collect();
        let b: Vec<Duration> = [2u64, 3, 5, 20, 21].into_iter().map(ms).collect();
        let mut merged = a.clone();
        merged.extend_from_slice(&b);
        merged.sort_unstable();
        for p in [0.01, 0.25, 0.5, 0.75, 0.99, 1.0] {
            assert_eq!(
                percentile_of_sorted_pair(&a, &b, p),
                percentile_of_sorted(&merged, p),
                "p = {p}"
            );
        }
        // Degenerate shapes: one side empty, both empty.
        assert_eq!(percentile_of_sorted_pair(&a, &[], 0.5), percentile(&a, 0.5));
        assert_eq!(percentile_of_sorted_pair(&[], &b, 0.5), percentile(&b, 0.5));
        assert_eq!(percentile_of_sorted_pair(&[], &[], 0.5), Duration::ZERO);
    }

    #[test]
    fn batch_matches_direct_engine() {
        let service = toy_service(ServiceOptions {
            workers: 4,
            queue_capacity: 2,
            cache_capacity: 0,
        });
        let requests: Vec<Request> = (0..8u32)
            .cycle()
            .take(32)
            .map(|q| Request::iterations(q, 3))
            .collect();
        let responses = service.process_batch(requests.clone());
        assert_eq!(responses.len(), 32);
        let state = service.snapshot();
        let engine = state.engine(*service.config());
        for (req, resp) in requests.iter().zip(&responses) {
            assert_eq!(resp.query, req.query, "responses keep request order");
            let direct = engine.query(req.query, &req.stop);
            assert_eq!(*resp.scores, direct.scores);
            assert_eq!(resp.iterations, direct.iterations);
            assert!((resp.l1_error - direct.l1_error).abs() < 1e-15);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn single_query_path_rejects_out_of_range_node() {
        let service = toy_service(ServiceOptions {
            workers: 1,
            queue_capacity: 1,
            cache_capacity: 0,
        });
        // The toy graph has 8 nodes; node 8 must fail the shared range
        // check with a named-node panic, not an opaque slice index.
        service.query(Request::iterations(8, 2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn batch_path_rejects_out_of_range_node() {
        let service = toy_service(ServiceOptions {
            workers: 2,
            queue_capacity: 4,
            cache_capacity: 0,
        });
        service.process_batch(vec![Request::iterations(0, 2), Request::iterations(99, 2)]);
    }

    #[test]
    fn cache_hits_are_identical_and_flagged() {
        let service = toy_service(ServiceOptions {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 16,
        });
        let first = service.query(Request::iterations(toy::A, 2));
        assert!(!first.cached);
        let second = service.query(Request::iterations(toy::A, 2));
        assert!(second.cached, "repeat (query, eta) must hit the cache");
        assert!(Arc::ptr_eq(&first.scores, &second.scores));
        assert_eq!(second.l1_error, first.l1_error);
        let stats = service.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // Different eta is a different key.
        let third = service.query(Request::iterations(toy::A, 3));
        assert!(!third.cached);
    }

    #[test]
    fn non_deterministic_requests_bypass_cache() {
        let service = toy_service(ServiceOptions {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 16,
        });
        for _ in 0..2 {
            let r = service.query(
                Request::iterations(toy::A, 1)
                    .with_deadline(Instant::now() + Duration::from_secs(5)),
            );
            assert!(!r.cached);
        }
        let l1 = service.query(Request::l1_error(toy::A, 0.05));
        assert!(!l1.cached);
        assert_eq!(service.cache_stats().entries, 0);
    }

    #[test]
    fn expired_deadline_stops_at_iteration_zero() {
        let service = toy_service(ServiceOptions {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 0,
        });
        let r = service.query(
            Request {
                query: toy::A,
                stop: StoppingCondition::iterations(50),
                deadline: None,
            }
            .with_deadline(Instant::now() - Duration::from_millis(1)),
        );
        assert_eq!(r.iterations, 0, "an expired deadline must stop immediately");
    }

    #[test]
    fn tiny_queue_still_serves_large_batch() {
        let service = toy_service(ServiceOptions {
            workers: 3,
            queue_capacity: 1,
            cache_capacity: 0,
        });
        let requests: Vec<Request> = (0..8u32)
            .cycle()
            .take(100)
            .map(|q| Request::iterations(q, 2))
            .collect();
        let responses = service.process_batch(requests);
        assert_eq!(responses.len(), 100);
        assert!(responses.iter().all(|r| r.l1_error < 1.0));
    }

    #[test]
    fn empty_batch_is_fine() {
        let service = toy_service(ServiceOptions::default());
        assert!(service.process_batch(Vec::new()).is_empty());
    }

    #[test]
    fn apply_update_invalidates_and_refreshes() {
        let service = toy_service(ServiceOptions {
            workers: 2,
            queue_capacity: 8,
            cache_capacity: 16,
        });
        let stale = service.query(Request::iterations(toy::A, 4));
        assert_eq!(service.cache_stats().entries, 1);
        assert_eq!(service.epoch(), 0);

        // Add an edge a -> e: a's PPV must change.
        let old = service.graph();
        let mut b = GraphBuilder::new(8);
        for (s, t) in old.edges() {
            b.add_edge(s, t);
        }
        b.add_edge(toy::A, toy::E);
        let stats = service.apply_update(b.build(), &[toy::A]);
        assert!(stats.recomputed + stats.reused > 0);
        assert_eq!(service.epoch(), 1, "an update bumps the epoch");
        assert_eq!(
            service.cache_stats().entries,
            0,
            "update must clear the cache"
        );

        let fresh = service.query(Request::iterations(toy::A, 4));
        assert!(!fresh.cached);
        // The new result reflects the new graph, not the stale cache: the
        // fresh estimate must put mass on e (now a direct out-neighbor).
        assert!(fresh.scores.get(toy::E) > stale.scores.get(toy::E));
    }

    #[test]
    fn noop_update_skips_publish_and_keeps_cache() {
        let service = toy_service(ServiceOptions {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 16,
        });
        service.query(Request::iterations(toy::A, 4));
        assert_eq!(service.cache_stats().entries, 1);
        // Replaying the same graph with no affected hubs changes nothing:
        // the publish (and the cache eviction) must be skipped.
        let stats = service.apply_update(toy::graph(), &[]);
        assert_eq!(stats.dirty(), 0);
        assert_eq!(service.epoch(), 0, "no-op update must not bump the epoch");
        assert_eq!(service.cache_stats().entries, 1, "warm cache survives");
        assert_eq!(service.cache_stats().noop_update_skips, 1);
        // A genuine update still publishes and evicts.
        let old = service.graph();
        let mut b = GraphBuilder::new(8);
        for (s, t) in old.edges() {
            b.add_edge(s, t);
        }
        b.add_edge(toy::A, toy::E);
        service.apply_update(b.build(), &[toy::A]);
        assert_eq!(service.epoch(), 1);
        assert_eq!(service.cache_stats().entries, 0);
        assert_eq!(service.cache_stats().noop_update_skips, 1);
    }

    #[test]
    fn expand_cache_replays_exactly_and_clears_on_publish() {
        let service = toy_service(ServiceOptions {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 16,
        });
        let hub = toy::PAPER_HUBS[0];
        let sublist = vec![(hub, 0.125_f64)];
        let first = service.expand(&sublist, None).expect("expand");
        let hits_before = service.cache_stats().hits;
        let second = service.expand(&sublist, None).expect("expand");
        assert_eq!(
            service.cache_stats().hits,
            hits_before + 1,
            "a bit-identical frontier resend must hit the expand cache"
        );
        // A hit is an exact replay, not a recomputation: every field of
        // the outcome matches bit-for-bit.
        assert_eq!(second.epoch, first.epoch);
        assert_eq!(second.outcome.entries, first.outcome.entries);
        assert_eq!(second.outcome.frontier, first.outcome.frontier);
        assert_eq!(
            second.outcome.increment_mass.to_bits(),
            first.outcome.increment_mass.to_bits()
        );
        // A different mass bit pattern is a different key.
        let misses_before = service.cache_stats().misses;
        service.expand(&[(hub, 0.25_f64)], None).expect("expand");
        assert_eq!(service.cache_stats().misses, misses_before + 1);
        // Publish clears the expand cache along with the sub-caches: the
        // same sublist recomputes and carries the new epoch.
        let old = service.graph();
        let mut b = GraphBuilder::new(8);
        for (s, t) in old.edges() {
            b.add_edge(s, t);
        }
        b.add_edge(toy::A, toy::E);
        service.apply_update(b.build(), &[toy::A]);
        let misses_before = service.cache_stats().misses;
        let fresh = service.expand(&sublist, None).expect("expand");
        assert_eq!(
            service.cache_stats().misses,
            misses_before + 1,
            "publish must clear the expand cache"
        );
        assert_eq!(fresh.epoch, 1);
    }

    #[test]
    fn delta_service_skips_vacuous_batches_with_tails() {
        let service = toy_service(ServiceOptions {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 16,
        })
        .with_delta_config(DeltaConfig::default());
        service.query(Request::iterations(toy::A, 4));
        // A hub tail is listed, so hubs *are* invalidated — but its row is
        // unchanged, every patch comes back empty, and nothing publishes.
        let h = service.hubs().ids()[0];
        let stats = service.apply_update(toy::graph(), &[h]);
        assert!(stats.delta_patched > 0);
        assert_eq!(stats.delta_patched, stats.delta_noop);
        assert_eq!(stats.recomputed, 0);
        assert_eq!(service.epoch(), 0);
        assert_eq!(service.cache_stats().entries, 1);
        assert_eq!(service.cache_stats().noop_update_skips, 1);
    }

    #[test]
    fn in_flight_snapshot_survives_update() {
        let service = toy_service(ServiceOptions {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 0,
        });
        // Pin the pre-update snapshot, as a worker mid-request would.
        let pinned = service.snapshot();
        let before = pinned
            .engine(*service.config())
            .query(toy::A, &StoppingCondition::iterations(4));

        let old = service.graph();
        let mut b = GraphBuilder::new(8);
        for (s, t) in old.edges() {
            b.add_edge(s, t);
        }
        b.add_edge(toy::A, toy::E);
        service.apply_update(b.build(), &[toy::A]);

        // The pinned snapshot still answers exactly as before the update.
        let after = pinned
            .engine(*service.config())
            .query(toy::A, &StoppingCondition::iterations(4));
        assert_eq!(before.scores, after.scores);
        assert_eq!(pinned.epoch(), 0);
        assert_eq!(service.snapshot().epoch(), 1);
    }

    #[test]
    fn stale_epoch_insert_is_rejected() {
        let service = toy_service(ServiceOptions {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 16,
        });
        // Simulate the race: a worker computed a result against epoch 0,
        // but the update (epoch 1, cache cleared) lands before its insert.
        let key = service
            .cache_key(&Request::iterations(toy::A, 2))
            .expect("iteration stop is cacheable");
        let scores = Arc::new(SparseVector::default());
        service.invalidate_cache(); // epoch 0 -> 1
        service.try_cache_insert(
            key,
            CachedResult {
                scores: Arc::clone(&scores),
                l1_error: 0.0,
                iterations: 2,
                exhausted: false,
                epoch: 0,
            },
        );
        let stats = service.cache_stats();
        assert_eq!(stats.entries, 0, "stale insert must be rejected");
        assert_eq!(stats.stale_rejects, 1);
        // A current-epoch insert is accepted.
        service.try_cache_insert(
            key,
            CachedResult {
                scores,
                l1_error: 0.0,
                iterations: 2,
                exhausted: false,
                epoch: service.epoch(),
            },
        );
        assert_eq!(service.cache_stats().entries, 1);
    }

    #[test]
    fn invalidate_cache_bumps_epoch() {
        let service = toy_service(ServiceOptions {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 16,
        });
        service.query(Request::iterations(toy::A, 2));
        assert_eq!(service.cache_stats().entries, 1);
        assert_eq!(service.invalidate_cache(), 1);
        assert_eq!(service.epoch(), 1);
        assert_eq!(service.cache_stats().entries, 0);
    }

    #[test]
    fn flat_service_matches_memory_service_and_updates() {
        let g = toy::graph();
        let hubs = HubSet::from_ids(8, toy::PAPER_HUBS.to_vec());
        let config = Config::exhaustive();
        let (index, _) = build_index(&g, &hubs, &config);
        let flat = fastppv_core::FlatIndex::from_memory(&index, &hubs);
        let options = ServiceOptions {
            workers: 2,
            queue_capacity: 8,
            cache_capacity: 16,
        };
        let mem_service = QueryService::new(
            Arc::new(g.clone()),
            Arc::new(hubs.clone()),
            Arc::new(index),
            config,
            options,
        );
        let flat_service =
            QueryService::new(Arc::new(g), Arc::new(hubs), Arc::new(flat), config, options);
        for q in 0..8u32 {
            let a = mem_service.query(Request::iterations(q, 3));
            let b = flat_service.query(Request::iterations(q, 3));
            assert_eq!(*a.scores, *b.scores, "query {q}");
        }
        // A flat deployment takes updates too: patch a clone, publish it,
        // and reflect the edit — while a pinned pre-update snapshot keeps
        // the old arena.
        let pinned = flat_service.snapshot();
        let before = pinned
            .engine(config)
            .query(toy::A, &StoppingCondition::iterations(4));
        let old = flat_service.graph();
        let mut b = GraphBuilder::new(8);
        for (s, t) in old.edges() {
            b.add_edge(s, t);
        }
        b.add_edge(toy::A, toy::E);
        let stats = flat_service.apply_update(b.build(), &[toy::A]);
        assert!(stats.recomputed + stats.reused > 0);
        assert_eq!(flat_service.cache_stats().entries, 0);
        // The refresh reports the published arena's memory footprint; the
        // toy arena is heap-built, so nothing is file-mapped.
        assert!(stats.resident_bytes > 0);
        assert_eq!(stats.mapped_bytes, 0);
        let fresh = flat_service.query(Request::iterations(toy::A, 4));
        // The inserted direct edge a -> e must raise a's mass on e.
        assert!(fresh.scores.get(toy::E) > before.scores.get(toy::E));
        // Copy-on-write: the pinned snapshot's arena is a different
        // allocation now and still answers exactly as pre-update.
        assert!(!Arc::ptr_eq(pinned.store(), &flat_service.store()));
        let pre = pinned
            .engine(config)
            .query(toy::A, &StoppingCondition::iterations(4));
        assert_eq!(pre.scores, before.scores, "pinned arena is pre-update");
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn rejects_zero_workers() {
        toy_service(ServiceOptions {
            workers: 0,
            queue_capacity: 1,
            cache_capacity: 0,
        });
    }

    fn overloadable_service(overload: OverloadOptions) -> QueryService<MemoryIndex> {
        toy_service(ServiceOptions {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 0,
        })
        .with_overload(overload)
    }

    #[test]
    fn regimes_follow_in_flight_watermarks() {
        let service = overloadable_service(OverloadOptions {
            degrade_in_flight: 2,
            shed_in_flight: 4,
            ..OverloadOptions::default()
        });
        assert_eq!(service.load_regime(), LoadRegime::Normal);
        assert_eq!(service.admission(), Admission::Admit { degraded: false });
        let _one = service.track_in_flight(1);
        assert_eq!(service.load_regime(), LoadRegime::Normal);
        {
            let _two = service.track_in_flight(1);
            assert_eq!(service.load_regime(), LoadRegime::Degrade);
            assert_eq!(service.admission(), Admission::Admit { degraded: true });
            let _more = service.track_in_flight(2);
            assert_eq!(service.load_regime(), LoadRegime::Shed);
            match service.admission() {
                Admission::Shed { retry_after } => {
                    assert!(retry_after > Duration::ZERO, "retry hint must be positive")
                }
                other => panic!("expected shed, got {other:?}"),
            }
            service.note_shed();
        }
        // Guards dropped: back below the degrade watermark.
        assert_eq!(service.load_regime(), LoadRegime::Normal);
        let stats = service.load_stats();
        assert_eq!(stats.in_flight, 1);
        assert_eq!(stats.shed, 1);
    }

    #[test]
    fn degraded_request_is_capped_flagged_and_still_certified() {
        let service = overloadable_service(OverloadOptions {
            degrade_in_flight: 2,
            shed_in_flight: 100,
            degraded_max_iterations: 0,
            ..OverloadOptions::default()
        });
        // Hold one slot: the next request's own in-flight entry reaches
        // the watermark, so it executes in Degrade.
        let _held = service.track_in_flight(1);
        let r = service.query(Request::iterations(toy::A, 8));
        assert!(r.degraded, "degrade cap must be flagged");
        assert_eq!(r.iterations, 0, "capped at degraded_max_iterations");
        // φ of the degraded answer is still a true bound.
        let exact = fastppv_baselines::exact_ppv(
            &service.graph(),
            toy::A,
            fastppv_baselines::ExactOptions::default(),
        );
        let true_gap: f64 = service
            .graph()
            .nodes()
            .map(|v| exact[v as usize] - r.scores.get(v))
            .sum();
        assert!(
            true_gap <= r.l1_error + 1e-9,
            "degraded φ {} must bound the true gap {true_gap}",
            r.l1_error
        );
        assert_eq!(service.load_stats().degraded, 1);
        // Below the watermark the same request runs at full accuracy.
        drop(_held);
        let full = service.query(Request::iterations(toy::A, 8));
        assert!(!full.degraded);
        assert!(full.iterations > 0);
        assert!(full.l1_error <= r.l1_error + 1e-15);
    }

    #[test]
    fn p99_above_deadline_target_degrades() {
        let service = overloadable_service(OverloadOptions {
            degrade_in_flight: 1000,
            shed_in_flight: 1000,
            deadline_p99: Some(Duration::from_nanos(1)),
            ..OverloadOptions::default()
        });
        assert_eq!(
            service.load_regime(),
            LoadRegime::Normal,
            "no samples yet: p99 is zero"
        );
        // Any real served latency exceeds a 1ns target.
        service.query(Request::iterations(toy::A, 3));
        assert_eq!(service.load_regime(), LoadRegime::Degrade);
        assert!(service.load_stats().recent_p99 > Duration::from_nanos(1));
    }

    #[test]
    fn without_overload_policy_nothing_changes() {
        let service = toy_service(ServiceOptions {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 0,
        });
        assert_eq!(service.load_regime(), LoadRegime::Normal);
        assert_eq!(service.admission(), Admission::Admit { degraded: false });
        let r = service.query(Request::iterations(toy::A, 4));
        assert!(!r.degraded);
        let stats = service.load_stats();
        assert_eq!((stats.in_flight, stats.degraded, stats.shed), (0, 0, 0));
        assert_eq!(stats.recent_p99, Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "retry_after must be positive")]
    fn rejects_zero_retry_after() {
        overloadable_service(OverloadOptions {
            retry_after: Duration::ZERO,
            ..OverloadOptions::default()
        });
    }
}
