//! # FastPPV server — concurrent query serving
//!
//! The paper's online phase (§5.2) is read-only over the graph, hub set,
//! and prime-PPV index, and after every increment the L1 error of the
//! estimate is known exactly (Eq. 6). Those two properties are what a
//! latency-budgeted service needs: one shared engine serves any number of
//! worker threads, and every request can carry its own accuracy/latency
//! contract. This crate packages that into a [`QueryService`]:
//!
//! * a **shared read-only engine** — [`fastppv_core::QueryEngine`] is
//!   `&self` at query time; workers differ only in their
//!   [`fastppv_core::QueryWorkspace`];
//! * a **fixed-size worker pool** over a **bounded submission queue**
//!   (backpressure instead of unbounded buffering), batching requests with
//!   per-request stopping conditions (iterations η / L1 target / deadline);
//! * **epoch-stamped snapshots** — the graph, hub set, and store live in
//!   one immutable [`ServingState`] behind a swap cell; queries pin a
//!   snapshot, and [`QueryService::apply_update`] (`&self`, concurrent
//!   with serving) refreshes the index against the pinned old state and
//!   publishes the next epoch while in-flight queries finish undisturbed;
//! * a **hot-PPV cache** — an [`cache::LruCache`] keyed by `(query, η)`
//!   memoizing deterministic requests; every entry is stamped with its
//!   snapshot's epoch, so an update both clears the cache and rejects
//!   late inserts computed against the old state;
//! * a **TCP front-end** ([`net`]) — a length-prefixed binary protocol
//!   (`fastppv serve --listen ADDR`) with a thread-per-connection acceptor
//!   feeding the worker pool, relative-millisecond deadlines on the wire,
//!   and a blocking [`net::Client`] for drivers.
//!
//! ```
//! use std::sync::Arc;
//! use fastppv_core::{build_index, select_hubs, Config, HubPolicy};
//! use fastppv_graph::gen::barabasi_albert;
//! use fastppv_server::{QueryService, Request, ServiceOptions};
//!
//! let graph = barabasi_albert(300, 3, 42);
//! let config = Config::default();
//! let hubs = select_hubs(&graph, HubPolicy::ExpectedUtility, 20, 0);
//! let (index, _) = build_index(&graph, &hubs, &config);
//! let service = QueryService::new(
//!     Arc::new(graph),
//!     Arc::new(hubs),
//!     Arc::new(index),
//!     config,
//!     ServiceOptions { workers: 4, ..Default::default() },
//! );
//! let responses = service.process_batch(
//!     (0..20u32).map(|q| Request::iterations(q, 2)).collect(),
//! );
//! assert_eq!(responses.len(), 20);
//! assert!(responses.iter().all(|r| r.l1_error <= 0.85f64.powi(4)));
//!
//! // The same mix again is served from the hot-PPV cache.
//! let again = service.process_batch(
//!     (0..20u32).map(|q| Request::iterations(q, 2)).collect(),
//! );
//! assert!(again.iter().all(|r| r.cached));
//! ```

pub mod cache;
pub mod net;
pub mod service;

pub use cache::LruCache;
pub use service::{
    percentile, percentile_of_sorted, percentile_of_sorted_pair, Admission, CacheStats,
    ExpandAnswer, LatencySummary, LoadRegime, LoadStats, OverloadOptions, Prime0Parts,
    QueryService, Request, Response, ServiceOptions, ServingState, ShardRefresh, SubQueryError,
};
