//! Graph substrate for the FastPPV reproduction.
//!
//! This crate provides everything the Personalized PageRank algorithms sit on
//! top of:
//!
//! * a compact CSR [`Graph`] with forward and reverse adjacency ([`csr`]),
//! * a [`GraphBuilder`] with dedup and dangling-node policies ([`builder`]),
//! * global [`pagerank`] (needed by hub selection and the baselines),
//! * seeded synthetic [`gen`]erators standing in for the paper's DBLP and
//!   LiveJournal datasets (see `DESIGN.md` §4 for the substitution argument),
//! * plain-text edge-list [`io`],
//! * the paper's Figure 1 running-example graph ([`toy`]),
//! * shared numeric kernels ([`SparseVector`], [`ScoreScratch`]) used by every
//!   PPR computation in the workspace ([`vec`]).
//!
//! Node identifiers are `u32` ([`NodeId`]); scores are `f64` in memory.

pub mod builder;
pub mod csr;
pub mod gen;
pub mod io;
pub mod pagerank;
pub mod stats;
pub mod toy;
pub mod vec;

pub use builder::{DanglingPolicy, GraphBuilder};
pub use csr::{CsrView, Graph, NodeId};
pub use pagerank::{pagerank, PageRankOptions};
pub use vec::{ScoreScratch, SparseVector};
