//! LiveJournal-like synthetic directed social network.
//!
//! Directed preferential attachment with reciprocation: each arriving user
//! declares friendship to a skewed number of existing users, chosen
//! preferentially by in-degree (popularity), and each declaration is
//! reciprocated with probability `reciprocity` — matching the paper's
//! description of LiveJournal ("friendship not necessarily reciprocal",
//! directed edges, power-law degrees).
//!
//! Edges are returned in creation order so that the Fig. 13(b) sampling
//! series (`S1..S5`, growing edge counts) can be reproduced with
//! [`super::evolve::sample_prefix`].

use rand::Rng;

use crate::builder::GraphBuilder;
use crate::csr::{Graph, NodeId};

/// Parameters for [`SocialNetwork::generate`].
#[derive(Clone, Copy, Debug)]
pub struct SocialParams {
    /// Number of users.
    pub nodes: usize,
    /// Maximum friends declared on arrival (`1..=max`, Zipf-distributed
    /// with exponent [`SocialParams::declared_exponent`]). Real LiveJournal
    /// out-degrees are power-law into the hundreds, which is what gives
    /// top-EU hubs their "decaying power"; keep this large.
    pub max_declared: usize,
    /// Zipf exponent of the declared-friends distribution (larger = lighter
    /// tail; ~1.8 gives a mean around 4 with a tail into `max_declared`).
    pub declared_exponent: f64,
    /// Probability that a declared friendship is reciprocated.
    pub reciprocity: f64,
    /// Probability of picking a uniformly random target instead of a
    /// preferential one (degree mixing).
    pub uniform_mix: f64,
}

impl Default for SocialParams {
    fn default() -> Self {
        SocialParams {
            nodes: 50_000,
            max_declared: 300,
            declared_exponent: 1.8,
            reciprocity: 0.5,
            uniform_mix: 0.15,
        }
    }
}

/// A generated directed social network.
#[derive(Clone, Debug)]
pub struct SocialNetwork {
    /// The directed friendship graph (dangling users get self-loops).
    pub graph: Graph,
    /// All directed edges in creation order (before the dangling fix).
    pub edges: Vec<(NodeId, NodeId)>,
}

impl SocialNetwork {
    /// Generates a network with the given parameters and seed.
    pub fn generate(params: SocialParams, seed: u64) -> Self {
        assert!(params.nodes >= 2);
        assert!(params.max_declared >= 1);
        let mut rng = super::rng(seed);
        let n = params.nodes;
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        // Popularity pool: node v appears once per in-edge, plus once at
        // arrival so newcomers can be befriended.
        let mut pool: Vec<NodeId> = vec![0];
        edges.push((1, 0));
        pool.push(0);
        pool.push(1);
        if rng.gen::<f64>() < params.reciprocity {
            edges.push((0, 1));
            pool.push(1);
        }
        // Precompute the declared-count CDF once (zipf over 1..=max).
        let weights: Vec<f64> = (1..=params.max_declared)
            .map(|k| 1.0 / (k as f64).powf(params.declared_exponent))
            .collect();
        let total_w: f64 = weights.iter().sum();
        let sample_declared = move |rng: &mut rand_chacha::ChaCha8Rng| {
            let mut x = rng.gen::<f64>() * total_w;
            for (i, w) in weights.iter().enumerate() {
                x -= w;
                if x <= 0.0 {
                    return i + 1;
                }
            }
            weights.len()
        };
        for u in 2..n as NodeId {
            let k = sample_declared(&mut rng).min(u as usize);
            let mut declared: Vec<NodeId> = Vec::with_capacity(k);
            let mut attempts = 0;
            while declared.len() < k && attempts < 10 * k {
                attempts += 1;
                let v = if rng.gen::<f64>() < params.uniform_mix {
                    rng.gen_range(0..u)
                } else {
                    pool[rng.gen_range(0..pool.len())]
                };
                if v != u && !declared.contains(&v) {
                    declared.push(v);
                }
            }
            pool.push(u);
            for &v in &declared {
                edges.push((u, v));
                pool.push(v);
                if rng.gen::<f64>() < params.reciprocity {
                    edges.push((v, u));
                    pool.push(u);
                }
            }
        }
        let mut b = GraphBuilder::new(n)
            .with_edge_capacity(edges.len())
            .dedup(true);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        SocialNetwork {
            graph: b.build(),
            edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SocialNetwork {
        SocialNetwork::generate(
            SocialParams {
                nodes: 3000,
                ..Default::default()
            },
            5,
        )
    }

    #[test]
    fn counts_and_determinism() {
        let a = small();
        let b = small();
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.graph.num_nodes(), 3000);
        assert!(a.graph.num_edges() > 3000);
    }

    #[test]
    fn directed_not_symmetric() {
        let net = small();
        let g = &net.graph;
        let asym = g
            .edges()
            .filter(|&(u, v)| u != v && !g.has_edge(v, u))
            .count();
        assert!(asym > 0, "reciprocity < 1 must leave one-way edges");
    }

    #[test]
    fn no_dangling_after_build() {
        assert_eq!(small().graph.num_dangling(), 0);
    }

    #[test]
    fn in_degree_skew() {
        let net = small();
        let g = &net.graph;
        let max_in = g.nodes().map(|v| g.in_degree(v)).max().unwrap();
        let avg = g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(max_in as f64 > 5.0 * avg, "max {max_in} avg {avg}");
    }

    #[test]
    fn edges_in_creation_order_reference_existing_nodes() {
        let net = small();
        // Every edge endpoint must have arrived before the edge: the larger
        // endpoint id is the arrival time.
        for (i, &(u, v)) in net.edges.iter().enumerate() {
            let t = u.max(v);
            // Find first edge index that could have created node t.
            assert!(t < 3000, "edge {i} endpoints ({u},{v}) out of range");
        }
    }
}
