//! Barabási–Albert preferential attachment (undirected).

use rand::Rng;

use crate::builder::GraphBuilder;
use crate::csr::{Graph, NodeId};

/// Generates an undirected Barabási–Albert graph with `n` nodes, each new
/// node attaching to `m` existing nodes chosen preferentially by degree.
///
/// The result has a power-law degree tail — the regime in which hub-based
/// scheduling pays off.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m >= 1, "attachment count must be >= 1");
    let mut rng = super::rng(seed);
    let mut b = GraphBuilder::new(n).with_edge_capacity(2 * n * m);
    // `stubs` holds one entry per edge endpoint: sampling uniformly from it
    // is sampling nodes proportionally to degree.
    let mut stubs: Vec<NodeId> = Vec::with_capacity(2 * n * m);
    let seed_nodes = (m + 1).min(n);
    // Seed clique over the first m+1 nodes.
    for u in 0..seed_nodes {
        for v in (u + 1)..seed_nodes {
            b.add_undirected_edge(u as NodeId, v as NodeId);
            stubs.push(u as NodeId);
            stubs.push(v as NodeId);
        }
    }
    let mut targets: Vec<NodeId> = Vec::with_capacity(m);
    for u in seed_nodes..n {
        targets.clear();
        while targets.len() < m {
            let t = stubs[rng.gen_range(0..stubs.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            b.add_undirected_edge(u as NodeId, t);
            stubs.push(u as NodeId);
            stubs.push(t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_and_edge_counts() {
        let g = barabasi_albert(100, 3, 42);
        assert_eq!(g.num_nodes(), 100);
        // seed clique (4 choose 2) = 6 edges + 96 * 3 attachments, doubled.
        assert_eq!(g.num_edges(), 2 * (6 + 96 * 3));
    }

    #[test]
    fn deterministic() {
        assert_eq!(barabasi_albert(50, 2, 7), barabasi_albert(50, 2, 7));
    }

    #[test]
    fn different_seed_differs() {
        assert_ne!(barabasi_albert(50, 2, 7), barabasi_albert(50, 2, 8));
    }

    #[test]
    fn degree_skew_exists() {
        let g = barabasi_albert(2000, 2, 1);
        let max_deg = g.nodes().map(|v| g.out_degree(v)).max().unwrap();
        let avg = g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(max_deg as f64 > 5.0 * avg, "max {max_deg} avg {avg}");
    }

    #[test]
    fn tiny_n_is_clique() {
        let g = barabasi_albert(3, 5, 0);
        assert_eq!(g.num_nodes(), 3);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2) && g.has_edge(0, 2));
    }
}
