//! Seeded synthetic graph generators.
//!
//! The paper evaluates on DBLP (undirected bibliographic network, 2.0M
//! nodes / 8.8M edges, with paper timestamps) and a LiveJournal sample
//! (directed social network, 1.2M nodes / 4.8M edges). Neither dataset ships
//! with this repository, so [`dblp`] and [`social`] generate structurally
//! analogous networks: power-law degree distributions, the same node-kind
//! structure (author–paper–venue tripartite vs. directed friendship), and
//! the growth dimension each scalability experiment needs (paper years for
//! DBLP snapshots, edge arrival order for LiveJournal samples).
//! See `DESIGN.md` §4 for the substitution argument.
//!
//! All generators are deterministic given a seed (ChaCha8).

pub mod ba;
pub mod dblp;
pub mod er;
pub mod evolve;
pub mod social;

pub use ba::barabasi_albert;
pub use dblp::{BibNetwork, DblpParams, NodeKind};
pub use er::erdos_renyi;
pub use evolve::{apply_event, induced_subgraph, sample_prefix, synth_events, EdgeEvent};
pub use social::{SocialNetwork, SocialParams};

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The RNG used by every generator in this module.
pub fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Samples from `1..=max` with a Zipf-ish tail: P(k) ∝ 1/k^s, computed by
/// inverse CDF over the (small) support. Used for author counts, venue
/// fan-out and other skewed small integers.
pub(crate) fn zipf_small<R: Rng>(rng: &mut R, max: usize, s: f64) -> usize {
    debug_assert!(max >= 1);
    let weights: Vec<f64> = (1..=max).map(|k| 1.0 / (k as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i + 1;
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = rng(7);
        let mut b = rng(7);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn zipf_small_bounds() {
        let mut r = rng(1);
        for _ in 0..1000 {
            let k = zipf_small(&mut r, 5, 1.5);
            assert!((1..=5).contains(&k));
        }
        // Skew: 1 should be the most frequent value.
        let mut counts = [0usize; 6];
        for _ in 0..5000 {
            counts[zipf_small(&mut r, 5, 1.5)] += 1;
        }
        assert!(counts[1] > counts[2] && counts[2] > counts[4]);
    }
}
