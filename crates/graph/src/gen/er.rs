//! Erdős–Rényi `G(n, m)` random directed graphs.

use rand::Rng;

use crate::builder::GraphBuilder;
use crate::csr::{Graph, NodeId};

/// Generates a directed `G(n, m)` graph: `m` edges drawn uniformly at random
/// (without parallel duplicates or self-loops, except dangling-fix loops).
///
/// Homogeneous degrees make this the *anti*-case for hub scheduling; it is
/// used in tests and ablations as a contrast to the power-law generators.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Graph {
    assert!(n >= 2 || m == 0, "need at least 2 nodes to place edges");
    let max_m = n.saturating_mul(n.saturating_sub(1));
    assert!(m <= max_m, "too many edges requested: {m} > {max_m}");
    let mut rng = super::rng(seed);
    let mut b = GraphBuilder::new(n).with_edge_capacity(m).dedup(true);
    let mut placed = std::collections::HashSet::with_capacity(m);
    while placed.len() < m {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u != v && placed.insert((u, v)) {
            b.add_edge(u, v);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_edge_count_before_dangling_fix() {
        let g = erdos_renyi(50, 200, 3);
        // Dangling fix may add a few self-loops on top of the 200.
        assert!(g.num_edges() >= 200);
        assert!(g.num_edges() <= 200 + 50);
    }

    #[test]
    fn deterministic() {
        assert_eq!(erdos_renyi(30, 60, 9), erdos_renyi(30, 60, 9));
    }

    #[test]
    fn zero_edges() {
        let g = erdos_renyi(5, 0, 0);
        // All nodes dangling -> all get self-loops.
        assert_eq!(g.num_edges(), 5);
    }

    #[test]
    #[should_panic(expected = "too many edges")]
    fn rejects_overfull() {
        erdos_renyi(3, 10, 0);
    }
}
