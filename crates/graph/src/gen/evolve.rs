//! Growing-graph series: prefix sampling and induced subgraphs.
//!
//! The paper's scalability study (Fig. 13) uses DBLP snapshots by year and
//! LiveJournal samples of increasing edge counts. [`sample_prefix`] produces
//! the latter: the first `k` edges in creation order induce a graph over the
//! nodes they touch (node ids compacted).

use crate::builder::GraphBuilder;
use crate::csr::{Graph, NodeId};

/// Builds the graph induced by the first `k` edges of `edges` (creation
/// order). Returns the compacted graph and the map from new ids to old ids.
pub fn sample_prefix(edges: &[(NodeId, NodeId)], k: usize) -> (Graph, Vec<NodeId>) {
    let k = k.min(edges.len());
    let prefix = &edges[..k];
    let mut seen: Vec<NodeId> = Vec::with_capacity(2 * k);
    for &(u, v) in prefix {
        seen.push(u);
        seen.push(v);
    }
    seen.sort_unstable();
    seen.dedup();
    let max_old = seen.last().copied().map_or(0, |m| m as usize + 1);
    let mut remap = vec![NodeId::MAX; max_old];
    for (new, &old) in seen.iter().enumerate() {
        remap[old as usize] = new as NodeId;
    }
    let mut b = GraphBuilder::new(seen.len())
        .with_edge_capacity(k)
        .dedup(true);
    for &(u, v) in prefix {
        b.add_edge(remap[u as usize], remap[v as usize]);
    }
    (b.build(), seen)
}

/// Builds the subgraph induced by `nodes` (edges with both endpoints in the
/// set). Returns the compacted graph and the map from new ids to old ids.
pub fn induced_subgraph(graph: &Graph, nodes: &[NodeId]) -> (Graph, Vec<NodeId>) {
    let mut keep: Vec<NodeId> = nodes.to_vec();
    keep.sort_unstable();
    keep.dedup();
    let mut remap = vec![NodeId::MAX; graph.num_nodes()];
    for (new, &old) in keep.iter().enumerate() {
        remap[old as usize] = new as NodeId;
    }
    let mut b = GraphBuilder::new(keep.len());
    for &old in &keep {
        for &t in graph.out_neighbors(old) {
            if remap[t as usize] != NodeId::MAX {
                b.add_edge(remap[old as usize], remap[t as usize]);
            }
        }
    }
    (b.build(), keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    #[test]
    fn prefix_compacts_ids() {
        let edges = vec![(5, 9), (9, 5), (0, 5)];
        let (g, map_back) = sample_prefix(&edges, 2);
        assert_eq!(map_back, vec![5, 9]);
        assert_eq!(g.num_nodes(), 2);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
    }

    #[test]
    fn prefix_larger_than_list_takes_all() {
        let edges = vec![(0, 1)];
        let (g, _) = sample_prefix(&edges, 100);
        assert_eq!(g.num_nodes(), 2);
    }

    #[test]
    fn prefix_growth_is_monotone() {
        let edges: Vec<(NodeId, NodeId)> = (0..100).map(|i| (i, (i + 1) % 100)).collect();
        let (g1, _) = sample_prefix(&edges, 10);
        let (g2, _) = sample_prefix(&edges, 50);
        assert!(g1.num_nodes() < g2.num_nodes());
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let (sub, map_back) = induced_subgraph(&g, &[0, 1, 2]);
        assert_eq!(map_back, vec![0, 1, 2]);
        assert!(sub.has_edge(0, 1) && sub.has_edge(1, 2));
        // Edge 2 -> 3 dropped; 2 becomes dangling -> self-loop.
        assert!(sub.has_edge(2, 2));
        assert_eq!(sub.num_edges(), 3);
    }

    #[test]
    fn induced_subgraph_dedups_input_nodes() {
        let g = from_edges(3, &[(0, 1), (1, 2)]);
        let (sub, map_back) = induced_subgraph(&g, &[1, 1, 0]);
        assert_eq!(map_back, vec![0, 1]);
        assert_eq!(sub.num_nodes(), 2);
    }
}
