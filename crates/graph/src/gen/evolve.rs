//! Growing-graph series: prefix sampling, induced subgraphs, and edge
//! event streams.
//!
//! The paper's scalability study (Fig. 13) uses DBLP snapshots by year and
//! LiveJournal samples of increasing edge counts. [`sample_prefix`] produces
//! the latter: the first `k` edges in creation order induce a graph over the
//! nodes they touch (node ids compacted). [`synth_events`] /
//! [`apply_event`] drive the dynamic-update experiments (§7): a seeded
//! stream of single-edge insert/delete events applied one at a time to an
//! otherwise fixed node set.

use std::collections::HashSet;

use rand::Rng;

use crate::builder::GraphBuilder;
use crate::csr::{Graph, NodeId};

/// Builds the graph induced by the first `k` edges of `edges` (creation
/// order). Returns the compacted graph and the map from new ids to old ids.
pub fn sample_prefix(edges: &[(NodeId, NodeId)], k: usize) -> (Graph, Vec<NodeId>) {
    let k = k.min(edges.len());
    let prefix = &edges[..k];
    let mut seen: Vec<NodeId> = Vec::with_capacity(2 * k);
    for &(u, v) in prefix {
        seen.push(u);
        seen.push(v);
    }
    seen.sort_unstable();
    seen.dedup();
    let max_old = seen.last().copied().map_or(0, |m| m as usize + 1);
    let mut remap = vec![NodeId::MAX; max_old];
    for (new, &old) in seen.iter().enumerate() {
        remap[old as usize] = new as NodeId;
    }
    let mut b = GraphBuilder::new(seen.len())
        .with_edge_capacity(k)
        .dedup(true);
    for &(u, v) in prefix {
        b.add_edge(remap[u as usize], remap[v as usize]);
    }
    (b.build(), seen)
}

/// Builds the subgraph induced by `nodes` (edges with both endpoints in the
/// set). Returns the compacted graph and the map from new ids to old ids.
pub fn induced_subgraph(graph: &Graph, nodes: &[NodeId]) -> (Graph, Vec<NodeId>) {
    let mut keep: Vec<NodeId> = nodes.to_vec();
    keep.sort_unstable();
    keep.dedup();
    let mut remap = vec![NodeId::MAX; graph.num_nodes()];
    for (new, &old) in keep.iter().enumerate() {
        remap[old as usize] = new as NodeId;
    }
    let mut b = GraphBuilder::new(keep.len());
    for &old in &keep {
        for &t in graph.out_neighbors(old) {
            if remap[t as usize] != NodeId::MAX {
                b.add_edge(remap[old as usize], remap[t as usize]);
            }
        }
    }
    (b.build(), keep)
}

/// One edge change in a streaming-update workload. The node set is fixed;
/// only the adjacency evolves. `tail` is the single node whose out-row the
/// event touches — what an index refresh wants as its changed-tails list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeEvent {
    /// Source of the inserted or deleted edge.
    pub tail: NodeId,
    /// Target of the inserted or deleted edge.
    pub head: NodeId,
    /// `true` inserts the edge, `false` deletes it.
    pub insert: bool,
}

/// Synthesizes a seeded stream of `count` single-edge events against
/// `graph`: inserts of fresh non-self edges, mixed with deletes of live
/// edges at rate `delete_fraction`. The stream is *sequentially
/// consistent* — each delete targets an edge that exists at that point of
/// the stream (initial edges or earlier inserts), each insert an edge that
/// does not — so it can be applied one event at a time with
/// [`apply_event`]. Dangling-fix self-loops are never deleted directly;
/// they come and go through the builder's dangling policy.
pub fn synth_events(
    graph: &Graph,
    count: usize,
    delete_fraction: f64,
    seed: u64,
) -> Vec<EdgeEvent> {
    assert!(graph.num_nodes() >= 2, "need at least two nodes");
    assert!((0.0..=1.0).contains(&delete_fraction));
    let n = graph.num_nodes() as NodeId;
    let mut rng = super::rng(seed);
    // Live real edges; dangling-fix self-loops are bookkeeping, not data.
    let mut live: Vec<(NodeId, NodeId)> = graph.edges().filter(|&(s, t)| s != t).collect();
    let mut present: HashSet<(NodeId, NodeId)> = live.iter().copied().collect();
    let mut events = Vec::with_capacity(count);
    while events.len() < count {
        if !live.is_empty() && rng.gen::<f64>() < delete_fraction {
            let i = rng.gen_range(0..live.len());
            let (u, v) = live.swap_remove(i);
            present.remove(&(u, v));
            events.push(EdgeEvent {
                tail: u,
                head: v,
                insert: false,
            });
        } else {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u == v || present.contains(&(u, v)) {
                continue;
            }
            present.insert((u, v));
            live.push((u, v));
            events.push(EdgeEvent {
                tail: u,
                head: v,
                insert: true,
            });
        }
    }
    events
}

/// Applies one event, returning the updated graph (same node set). The
/// builder's dangling policy keeps the self-loop invariant: a node gaining
/// its first real edge sheds its dangling-fix self-loop, a node losing its
/// last real edge gets one back at build time.
pub fn apply_event(graph: &Graph, event: &EdgeEvent) -> Graph {
    let mut b = GraphBuilder::new(graph.num_nodes()).with_edge_capacity(graph.num_edges() + 1);
    if event.insert {
        for (s, t) in graph.edges() {
            if s == t && s == event.tail {
                continue; // shed the dangling-fix self-loop
            }
            b.add_edge(s, t);
        }
        b.add_edge(event.tail, event.head);
    } else {
        let mut removed = false;
        for (s, t) in graph.edges() {
            if !removed && s == event.tail && t == event.head {
                removed = true;
                continue;
            }
            b.add_edge(s, t);
        }
        debug_assert!(
            removed,
            "delete of absent edge ({}, {})",
            event.tail, event.head
        );
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    #[test]
    fn prefix_compacts_ids() {
        let edges = vec![(5, 9), (9, 5), (0, 5)];
        let (g, map_back) = sample_prefix(&edges, 2);
        assert_eq!(map_back, vec![5, 9]);
        assert_eq!(g.num_nodes(), 2);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
    }

    #[test]
    fn prefix_larger_than_list_takes_all() {
        let edges = vec![(0, 1)];
        let (g, _) = sample_prefix(&edges, 100);
        assert_eq!(g.num_nodes(), 2);
    }

    #[test]
    fn prefix_growth_is_monotone() {
        let edges: Vec<(NodeId, NodeId)> = (0..100).map(|i| (i, (i + 1) % 100)).collect();
        let (g1, _) = sample_prefix(&edges, 10);
        let (g2, _) = sample_prefix(&edges, 50);
        assert!(g1.num_nodes() < g2.num_nodes());
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let (sub, map_back) = induced_subgraph(&g, &[0, 1, 2]);
        assert_eq!(map_back, vec![0, 1, 2]);
        assert!(sub.has_edge(0, 1) && sub.has_edge(1, 2));
        // Edge 2 -> 3 dropped; 2 becomes dangling -> self-loop.
        assert!(sub.has_edge(2, 2));
        assert_eq!(sub.num_edges(), 3);
    }

    #[test]
    fn induced_subgraph_dedups_input_nodes() {
        let g = from_edges(3, &[(0, 1), (1, 2)]);
        let (sub, map_back) = induced_subgraph(&g, &[1, 1, 0]);
        assert_eq!(map_back, vec![0, 1]);
        assert_eq!(sub.num_nodes(), 2);
    }

    #[test]
    fn event_stream_is_sequentially_consistent() {
        let g0 = crate::gen::barabasi_albert(60, 2, 9);
        let events = synth_events(&g0, 120, 0.4, 17);
        assert_eq!(events.len(), 120);
        let mut g = g0;
        for (i, ev) in events.iter().enumerate() {
            if ev.insert {
                assert!(!g.has_edge(ev.tail, ev.head), "event {i} inserts a dup");
                assert_ne!(ev.tail, ev.head, "event {i} inserts a self-loop");
            } else {
                assert!(g.has_edge(ev.tail, ev.head), "event {i} deletes a ghost");
            }
            g = apply_event(&g, ev);
            if ev.insert {
                assert!(g.has_edge(ev.tail, ev.head));
            } else {
                assert!(!g.has_edge(ev.tail, ev.head) || ev.tail == ev.head);
            }
            assert_eq!(g.num_nodes(), 60, "node set is fixed");
        }
    }

    #[test]
    fn event_stream_is_deterministic() {
        let g = crate::gen::barabasi_albert(40, 2, 3);
        assert_eq!(synth_events(&g, 50, 0.3, 5), synth_events(&g, 50, 0.3, 5));
        assert_ne!(synth_events(&g, 50, 0.3, 5), synth_events(&g, 50, 0.3, 6));
    }

    #[test]
    fn dangling_invariant_survives_events() {
        // Node 2's only real edge is deleted: the builder restores its
        // dangling-fix self-loop; re-inserting sheds it again.
        let g = from_edges(3, &[(0, 1), (1, 0), (2, 0)]);
        let del = EdgeEvent {
            tail: 2,
            head: 0,
            insert: false,
        };
        let g2 = apply_event(&g, &del);
        assert!(g2.has_edge(2, 2), "dangling node gets its self-loop back");
        let ins = EdgeEvent {
            tail: 2,
            head: 1,
            insert: true,
        };
        let g3 = apply_event(&g2, &ins);
        assert!(g3.has_edge(2, 1) && !g3.has_edge(2, 2));
    }
}
