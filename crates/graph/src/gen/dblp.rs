//! DBLP-like synthetic bibliographic network.
//!
//! An undirected tripartite author–paper–venue network mirroring the
//! structural features the paper's DBLP dataset contributes to the
//! evaluation:
//!
//! * **node kinds**: papers link to 1–`max_authors` authors and exactly one
//!   venue (author–paper and paper–venue edges, as in the paper's §6);
//! * **skew**: author productivity and venue size follow preferential
//!   attachment, so degrees are power-law — venues and prolific authors are
//!   natural hubs;
//! * **time**: every paper carries a year, enabling the Fig. 13(a) snapshot
//!   series (`snapshot`).

use rand::Rng;

use crate::builder::GraphBuilder;
use crate::csr::{Graph, NodeId};

/// What a node in a [`BibNetwork`] represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// An author node.
    Author,
    /// A paper node (carries a year).
    Paper,
    /// A publication venue node.
    Venue,
}

/// Parameters for [`BibNetwork::generate`].
#[derive(Clone, Copy, Debug)]
pub struct DblpParams {
    /// Number of paper nodes.
    pub papers: usize,
    /// Number of venue nodes.
    pub venues: usize,
    /// Probability that an author slot is filled by a brand-new author.
    pub new_author_prob: f64,
    /// Maximum authors per paper (1..=max, Zipf-distributed).
    pub max_authors: usize,
    /// First publication year.
    pub first_year: u16,
    /// Last publication year (inclusive).
    pub last_year: u16,
}

impl Default for DblpParams {
    fn default() -> Self {
        DblpParams {
            papers: 20_000,
            venues: 150,
            new_author_prob: 0.35,
            max_authors: 5,
            first_year: 1994,
            last_year: 2010,
        }
    }
}

/// A generated bibliographic network.
#[derive(Clone, Debug)]
pub struct BibNetwork {
    /// The undirected tripartite graph.
    pub graph: Graph,
    /// Kind of each node.
    pub kinds: Vec<NodeKind>,
    /// Publication year of each node (0 for non-papers).
    pub years: Vec<u16>,
}

impl BibNetwork {
    /// Generates a network. Node ids are assigned in creation order:
    /// venues first, then papers and authors interleaved.
    pub fn generate(params: DblpParams, seed: u64) -> Self {
        assert!(params.venues >= 1 && params.max_authors >= 1);
        assert!(params.first_year <= params.last_year);
        let mut rng = super::rng(seed);
        let mut kinds: Vec<NodeKind> = Vec::new();
        let mut years: Vec<u16> = Vec::new();
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();

        let new_node = |kinds: &mut Vec<NodeKind>,
                        years: &mut Vec<u16>,
                        kind: NodeKind,
                        year: u16|
         -> NodeId {
            kinds.push(kind);
            years.push(year);
            (kinds.len() - 1) as NodeId
        };

        let venue_ids: Vec<NodeId> = (0..params.venues)
            .map(|_| new_node(&mut kinds, &mut years, NodeKind::Venue, 0))
            .collect();
        // Preferential pools: one entry per incident edge (plus one base
        // entry so new entities can be drawn at all).
        let mut venue_pool: Vec<NodeId> = venue_ids.clone();
        let mut author_pool: Vec<NodeId> = Vec::new();

        let year_span = (params.last_year - params.first_year) as usize;
        let mut paper_authors: Vec<NodeId> = Vec::new();
        for p in 0..params.papers {
            let year = params.first_year
                + if params.papers <= 1 {
                    0
                } else {
                    (p * year_span / (params.papers - 1)) as u16
                };
            let paper = new_node(&mut kinds, &mut years, NodeKind::Paper, year);
            // Venue: preferential by current size.
            let venue = venue_pool[rng.gen_range(0..venue_pool.len())];
            edges.push((paper, venue));
            venue_pool.push(venue);
            // Authors: 1..=max, Zipf; prolific authors are drawn more often.
            let k = super::zipf_small(&mut rng, params.max_authors, 1.2);
            paper_authors.clear();
            for _ in 0..k {
                let author = if author_pool.is_empty() || rng.gen::<f64>() < params.new_author_prob
                {
                    let a = new_node(&mut kinds, &mut years, NodeKind::Author, 0);
                    author_pool.push(a);
                    a
                } else {
                    author_pool[rng.gen_range(0..author_pool.len())]
                };
                if !paper_authors.contains(&author) {
                    paper_authors.push(author);
                }
            }
            for &a in &paper_authors {
                edges.push((paper, a));
                author_pool.push(a);
            }
        }

        let mut b = GraphBuilder::new(kinds.len()).with_edge_capacity(edges.len() * 2);
        for (u, v) in edges {
            b.add_undirected_edge(u, v);
        }
        BibNetwork {
            graph: b.build(),
            kinds,
            years,
        }
    }

    /// Number of nodes of a given kind.
    pub fn count(&self, kind: NodeKind) -> usize {
        self.kinds.iter().filter(|&&k| k == kind).count()
    }

    /// Nodes of a given kind.
    pub fn nodes_of_kind(&self, kind: NodeKind) -> impl Iterator<Item = NodeId> + '_ {
        self.kinds
            .iter()
            .enumerate()
            .filter(move |&(_, &k)| k == kind)
            .map(|(i, _)| i as NodeId)
    }

    /// The snapshot containing papers published up to and including `year`,
    /// together with their incident authors and venues (isolated entities
    /// are dropped). Returns the snapshot network and the mapping from
    /// snapshot node ids back to ids in `self`.
    pub fn snapshot(&self, year: u16) -> (BibNetwork, Vec<NodeId>) {
        let n = self.graph.num_nodes();
        let mut keep = vec![false; n];
        for v in self.graph.nodes() {
            if self.kinds[v as usize] == NodeKind::Paper && self.years[v as usize] <= year {
                keep[v as usize] = true;
                for &u in self.graph.out_neighbors(v) {
                    keep[u as usize] = true;
                }
            }
        }
        let mut map_back: Vec<NodeId> = Vec::new();
        let mut remap: Vec<NodeId> = vec![NodeId::MAX; n];
        for v in 0..n {
            if keep[v] {
                remap[v] = map_back.len() as NodeId;
                map_back.push(v as NodeId);
            }
        }
        let mut b = GraphBuilder::new(map_back.len());
        for &old in &map_back {
            if self.kinds[old as usize] != NodeKind::Paper {
                continue;
            }
            if self.years[old as usize] > year {
                continue;
            }
            for &u in self.graph.out_neighbors(old) {
                // Undirected edges stored both ways; emit from papers only
                // (every edge is incident to exactly one paper).
                b.add_undirected_edge(remap[old as usize], remap[u as usize]);
            }
        }
        let kinds = map_back.iter().map(|&o| self.kinds[o as usize]).collect();
        let years = map_back.iter().map(|&o| self.years[o as usize]).collect();
        (
            BibNetwork {
                graph: b.build(),
                kinds,
                years,
            },
            map_back,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> BibNetwork {
        BibNetwork::generate(
            DblpParams {
                papers: 500,
                venues: 10,
                ..Default::default()
            },
            11,
        )
    }

    #[test]
    fn tripartite_structure() {
        let net = small();
        assert_eq!(net.count(NodeKind::Paper), 500);
        assert_eq!(net.count(NodeKind::Venue), 10);
        assert!(net.count(NodeKind::Author) > 0);
        // Papers only link to authors and venues; authors/venues only to
        // papers.
        for v in net.graph.nodes() {
            for &u in net.graph.out_neighbors(v) {
                if u == v {
                    continue; // dangling-fix self-loop
                }
                match net.kinds[v as usize] {
                    NodeKind::Paper => assert_ne!(net.kinds[u as usize], NodeKind::Paper),
                    _ => assert_eq!(net.kinds[u as usize], NodeKind::Paper),
                }
            }
        }
    }

    #[test]
    fn every_paper_has_a_venue_and_an_author() {
        let net = small();
        for p in net.nodes_of_kind(NodeKind::Paper) {
            let nbrs = net.graph.out_neighbors(p);
            assert!(nbrs
                .iter()
                .any(|&u| net.kinds[u as usize] == NodeKind::Venue));
            assert!(nbrs
                .iter()
                .any(|&u| net.kinds[u as usize] == NodeKind::Author));
        }
    }

    #[test]
    fn years_are_monotone_in_paper_id() {
        let net = small();
        let years: Vec<u16> = net
            .nodes_of_kind(NodeKind::Paper)
            .map(|p| net.years[p as usize])
            .collect();
        assert!(years.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*years.first().unwrap(), 1994);
        assert_eq!(*years.last().unwrap(), 2010);
    }

    #[test]
    fn snapshot_grows_with_year() {
        let net = small();
        let (s1, _) = net.snapshot(1998);
        let (s2, _) = net.snapshot(2006);
        assert!(s1.graph.num_nodes() < s2.graph.num_nodes());
        assert!(s1.graph.num_edges() < s2.graph.num_edges());
        assert!(s2.graph.num_nodes() < net.graph.num_nodes() + 1);
    }

    #[test]
    fn snapshot_mapping_preserves_kinds() {
        let net = small();
        let (snap, map_back) = net.snapshot(2000);
        for (v, &orig) in map_back.iter().enumerate() {
            assert_eq!(snap.kinds[v], net.kinds[orig as usize]);
        }
        // No papers beyond the snapshot year.
        for p in snap.nodes_of_kind(NodeKind::Paper) {
            assert!(snap.years[p as usize] <= 2000);
        }
    }

    #[test]
    fn deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.kinds, b.kinds);
    }
}
