//! Structural statistics of graphs.
//!
//! The evaluation substitutes generated graphs for the paper's DBLP and
//! LiveJournal datasets (DESIGN.md §4); this module quantifies the
//! properties that substitution argument rests on — degree skew (hubs'
//! "decaying power"), reciprocity (directedness), and the degree-tail
//! exponent — so the claim is checkable rather than asserted
//! (`exp_datasets` prints them side by side with the real datasets'
//! published values).

use crate::csr::Graph;

/// Summary statistics of a graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of directed edges.
    pub edges: usize,
    /// Mean out-degree.
    pub mean_out_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Gini coefficient of the out-degree distribution (0 = uniform,
    /// → 1 = extreme skew).
    pub out_degree_gini: f64,
    /// Fraction of directed edges `u→v` whose reverse `v→u` also exists
    /// (1.0 for undirected graphs).
    pub reciprocity: f64,
    /// Hill estimate of the out-degree power-law tail exponent, over the
    /// top decile of degrees (NaN when degenerate).
    pub out_tail_exponent: f64,
    /// Fraction of nodes with a self-loop (dangling-fix artifacts show up
    /// here).
    pub self_loop_fraction: f64,
}

/// Computes [`GraphStats`].
pub fn graph_stats(graph: &Graph) -> GraphStats {
    let n = graph.num_nodes();
    let m = graph.num_edges();
    let out_degrees: Vec<usize> = graph.nodes().map(|v| graph.out_degree(v)).collect();
    let max_out = out_degrees.iter().copied().max().unwrap_or(0);
    let max_in = graph.nodes().map(|v| graph.in_degree(v)).max().unwrap_or(0);
    let mut reciprocated = 0usize;
    let mut self_loops = 0usize;
    for v in graph.nodes() {
        for &t in graph.out_neighbors(v) {
            if t == v {
                self_loops += 1;
            } else if graph.has_edge(t, v) {
                reciprocated += 1;
            }
        }
    }
    GraphStats {
        nodes: n,
        edges: m,
        mean_out_degree: if n == 0 { 0.0 } else { m as f64 / n as f64 },
        max_out_degree: max_out,
        max_in_degree: max_in,
        out_degree_gini: gini(&out_degrees),
        reciprocity: if m == 0 {
            0.0
        } else {
            (reciprocated + self_loops) as f64 / m as f64
        },
        out_tail_exponent: hill_exponent(&out_degrees),
        self_loop_fraction: if n == 0 {
            0.0
        } else {
            self_loops as f64 / n as f64
        },
    }
}

/// Gini coefficient of a non-negative sample.
pub fn gini(values: &[usize]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    let mut sorted: Vec<usize> = values.to_vec();
    sorted.sort_unstable();
    let total: f64 = sorted.iter().map(|&x| x as f64).sum();
    if total == 0.0 {
        return 0.0;
    }
    // G = (2 Σ_i i·x_(i) / (n Σ x)) − (n+1)/n, with i starting at 1.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
        .sum();
    (2.0 * weighted / (n as f64 * total)) - (n as f64 + 1.0) / n as f64
}

/// Hill estimator of the power-law tail exponent `γ` (P(deg ≥ x) ∝ x^{-γ+1})
/// over the top decile of the sample. Returns NaN for degenerate input
/// (fewer than 20 values or a constant tail).
pub fn hill_exponent(values: &[usize]) -> f64 {
    if values.len() < 20 {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = values
        .iter()
        .filter(|&&x| x > 0)
        .map(|&x| x as f64)
        .collect();
    if sorted.len() < 20 {
        return f64::NAN;
    }
    sorted.sort_unstable_by(f64::total_cmp);
    let k = (sorted.len() / 10).max(10).min(sorted.len() - 1);
    let threshold = sorted[sorted.len() - k - 1];
    if threshold <= 0.0 {
        return f64::NAN;
    }
    let mean_log: f64 = sorted[sorted.len() - k..]
        .iter()
        .map(|&x| (x / threshold).ln())
        .sum::<f64>()
        / k as f64;
    if mean_log <= 0.0 {
        return f64::NAN;
    }
    1.0 + 1.0 / mean_log
}

/// A fixed-width histogram of the out-degree distribution in powers of two:
/// bucket `i` counts nodes with out-degree in `[2^i, 2^{i+1})` (bucket 0
/// additionally holds degree-0 nodes).
pub fn out_degree_histogram(graph: &Graph) -> Vec<usize> {
    let mut buckets: Vec<usize> = Vec::new();
    for v in graph.nodes() {
        let d = graph.out_degree(v);
        let b = if d <= 1 {
            0
        } else {
            (usize::BITS - (d.leading_zeros())) as usize - 1
        };
        if buckets.len() <= b {
            buckets.resize(b + 1, 0);
        }
        buckets[b] += 1;
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{from_edges, from_undirected_edges};
    use crate::gen::{barabasi_albert, SocialNetwork, SocialParams};

    #[test]
    fn stats_on_cycle_are_uniform() {
        let g = from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let s = graph_stats(&g);
        assert_eq!(s.nodes, 6);
        assert_eq!(s.edges, 6);
        assert_eq!(s.max_out_degree, 1);
        assert!((s.mean_out_degree - 1.0).abs() < 1e-12);
        assert!(s.out_degree_gini.abs() < 1e-12, "uniform degrees ⇒ Gini 0");
        assert_eq!(s.reciprocity, 0.0);
        assert_eq!(s.self_loop_fraction, 0.0);
    }

    #[test]
    fn undirected_graph_is_fully_reciprocal() {
        let g = from_undirected_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let s = graph_stats(&g);
        assert_eq!(s.reciprocity, 1.0);
    }

    #[test]
    fn gini_detects_skew() {
        assert!(gini(&[5, 5, 5, 5]) < 1e-12);
        let skewed = gini(&[0, 0, 0, 100]);
        assert!(skewed > 0.7, "{skewed}");
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0]), 0.0);
    }

    #[test]
    fn ba_graph_has_heavier_tail_than_cycle() {
        let g = barabasi_albert(3_000, 3, 1);
        let s = graph_stats(&g);
        assert!(s.out_degree_gini > 0.2, "gini {}", s.out_degree_gini);
        assert!(s.max_out_degree > 30);
        assert!(
            s.out_tail_exponent.is_finite() && s.out_tail_exponent > 1.0,
            "hill {}",
            s.out_tail_exponent
        );
    }

    #[test]
    fn social_generator_matches_its_spec() {
        let net = SocialNetwork::generate(
            SocialParams {
                nodes: 5_000,
                reciprocity: 0.5,
                ..Default::default()
            },
            2,
        );
        let s = graph_stats(&net.graph);
        // Declared reciprocity 0.5 ⇒ measured edge reciprocity well above
        // a purely random directed graph, below an undirected one.
        assert!(
            s.reciprocity > 0.4 && s.reciprocity < 0.95,
            "{}",
            s.reciprocity
        );
        // Heavy out-degree tail (the hub "decaying power" requirement).
        assert!(s.max_out_degree > 100, "{}", s.max_out_degree);
    }

    #[test]
    fn histogram_buckets_by_powers_of_two() {
        let g = from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2)]);
        // degrees: 0 -> 3 (bucket 1), 1 -> 1 (bucket 0), 2,3 -> self-loop 1.
        let h = out_degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 4);
        assert_eq!(h[1], 1); // the degree-3 node
    }

    #[test]
    fn hill_is_nan_on_degenerate_input() {
        assert!(hill_exponent(&[1, 2, 3]).is_nan());
        assert!(!hill_exponent(&vec![7usize; 100]).is_finite());
    }
}
