//! The paper's running-example graph (Figure 1).
//!
//! Eight nodes `a..h` and the edge set reconstructed from the tours
//! enumerated in Figures 1(b) and 2:
//!
//! ```text
//! a -> {b, c, d, f, h}    b -> {c, d, e}    d -> {c, e}
//! f -> {d, g}             g -> {d}          h -> {c}
//! ```
//!
//! With `α = 0.15` this reproduces the reachabilities of Fig. 1(b):
//! `R(a→c) = 0.0255`, `R(a→h→c) = 0.0217`, `R(a→d→c) = 0.0108`,
//! `R(a→b→c) = 0.0072`, `R(a→f→d→c) = 0.0046`.
//! (The figure's printed values for `a→b→d→c` (0.0046) and `a→f→g→d→c`
//! (0.0017) are inconsistent with the out-degrees implied by its own
//! t4/t5 rows; Eq. 2 gives 0.0031 and 0.0039 — see DESIGN.md §3.)
//!
//! The graph is acyclic and `c`, `e` are sinks, so tour enumeration is
//! finite — ideal for exact, tour-level validation of the whole pipeline.

use crate::builder::{from_edges, GraphBuilder};
use crate::csr::{Graph, NodeId};
use crate::DanglingPolicy;

/// Node ids for the paper's example.
pub const A: NodeId = 0;
/// Node `b`.
pub const B: NodeId = 1;
/// Node `c`.
pub const C: NodeId = 2;
/// Node `d`.
pub const D: NodeId = 3;
/// Node `e`.
pub const E: NodeId = 4;
/// Node `f`.
pub const F: NodeId = 5;
/// Node `g`.
pub const G: NodeId = 6;
/// Node `h`.
pub const H: NodeId = 7;

/// Names of the 8 nodes, indexed by node id.
pub const NAMES: [&str; 8] = ["a", "b", "c", "d", "e", "f", "g", "h"];

/// The hub set `{b, d, f}` used in the paper's Figure 3.
pub const PAPER_HUBS: [NodeId; 3] = [B, D, F];

const EDGES: [(NodeId, NodeId); 14] = [
    (A, B),
    (A, C),
    (A, D),
    (A, F),
    (A, H),
    (B, C),
    (B, D),
    (B, E),
    (D, C),
    (D, E),
    (F, D),
    (F, G),
    (G, D),
    (H, C),
];

/// The Figure 1 graph exactly as drawn: `c` and `e` are sinks (dangling).
///
/// Use this for tour-level reachability checks against Fig. 1(b).
pub fn graph_raw() -> Graph {
    let mut b = GraphBuilder::new(8).dangling(DanglingPolicy::Keep);
    for &(u, v) in EDGES.iter() {
        b.add_edge(u, v);
    }
    b.build()
}

/// The Figure 1 graph with self-loops on the sinks `c` and `e`, so that PPVs
/// are proper distributions (`Σ r = 1`) and Theorem 2 applies exactly.
pub fn graph() -> Graph {
    let mut b = GraphBuilder::new(8);
    for &(u, v) in EDGES.iter() {
        b.add_edge(u, v);
    }
    b.build()
}

/// Resolves a node name (`"a"`..`"h"`) to its id.
pub fn node_by_name(name: &str) -> Option<NodeId> {
    NAMES.iter().position(|&n| n == name).map(|i| i as NodeId)
}

/// Convenience: the edge list of the toy graph.
pub fn edges() -> Vec<(NodeId, NodeId)> {
    EDGES.to_vec()
}

/// A tiny 4-node line graph (`0 -> 1 -> 2 -> 3`), handy in unit tests.
pub fn line(n: usize) -> Graph {
    let edges: Vec<_> = (0..n.saturating_sub(1))
        .map(|i| (i as NodeId, i as NodeId + 1))
        .collect();
    from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_degrees_match_figure() {
        let g = graph_raw();
        assert_eq!(g.out_degree(A), 5);
        assert_eq!(g.out_degree(B), 3);
        assert_eq!(g.out_degree(D), 2);
        assert_eq!(g.out_degree(F), 2);
        assert_eq!(g.out_degree(G), 1);
        assert_eq!(g.out_degree(H), 1);
        assert_eq!(g.out_degree(C), 0);
        assert_eq!(g.out_degree(E), 0);
    }

    #[test]
    fn tour_reachabilities_match_figure_1b() {
        let g = graph_raw();
        let alpha = 0.15;
        let r = |tour: &[NodeId]| -> f64 {
            let l = (tour.len() - 1) as i32;
            let mut p = (1.0f64 - alpha).powi(l) * alpha;
            for w in tour.windows(2) {
                p *= 1.0 / g.out_degree(w[0]) as f64;
            }
            p
        };
        assert!((r(&[A, C]) - 0.0255).abs() < 1e-4);
        assert!((r(&[A, H, C]) - 0.0217).abs() < 1e-4);
        assert!((r(&[A, D, C]) - 0.0108).abs() < 1e-4);
        assert!((r(&[A, B, C]) - 0.0072).abs() < 1e-4);
        assert!((r(&[A, F, D, C]) - 0.0046).abs() < 1e-4);
        // The figure prints 0.0046 for t6 and 0.0017 for t7, but those are
        // inconsistent with the out-degrees its own t4/t5 values imply
        // (Out(b)=3, Out(f)=Out(d)=2, Out(g)=1); Eq. 2 gives:
        assert!((r(&[A, B, D, C]) - 0.00307).abs() < 1e-4);
        assert!((r(&[A, F, G, D, C]) - 0.00392).abs() < 1e-4);
    }

    #[test]
    fn self_loop_variant_has_no_dangling() {
        assert_eq!(graph().num_dangling(), 0);
        assert_eq!(graph_raw().num_dangling(), 2);
    }

    #[test]
    fn names_resolve() {
        assert_eq!(node_by_name("a"), Some(A));
        assert_eq!(node_by_name("h"), Some(H));
        assert_eq!(node_by_name("z"), None);
    }

    #[test]
    fn line_graph() {
        let g = line(4);
        assert_eq!(g.out_neighbors(0), &[1]);
        assert_eq!(g.out_neighbors(3), &[3]); // self-loop policy
    }
}
