//! Compressed sparse row (CSR) graph representation.
//!
//! The graph is immutable once built (see [`crate::builder::GraphBuilder`]).
//! Both the forward (out-edge) and reverse (in-edge) adjacency are stored so
//! that push-style algorithms (out-edges) and pull-style power iteration
//! (in-edges) are both cache-friendly.

/// Node identifier. Graphs with more than `u32::MAX` nodes are out of scope.
pub type NodeId = u32;

/// An immutable directed graph in CSR form.
///
/// Parallel edges are permitted (the builder can deduplicate them); an
/// undirected graph is represented by storing each edge in both directions.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Graph {
    out_offsets: Vec<usize>,
    out_targets: Vec<NodeId>,
    in_offsets: Vec<usize>,
    in_targets: Vec<NodeId>,
}

impl Graph {
    /// Builds a graph directly from prepared CSR arrays. Intended for the
    /// builder; prefer [`crate::builder::GraphBuilder`] in user code.
    ///
    /// # Panics
    /// Panics if the offset arrays are malformed or any target is out of
    /// range.
    pub(crate) fn from_csr(
        out_offsets: Vec<usize>,
        out_targets: Vec<NodeId>,
        in_offsets: Vec<usize>,
        in_targets: Vec<NodeId>,
    ) -> Self {
        assert!(!out_offsets.is_empty() && !in_offsets.is_empty());
        assert_eq!(out_offsets.len(), in_offsets.len());
        assert_eq!(*out_offsets.last().unwrap(), out_targets.len());
        assert_eq!(*in_offsets.last().unwrap(), in_targets.len());
        let n = out_offsets.len() - 1;
        debug_assert!(out_targets.iter().all(|&t| (t as usize) < n));
        debug_assert!(in_targets.iter().all(|&t| (t as usize) < n));
        Graph {
            out_offsets,
            out_targets,
            in_offsets,
            in_targets,
        }
    }

    /// An empty graph with `n` isolated nodes.
    pub fn empty(n: usize) -> Self {
        Graph {
            out_offsets: vec![0; n + 1],
            out_targets: Vec::new(),
            in_offsets: vec![0; n + 1],
            in_targets: Vec::new(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of directed edges (an undirected edge counts twice).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Out-neighbors of `v`, in sorted order.
    #[inline]
    pub fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.out_targets[self.out_offsets[v]..self.out_offsets[v + 1]]
    }

    /// In-neighbors of `v`, in sorted order.
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.in_targets[self.in_offsets[v]..self.in_offsets[v + 1]]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.out_offsets[v + 1] - self.out_offsets[v]
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.in_offsets[v + 1] - self.in_offsets[v]
    }

    /// Whether `v` has no out-edges. Dangling nodes break the probability-
    /// conservation assumption of the accuracy-aware error (paper Eq. 6);
    /// see [`crate::builder::DanglingPolicy`].
    #[inline]
    pub fn is_dangling(&self, v: NodeId) -> bool {
        self.out_degree(v) == 0
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes() as NodeId
    }

    /// Iterator over all directed edges as `(source, target)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes()
            .flat_map(move |u| self.out_neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Number of dangling (out-degree 0) nodes.
    pub fn num_dangling(&self) -> usize {
        self.nodes().filter(|&v| self.is_dangling(v)).count()
    }

    /// Whether the directed edge `(u, v)` exists (binary search).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// Rough in-memory footprint in bytes (CSR arrays only).
    pub fn memory_bytes(&self) -> usize {
        self.out_offsets.len() * std::mem::size_of::<usize>() * 2
            + self.out_targets.len() * std::mem::size_of::<NodeId>() * 2
    }

    /// The transition probability of a single random-walk step `u -> v`,
    /// i.e. `1/|Out(u)|` if the edge exists (with multiplicity for parallel
    /// edges), else 0.
    pub fn step_probability(&self, u: NodeId, v: NodeId) -> f64 {
        let d = self.out_degree(u);
        if d == 0 {
            return 0.0;
        }
        let mult = self.out_neighbors(u).iter().filter(|&&t| t == v).count();
        mult as f64 / d as f64
    }

    /// A borrowed view of the forward (out-edge) CSR arrays, for kernels
    /// that want raw slice access without going through `&Graph` method
    /// dispatch (see [`CsrView`]).
    #[inline]
    pub fn out_csr(&self) -> CsrView<'_> {
        CsrView {
            offsets: &self.out_offsets,
            targets: &self.out_targets,
        }
    }
}

/// A borrowed view of one CSR adjacency (offsets + targets slices).
///
/// This is the raw form hot kernels iterate: `Copy`, two slices, no
/// indirection. [`Graph::out_csr`] produces the forward view; neighbor
/// slices borrow the graph (`'a`), not the view, so they can outlive it.
#[derive(Clone, Copy, Debug)]
pub struct CsrView<'a> {
    offsets: &'a [usize],
    targets: &'a [NodeId],
}

impl<'a> CsrView<'a> {
    /// Number of nodes covered by the view.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Neighbors of `v`, in sorted order.
    #[inline]
    pub fn out_neighbors(&self, v: NodeId) -> &'a [NodeId] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn diamond() -> Graph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, 3 -> 0
        let mut b = GraphBuilder::new(4);
        for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)] {
            b.add_edge(u, v);
        }
        b.build()
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(3);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.out_neighbors(0), &[] as &[NodeId]);
        assert_eq!(g.num_dangling(), 3);
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.in_neighbors(3), &[1, 2]);
        assert_eq!(g.out_degree(3), 1);
        assert_eq!(g.in_degree(0), 1);
        assert_eq!(g.num_dangling(), 0);
    }

    #[test]
    fn edges_iterator_round_trip() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)]);
    }

    #[test]
    fn has_edge_and_step_probability() {
        let g = diamond();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.step_probability(0, 1), 0.5);
        assert_eq!(g.step_probability(3, 0), 1.0);
        assert_eq!(g.step_probability(1, 0), 0.0);
    }

    #[test]
    fn csr_view_matches_graph_accessors() {
        let g = diamond();
        let view = g.out_csr();
        assert_eq!(view.num_nodes(), g.num_nodes());
        for v in g.nodes() {
            assert_eq!(view.out_degree(v), g.out_degree(v));
            assert_eq!(view.out_neighbors(v), g.out_neighbors(v));
        }
    }

    #[test]
    fn parallel_edges_affect_step_probability() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        b.add_edge(0, 0);
        let g = b.build();
        assert_eq!(g.out_degree(0), 3);
        assert!((g.step_probability(0, 1) - 2.0 / 3.0).abs() < 1e-12);
    }
}
