//! Shared numeric kernels for PPR computations.
//!
//! Every algorithm in the workspace accumulates scores over a small, shifting
//! subset of nodes. [`ScoreScratch`] is the dense-array-plus-touched-list
//! workspace that makes those accumulations allocation-free and hash-free on
//! the hot path; [`SparseVector`] is the compact, sorted materialization used
//! for results and the on-disk index.

use crate::csr::NodeId;

/// A sparse score vector: entries sorted by node id, strictly increasing.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SparseVector {
    entries: Vec<(NodeId, f64)>,
}

impl SparseVector {
    /// An empty vector.
    pub fn new() -> Self {
        SparseVector {
            entries: Vec::new(),
        }
    }

    /// Builds from entries that are already sorted by node id (debug-checked).
    pub fn from_sorted(entries: Vec<(NodeId, f64)>) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        SparseVector { entries }
    }

    /// Builds from unsorted entries, summing duplicates.
    pub fn from_unsorted(mut entries: Vec<(NodeId, f64)>) -> Self {
        entries.sort_unstable_by_key(|&(id, _)| id);
        let mut out: Vec<(NodeId, f64)> = Vec::with_capacity(entries.len());
        for (id, s) in entries {
            match out.last_mut() {
                Some(last) if last.0 == id => last.1 += s,
                _ => out.push((id, s)),
            }
        }
        SparseVector { entries: out }
    }

    /// The entries, sorted by node id.
    #[inline]
    pub fn entries(&self) -> &[(NodeId, f64)] {
        &self.entries
    }

    /// Number of stored entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vector has no stored entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Score of `v` (0 if absent). Binary search.
    pub fn get(&self, v: NodeId) -> f64 {
        match self.entries.binary_search_by_key(&v, |&(id, _)| id) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0.0,
        }
    }

    /// Sum of all scores (the L1 norm for non-negative vectors).
    pub fn l1_norm(&self) -> f64 {
        self.entries.iter().map(|&(_, s)| s).sum()
    }

    /// Drops entries with score strictly below `threshold`.
    pub fn clip(&mut self, threshold: f64) {
        self.entries.retain(|&(_, s)| s >= threshold);
    }

    /// The `k` highest-scoring entries, ties broken by node id (ascending)
    /// for determinism, returned in descending score order.
    ///
    /// O(n + k log k): a selection partitions the top `k` to the front, and
    /// only that prefix is sorted — the full list is never ordered.
    pub fn top_k(&self, k: usize) -> Vec<(NodeId, f64)> {
        top_k_entries(self.entries.clone(), k)
    }

    /// Materializes into a dense vector of length `n`.
    pub fn to_dense(&self, n: usize) -> Vec<f64> {
        let mut d = vec![0.0; n];
        for &(id, s) in &self.entries {
            d[id as usize] = s;
        }
        d
    }

    /// `self += coeff * other`, entry-wise (merge of two sorted lists).
    pub fn axpy(&mut self, coeff: f64, other: &SparseVector) {
        if coeff == 0.0 || other.is_empty() {
            return;
        }
        let mut merged = Vec::with_capacity(self.len() + other.len());
        let (a, b) = (&self.entries, &other.entries);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    merged.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push((b[j].0, coeff * b[j].1));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push((a[i].0, a[i].1 + coeff * b[j].1));
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&a[i..]);
        merged.extend(b[j..].iter().map(|&(id, s)| (id, coeff * s)));
        self.entries = merged;
    }

    /// L1 distance to a dense vector (entries absent here count as 0).
    pub fn l1_distance_dense(&self, dense: &[f64]) -> f64 {
        let mut err = 0.0;
        let mut covered = 0.0;
        for &(id, s) in &self.entries {
            let e = dense[id as usize];
            err += (e - s).abs();
            covered += e;
        }
        // Mass of dense entries we do not store at all.
        err + (dense.iter().sum::<f64>() - covered)
    }

    /// Consumes the vector, returning its entries.
    pub fn into_entries(self) -> Vec<(NodeId, f64)> {
        self.entries
    }
}

/// Selects the `k` highest-scoring entries of `v` (ties broken by ascending
/// node id), returned in descending score order. Shared by
/// [`SparseVector::top_k`] and [`ScoreScratch::top_k`]. Uses
/// [`f64::total_cmp`], so a NaN score (which should not occur, but can leak
/// in from corrupt input) ranks deterministically instead of panicking.
pub fn top_k_entries(mut v: Vec<(NodeId, f64)>, k: usize) -> Vec<(NodeId, f64)> {
    if k == 0 {
        return Vec::new();
    }
    let by_rank = |a: &(NodeId, f64), b: &(NodeId, f64)| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0));
    if k < v.len() {
        // Partition: everything at or before index k-1 ranks at least as
        // high as everything after it. The prefix is unsorted until below.
        v.select_nth_unstable_by(k - 1, by_rank);
        v.truncate(k);
    }
    v.sort_unstable_by(by_rank);
    v
}

impl FromIterator<(NodeId, f64)> for SparseVector {
    fn from_iter<T: IntoIterator<Item = (NodeId, f64)>>(iter: T) -> Self {
        SparseVector::from_unsorted(iter.into_iter().collect())
    }
}

/// Reusable dense accumulator with a touched list.
///
/// `add` is O(1); draining back to a [`SparseVector`] and resetting is
/// O(touched). The backing array is sized to the graph once and reused across
/// queries (the "workhorse collection" pattern).
#[derive(Clone, Debug)]
pub struct ScoreScratch {
    values: Vec<f64>,
    touched: Vec<NodeId>,
}

impl ScoreScratch {
    /// A scratch for graphs of `n` nodes.
    pub fn new(n: usize) -> Self {
        ScoreScratch {
            values: vec![0.0; n],
            touched: Vec::new(),
        }
    }

    /// Capacity (number of node slots).
    pub fn capacity(&self) -> usize {
        self.values.len()
    }

    /// Grows the backing array if the graph is larger than the scratch.
    pub fn ensure_capacity(&mut self, n: usize) {
        if self.values.len() < n {
            self.values.resize(n, 0.0);
        }
    }

    /// Adds `s` to node `v`'s accumulator.
    #[inline]
    pub fn add(&mut self, v: NodeId, s: f64) {
        let slot = &mut self.values[v as usize];
        if *slot == 0.0 {
            self.touched.push(v);
        }
        *slot += s;
    }

    /// Current value for `v`.
    #[inline]
    pub fn get(&self, v: NodeId) -> f64 {
        self.values[v as usize]
    }

    /// Nodes with a (possibly zero after cancellation) touched slot.
    pub fn touched(&self) -> &[NodeId] {
        &self.touched
    }

    /// Sum over touched slots.
    pub fn sum(&self) -> f64 {
        self.touched.iter().map(|&v| self.values[v as usize]).sum()
    }

    /// Materializes touched entries (> 0) into a sorted [`SparseVector`] and
    /// resets the scratch for reuse.
    pub fn drain_sparse(&mut self) -> SparseVector {
        let mut entries = Vec::with_capacity(self.touched.len());
        for &v in &self.touched {
            let s = self.values[v as usize];
            self.values[v as usize] = 0.0;
            if s != 0.0 {
                entries.push((v, s));
            }
        }
        self.touched.clear();
        entries.sort_unstable_by_key(|&(id, _)| id);
        SparseVector::from_sorted(entries)
    }

    /// Drains touched entries (≠ 0) into `out` in touched (first-insertion)
    /// order and resets the scratch. `out` is cleared first; with a reused
    /// `out` whose capacity has warmed up, the call performs no heap
    /// allocation — this is the hot-path alternative to
    /// [`ScoreScratch::drain_sparse`].
    pub fn drain_into(&mut self, out: &mut Vec<(NodeId, f64)>) {
        out.clear();
        for &v in &self.touched {
            let s = self.values[v as usize];
            self.values[v as usize] = 0.0;
            if s != 0.0 {
                out.push((v, s));
            }
        }
        self.touched.clear();
    }

    /// Materializes touched entries (≠ 0) into a sorted [`SparseVector`]
    /// *without* resetting the scratch.
    pub fn to_sparse(&self) -> SparseVector {
        let mut entries: Vec<(NodeId, f64)> = self
            .touched
            .iter()
            .filter_map(|&v| {
                let s = self.values[v as usize];
                (s != 0.0).then_some((v, s))
            })
            .collect();
        entries.sort_unstable_by_key(|&(id, _)| id);
        SparseVector::from_sorted(entries)
    }

    /// The `k` highest-scoring touched entries (ties broken by ascending
    /// node id), descending, without resetting the scratch.
    pub fn top_k(&self, k: usize) -> Vec<(NodeId, f64)> {
        let candidates: Vec<(NodeId, f64)> = self
            .touched
            .iter()
            .filter_map(|&v| {
                let s = self.values[v as usize];
                (s != 0.0).then_some((v, s))
            })
            .collect();
        top_k_entries(candidates, k)
    }

    /// Resets without materializing.
    pub fn clear(&mut self) {
        for &v in &self.touched {
            self.values[v as usize] = 0.0;
        }
        self.touched.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_from_unsorted_merges_duplicates() {
        let v = SparseVector::from_unsorted(vec![(3, 1.0), (1, 2.0), (3, 0.5)]);
        assert_eq!(v.entries(), &[(1, 2.0), (3, 1.5)]);
        assert_eq!(v.get(3), 1.5);
        assert_eq!(v.get(2), 0.0);
    }

    #[test]
    fn axpy_merges_sorted_lists() {
        let mut a = SparseVector::from_sorted(vec![(1, 1.0), (4, 2.0)]);
        let b = SparseVector::from_sorted(vec![(0, 1.0), (4, 1.0), (7, 3.0)]);
        a.axpy(2.0, &b);
        assert_eq!(a.entries(), &[(0, 2.0), (1, 1.0), (4, 4.0), (7, 6.0)]);
    }

    #[test]
    fn axpy_zero_coeff_is_noop() {
        let mut a = SparseVector::from_sorted(vec![(1, 1.0)]);
        let b = SparseVector::from_sorted(vec![(2, 5.0)]);
        a.axpy(0.0, &b);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn top_k_breaks_ties_by_id() {
        let v = SparseVector::from_sorted(vec![(1, 0.5), (2, 0.5), (3, 0.9)]);
        assert_eq!(v.top_k(2), vec![(3, 0.9), (1, 0.5)]);
        assert_eq!(v.top_k(10).len(), 3);
    }

    #[test]
    fn clip_drops_small_entries() {
        let mut v = SparseVector::from_sorted(vec![(0, 1e-5), (1, 1e-3)]);
        v.clip(1e-4);
        assert_eq!(v.entries(), &[(1, 1e-3)]);
    }

    #[test]
    fn l1_distance_counts_missing_mass() {
        let v = SparseVector::from_sorted(vec![(0, 0.4)]);
        let dense = vec![0.5, 0.5];
        // |0.5-0.4| + 0.5 (missing node 1)
        assert!((v.l1_distance_dense(&dense) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn scratch_drain_resets() {
        let mut s = ScoreScratch::new(5);
        s.add(3, 1.0);
        s.add(0, 0.5);
        s.add(3, 1.0);
        assert_eq!(s.get(3), 2.0);
        let v = s.drain_sparse();
        assert_eq!(v.entries(), &[(0, 0.5), (3, 2.0)]);
        assert_eq!(s.touched().len(), 0);
        assert_eq!(s.get(3), 0.0);
        // Reusable after drain.
        s.add(1, 1.0);
        assert_eq!(s.drain_sparse().entries(), &[(1, 1.0)]);
    }

    #[test]
    fn scratch_drops_cancelled_entries() {
        let mut s = ScoreScratch::new(3);
        s.add(1, 1.0);
        s.add(1, -1.0);
        let v = s.drain_sparse();
        assert!(v.is_empty());
    }

    #[test]
    fn top_k_selection_matches_full_sort() {
        // The select-then-sort fast path must agree with a naive full sort
        // for every k, including ties and k ∈ {0, len, len+1}.
        let entries = vec![(5, 0.25), (1, 0.5), (9, 0.25), (2, 0.9), (7, 0.1), (3, 0.5)];
        let v = SparseVector::from_unsorted(entries.clone());
        for k in 0..=entries.len() + 1 {
            let mut naive = entries.clone();
            naive.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            naive.truncate(k);
            assert_eq!(v.top_k(k), naive, "k = {k}");
        }
    }

    #[test]
    fn top_k_survives_nan_scores() {
        // A NaN score must not panic the comparator; under total_cmp,
        // (positive) NaN ranks above every finite score, so it sorts first
        // — deterministically — instead of poisoning the whole ordering.
        let entries = vec![(5, 0.25), (1, f64::NAN), (9, 0.5), (2, 0.9)];
        let top = top_k_entries(entries.clone(), 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, 1, "NaN entry ranks first under total_cmp");
        assert_eq!(top[1], (2, 0.9));
        // All-NaN input: ties broken by ascending id, no panic.
        let all_nan = vec![(7, f64::NAN), (3, f64::NAN)];
        let top = top_k_entries(all_nan, 2);
        assert_eq!(top[0].0, 3);
        assert_eq!(top[1].0, 7);
    }

    #[test]
    fn scratch_drain_into_reuses_buffer() {
        let mut s = ScoreScratch::new(6);
        let mut buf = Vec::new();
        s.add(4, 1.0);
        s.add(1, 0.5);
        s.add(2, 1.0);
        s.add(2, -1.0); // cancels: must be skipped
        s.drain_into(&mut buf);
        assert_eq!(
            buf,
            vec![(4, 1.0), (1, 0.5)],
            "touched order, zeros dropped"
        );
        assert_eq!(s.touched().len(), 0);
        assert_eq!(s.get(4), 0.0);
        // Reuse: previous contents are replaced, not appended.
        s.add(0, 2.0);
        s.drain_into(&mut buf);
        assert_eq!(buf, vec![(0, 2.0)]);
    }

    #[test]
    fn scratch_to_sparse_and_top_k_do_not_reset() {
        let mut s = ScoreScratch::new(6);
        s.add(3, 0.75);
        s.add(0, 0.25);
        assert_eq!(s.to_sparse().entries(), &[(0, 0.25), (3, 0.75)]);
        assert_eq!(s.top_k(1), vec![(3, 0.75)]);
        // Still intact afterwards.
        assert_eq!(s.get(3), 0.75);
        assert_eq!(s.touched().len(), 2);
    }

    #[test]
    fn to_dense_round_trip() {
        let v = SparseVector::from_sorted(vec![(1, 0.25), (3, 0.75)]);
        assert_eq!(v.to_dense(4), vec![0.0, 0.25, 0.0, 0.75]);
        assert!((v.l1_norm() - 1.0).abs() < 1e-12);
    }
}
