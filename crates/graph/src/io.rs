//! Plain-text edge-list reading and writing.
//!
//! The format is the SNAP-style list used by the paper's public datasets:
//! one `u v` pair per line, `#`-prefixed comment lines ignored.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::csr::{Graph, NodeId};
use crate::DanglingPolicy;

/// Errors from edge-list parsing.
#[derive(Debug)]
pub enum EdgeListError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line that is neither a comment nor a `u v` pair.
    Parse { line_number: usize, line: String },
}

impl std::fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeListError::Io(e) => write!(f, "i/o error: {e}"),
            EdgeListError::Parse { line_number, line } => {
                write!(f, "cannot parse line {line_number}: {line:?}")
            }
        }
    }
}

impl std::error::Error for EdgeListError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EdgeListError::Io(e) => Some(e),
            EdgeListError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for EdgeListError {
    fn from(e: io::Error) -> Self {
        EdgeListError::Io(e)
    }
}

/// Parses an edge list from a reader. Node ids need not be contiguous; the
/// graph is sized by the maximum id seen.
pub fn read_edge_list<R: BufRead>(
    reader: R,
    undirected: bool,
    dangling: DanglingPolicy,
) -> Result<Graph, EdgeListError> {
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut max_id: NodeId = 0;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |s: Option<&str>| -> Option<NodeId> { s.and_then(|x| x.parse().ok()) };
        match (parse(it.next()), parse(it.next())) {
            (Some(u), Some(v)) => {
                max_id = max_id.max(u).max(v);
                edges.push((u, v));
            }
            _ => {
                return Err(EdgeListError::Parse {
                    line_number: i + 1,
                    line: t.to_string(),
                })
            }
        }
    }
    let n = if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    };
    let mut b = GraphBuilder::new(n)
        .with_edge_capacity(if undirected {
            edges.len() * 2
        } else {
            edges.len()
        })
        .dangling(dangling);
    for (u, v) in edges {
        if undirected {
            b.add_undirected_edge(u, v);
        } else {
            b.add_edge(u, v);
        }
    }
    Ok(b.build())
}

/// Reads an edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(
    path: P,
    undirected: bool,
    dangling: DanglingPolicy,
) -> Result<Graph, EdgeListError> {
    let f = File::open(path)?;
    read_edge_list(BufReader::new(f), undirected, dangling)
}

/// Writes the graph's directed edges as `u v` lines.
pub fn write_edge_list<W: Write>(graph: &Graph, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(
        w,
        "# nodes {} edges {}",
        graph.num_nodes(),
        graph.num_edges()
    )?;
    for (u, v) in graph.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Writes the graph to a file path.
pub fn write_edge_list_file<P: AsRef<Path>>(graph: &Graph, path: P) -> io::Result<()> {
    write_edge_list(graph, File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "# header\n\n0 1\n1 2\n2 0\n";
        let g = read_edge_list(text.as_bytes(), false, DanglingPolicy::SelfLoop).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn undirected_doubles_edges() {
        let g = read_edge_list("0 1\n".as_bytes(), true, DanglingPolicy::Keep).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_neighbors(1), &[0]);
    }

    #[test]
    fn rejects_garbage() {
        let err = read_edge_list("0 x\n".as_bytes(), false, DanglingPolicy::Keep).unwrap_err();
        assert!(matches!(err, EdgeListError::Parse { line_number: 1, .. }));
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = read_edge_list("# nothing\n".as_bytes(), false, DanglingPolicy::Keep).unwrap();
        assert_eq!(g.num_nodes(), 0);
    }

    #[test]
    fn write_read_round_trip() {
        let g = crate::builder::from_edges(4, &[(0, 1), (1, 2), (3, 0)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice(), false, DanglingPolicy::SelfLoop).unwrap();
        assert_eq!(g, g2);
    }
}
