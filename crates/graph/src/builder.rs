//! Incremental construction of CSR graphs.

use crate::csr::{Graph, NodeId};

/// What to do with dangling (out-degree 0) nodes at build time.
///
/// The inverse P-distance identity `Σ_p r_q(p) = 1` (paper Eq. 6), on which
/// FastPPV's accuracy-awareness rests, requires every node to have at least
/// one out-edge. [`DanglingPolicy::SelfLoop`] is the standard graph-cleaning
/// step that restores it; [`DanglingPolicy::Keep`] leaves the graph untouched
/// (the reported L1 error then upper-bounds the true error).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DanglingPolicy {
    /// Add a self-loop to every node with out-degree 0 (default).
    #[default]
    SelfLoop,
    /// Leave dangling nodes as-is; random-walk mass reaching them is lost.
    Keep,
}

/// Builder accumulating edges before the CSR arrays are laid out.
///
/// ```
/// use fastppv_graph::GraphBuilder;
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_undirected_edge(1, 2);
/// let g = b.build();
/// assert_eq!(g.out_neighbors(1), &[2]);
/// assert_eq!(g.out_neighbors(2), &[1]);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId)>,
    dedup: bool,
    dangling: DanglingPolicy,
}

impl GraphBuilder {
    /// A builder for a graph with `n` nodes (ids `0..n`).
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            num_nodes: n,
            edges: Vec::new(),
            dedup: false,
            dangling: DanglingPolicy::SelfLoop,
        }
    }

    /// Pre-allocates space for `m` edges.
    pub fn with_edge_capacity(mut self, m: usize) -> Self {
        self.edges.reserve(m);
        self
    }

    /// Deduplicate parallel edges at build time (default: keep multiplicity).
    pub fn dedup(mut self, yes: bool) -> Self {
        self.dedup = yes;
        self
    }

    /// Sets the [`DanglingPolicy`] (default: [`DanglingPolicy::SelfLoop`]).
    pub fn dangling(mut self, policy: DanglingPolicy) -> Self {
        self.dangling = policy;
        self
    }

    /// Number of nodes this builder was created with.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds the directed edge `u -> v`.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range.
    #[inline]
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(
            (u as usize) < self.num_nodes && (v as usize) < self.num_nodes,
            "edge ({u}, {v}) out of range for {} nodes",
            self.num_nodes
        );
        self.edges.push((u, v));
    }

    /// Adds both `u -> v` and `v -> u` (an undirected edge).
    #[inline]
    pub fn add_undirected_edge(&mut self, u: NodeId, v: NodeId) {
        self.add_edge(u, v);
        if u != v {
            self.add_edge(v, u);
        }
    }

    /// Lays out the CSR arrays and returns the immutable [`Graph`].
    pub fn build(mut self) -> Graph {
        let n = self.num_nodes;
        if self.dedup {
            self.edges.sort_unstable();
            self.edges.dedup();
        }
        if self.dangling == DanglingPolicy::SelfLoop {
            let mut has_out = vec![false; n];
            for &(u, _) in &self.edges {
                has_out[u as usize] = true;
            }
            for (v, _) in has_out.iter().enumerate().filter(|(_, &h)| !h) {
                self.edges.push((v as NodeId, v as NodeId));
            }
        }
        let (out_offsets, out_targets) = csr_arrays(n, self.edges.iter().copied());
        let (in_offsets, in_targets) = csr_arrays(n, self.edges.iter().map(|&(u, v)| (v, u)));
        Graph::from_csr(out_offsets, out_targets, in_offsets, in_targets)
    }
}

/// Counting sort of edges into offset/target arrays; targets sorted per row.
fn csr_arrays(
    n: usize,
    edges: impl Iterator<Item = (NodeId, NodeId)> + Clone,
) -> (Vec<usize>, Vec<NodeId>) {
    let mut offsets = vec![0usize; n + 1];
    for (u, _) in edges.clone() {
        offsets[u as usize + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let m = offsets[n];
    let mut targets = vec![0 as NodeId; m];
    let mut cursor = offsets.clone();
    for (u, v) in edges {
        targets[cursor[u as usize]] = v;
        cursor[u as usize] += 1;
    }
    for i in 0..n {
        targets[offsets[i]..offsets[i + 1]].sort_unstable();
    }
    (offsets, targets)
}

/// Builds a graph from an explicit edge list (directed).
pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Graph {
    let mut b = GraphBuilder::new(n).with_edge_capacity(edges.len());
    for &(u, v) in edges {
        b.add_edge(u, v);
    }
    b.build()
}

/// Builds a graph from an explicit edge list, storing each edge in both
/// directions (undirected).
pub fn from_undirected_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Graph {
    let mut b = GraphBuilder::new(n).with_edge_capacity(edges.len() * 2);
    for &(u, v) in edges {
        b.add_undirected_edge(u, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_loop_policy_fixes_dangling() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        let g = b.build();
        // 1 and 2 were dangling; they now carry self-loops.
        assert_eq!(g.out_neighbors(1), &[1]);
        assert_eq!(g.out_neighbors(2), &[2]);
        assert_eq!(g.num_dangling(), 0);
    }

    #[test]
    fn keep_policy_preserves_dangling() {
        let mut b = GraphBuilder::new(3).dangling(DanglingPolicy::Keep);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.num_dangling(), 2);
    }

    #[test]
    fn dedup_removes_parallel_edges() {
        let mut b = GraphBuilder::new(2).dedup(true);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_degree(0), 1);
    }

    #[test]
    fn undirected_edge_adds_both_directions_once_for_self_loop() {
        let mut b = GraphBuilder::new(2);
        b.add_undirected_edge(0, 0);
        b.add_undirected_edge(0, 1);
        let g = b.build();
        assert_eq!(g.out_neighbors(0), &[0, 1]);
        assert_eq!(g.out_neighbors(1), &[0]);
    }

    #[test]
    fn adjacency_is_sorted() {
        let mut b = GraphBuilder::new(5);
        for v in [4, 1, 3, 2] {
            b.add_edge(0, v);
        }
        let g = b.build();
        assert_eq!(g.out_neighbors(0), &[1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
    }

    #[test]
    fn from_edges_helpers() {
        let g = from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(g.out_neighbors(0), &[1]);
        let u = from_undirected_edges(3, &[(0, 1)]);
        assert_eq!(u.out_neighbors(1), &[0]);
        assert_eq!(u.out_neighbors(0), &[1]);
    }
}
