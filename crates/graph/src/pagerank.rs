//! Global PageRank via power iteration.
//!
//! FastPPV's hub selection scores nodes by *expected utility*
//! `EU(v) = PageRank(v) · |Out(v)|` (paper Eq. 7), so the offline phase needs
//! one global PageRank run. The convention throughout this workspace follows
//! the paper: `alpha` is the **teleport** probability (0.15), i.e. the
//! damping factor is `1 - alpha`.

use crate::csr::Graph;

/// Options for [`pagerank`].
#[derive(Clone, Copy, Debug)]
pub struct PageRankOptions {
    /// Teleport probability `α` (paper default 0.15).
    pub alpha: f64,
    /// Stop when the L1 change between iterations falls below this.
    pub tolerance: f64,
    /// Hard cap on iterations.
    pub max_iterations: usize,
}

impl Default for PageRankOptions {
    fn default() -> Self {
        PageRankOptions {
            alpha: 0.15,
            tolerance: 1e-10,
            max_iterations: 200,
        }
    }
}

/// Computes global PageRank scores (sums to 1).
///
/// Dangling-node mass is redistributed uniformly, so the result is a proper
/// distribution regardless of the graph's [`crate::DanglingPolicy`].
pub fn pagerank(graph: &Graph, opts: PageRankOptions) -> Vec<f64> {
    let n = graph.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let alpha = opts.alpha;
    assert!((0.0..1.0).contains(&alpha), "alpha must be in (0, 1)");
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0; n];
    for _ in 0..opts.max_iterations {
        let mut dangling_mass = 0.0;
        for v in graph.nodes() {
            if graph.is_dangling(v) {
                dangling_mass += rank[v as usize];
            }
        }
        let base = alpha * uniform + (1.0 - alpha) * dangling_mass * uniform;
        next.iter_mut().for_each(|x| *x = base);
        for u in graph.nodes() {
            let d = graph.out_degree(u);
            if d == 0 {
                continue;
            }
            let share = (1.0 - alpha) * rank[u as usize] / d as f64;
            for &v in graph.out_neighbors(u) {
                next[v as usize] += share;
            }
        }
        let delta: f64 = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut rank, &mut next);
        if delta < opts.tolerance {
            break;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{from_edges, from_undirected_edges, GraphBuilder};

    #[test]
    fn sums_to_one() {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let pr = pagerank(&g, PageRankOptions::default());
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let pr = pagerank(&g, PageRankOptions::default());
        for &p in &pr {
            assert!((p - 0.2).abs() < 1e-8);
        }
    }

    #[test]
    fn star_center_dominates() {
        // Undirected star: center 0 connected to 1..=4.
        let g = from_undirected_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let pr = pagerank(&g, PageRankOptions::default());
        for leaf in 1..5 {
            assert!(pr[0] > pr[leaf]);
        }
    }

    #[test]
    fn dangling_mass_redistributed() {
        let mut b = GraphBuilder::new(3).dangling(crate::DanglingPolicy::Keep);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        let g = b.build();
        assert_eq!(g.num_dangling(), 2);
        let pr = pagerank(&g, PageRankOptions::default());
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_is_empty() {
        let g = crate::Graph::empty(0);
        assert!(pagerank(&g, PageRankOptions::default()).is_empty());
    }

    #[test]
    fn matches_fixed_point_equation() {
        let g = from_edges(
            6,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 3),
                (1, 4),
            ],
        );
        let opts = PageRankOptions {
            tolerance: 1e-14,
            ..Default::default()
        };
        let pr = pagerank(&g, opts);
        // Verify r(v) = α/n + (1-α) Σ_{u→v} r(u)/out(u) for each v.
        let n = g.num_nodes() as f64;
        for v in g.nodes() {
            let mut rhs = 0.15 / n;
            for &u in g.in_neighbors(v) {
                rhs += 0.85 * pr[u as usize] / g.out_degree(u) as f64;
            }
            assert!((pr[v as usize] - rhs).abs() < 1e-9, "node {v}");
        }
    }
}
