//! Accuracy metrics for approximate PPVs (paper §6, "Accuracy metrics").
//!
//! The paper evaluates approximations against the exact PPV on the top-10
//! nodes with four metrics, following Chakrabarti et al.:
//!
//! * **Kendall's τ** ([`kendall_tau`]) — ranking agreement over the union of
//!   both top-k sets (τ-b, tie-adjusted);
//! * **precision@k** ([`precision_at_k`]) — overlap of the top-k sets;
//! * **RAG** ([`rag`]) — *relative average goodness*: how much exact mass
//!   the approximate top-k captures relative to the true top-k;
//! * **L1 similarity** ([`l1_similarity`]) — `1 − ‖exact − approx‖₁`
//!   (the paper reports the complement of the L1 error so that all four
//!   metrics read "higher is better").
//!
//! [`AccuracyReport`] bundles all four; [`AccuracyReport::mean`] averages
//! over test queries as in the paper's tables.

use fastppv_graph::{NodeId, SparseVector};

/// The `k` highest-scoring nodes of a dense score vector, ties broken by
/// node id (ascending) for determinism, returned in descending score order.
/// Zero-score nodes are included only if needed to fill `k`.
pub fn top_k_dense(scores: &[f64], k: usize) -> Vec<(NodeId, f64)> {
    let mut entries: Vec<(NodeId, f64)> = scores
        .iter()
        .enumerate()
        .map(|(i, &s)| (i as NodeId, s))
        .collect();
    entries.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    entries.truncate(k);
    entries
}

/// Precision@k: `|top_k(approx) ∩ top_k(exact)| / k`.
pub fn precision_at_k(exact: &[f64], approx: &SparseVector, k: usize) -> f64 {
    assert!(k > 0, "k must be positive");
    let k = k.min(exact.len());
    if k == 0 {
        return 1.0;
    }
    let exact_top: std::collections::HashSet<NodeId> =
        top_k_dense(exact, k).into_iter().map(|(v, _)| v).collect();
    let hits = approx
        .top_k(k)
        .iter()
        .filter(|&&(v, _)| exact_top.contains(&v))
        .count();
    hits as f64 / k as f64
}

/// Relative Average Goodness:
/// `Σ_{v ∈ top_k(approx)} exact(v) / Σ_{v ∈ top_k(exact)} exact(v)`.
///
/// 1.0 means the approximate top-k carries as much true mass as the exact
/// top-k (the sets may still differ among near-ties).
pub fn rag(exact: &[f64], approx: &SparseVector, k: usize) -> f64 {
    assert!(k > 0, "k must be positive");
    let k = k.min(exact.len());
    if k == 0 {
        return 1.0;
    }
    let denom: f64 = top_k_dense(exact, k).iter().map(|&(_, s)| s).sum();
    if denom == 0.0 {
        return 1.0;
    }
    let num: f64 = approx
        .top_k(k)
        .iter()
        .map(|&(v, _)| exact[v as usize])
        .sum();
    num / denom
}

/// Kendall's τ-b between the exact and approximate rankings, computed over
/// the union of both top-k sets (the evaluation protocol of Chakrabarti et
/// al., which the paper adopts).
///
/// Pairs tied in exactly one ranking reduce the respective tie-corrected
/// denominator. Returns 1.0 for an empty or single-node union; 0.0 when one
/// side is entirely tied and the other is not.
pub fn kendall_tau(exact: &[f64], approx: &SparseVector, k: usize) -> f64 {
    assert!(k > 0, "k must be positive");
    let mut union: Vec<NodeId> = top_k_dense(exact, k.min(exact.len()))
        .into_iter()
        .map(|(v, _)| v)
        .chain(approx.top_k(k).into_iter().map(|(v, _)| v))
        .collect();
    union.sort_unstable();
    union.dedup();
    if union.len() < 2 {
        return 1.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut tied_exact = 0i64;
    let mut tied_approx = 0i64;
    for i in 0..union.len() {
        for j in (i + 1)..union.len() {
            let de = exact[union[i] as usize] - exact[union[j] as usize];
            let da = approx.get(union[i]) - approx.get(union[j]);
            match (de == 0.0, da == 0.0) {
                (true, true) => {
                    tied_exact += 1;
                    tied_approx += 1;
                }
                (true, false) => tied_exact += 1,
                (false, true) => tied_approx += 1,
                (false, false) => {
                    if (de > 0.0) == (da > 0.0) {
                        concordant += 1;
                    } else {
                        discordant += 1;
                    }
                }
            }
        }
    }
    let n0 = (union.len() * (union.len() - 1) / 2) as i64;
    let denom = (((n0 - tied_exact) as f64) * ((n0 - tied_approx) as f64)).sqrt();
    if denom == 0.0 {
        // Both rankings entirely tied over the union: identical orderings.
        return if tied_exact == n0 && tied_approx == n0 {
            1.0
        } else {
            0.0
        };
    }
    (concordant - discordant) as f64 / denom
}

/// Top-k L1 error: `Σ_{v ∈ top_k(exact) ∪ top_k(approx)} |exact(v) −
/// approx(v)|`.
///
/// Like the other three metrics this is a *top-k* quantity (the evaluation
/// protocol of Chakrabarti et al., which the paper adopts with `k = 10`) —
/// the full-vector L1 gap after `η = 2` iterations is bounded below only by
/// Theorem 2 (≈ 0.52 at k=2), so the paper's reported `L1 similarity ≈
/// 0.996` can only be the top-k quantity. Use [`l1_error_full`] for the
/// whole-vector gap (FastPPV's accuracy-aware `φ`).
pub fn l1_error(exact: &[f64], approx: &SparseVector, k: usize) -> f64 {
    assert!(k > 0, "k must be positive");
    let mut union: Vec<NodeId> = top_k_dense(exact, k.min(exact.len()))
        .into_iter()
        .map(|(v, _)| v)
        .chain(approx.top_k(k).into_iter().map(|(v, _)| v))
        .collect();
    union.sort_unstable();
    union.dedup();
    union
        .iter()
        .map(|&v| (exact[v as usize] - approx.get(v)).abs())
        .sum()
}

/// Top-k L1 similarity `1 − l1_error@k` (clamped at 0), as reported by the
/// paper.
pub fn l1_similarity(exact: &[f64], approx: &SparseVector, k: usize) -> f64 {
    (1.0 - l1_error(exact, approx, k)).max(0.0)
}

/// Full-vector L1 error `‖exact − approx‖₁` over all nodes (FastPPV's
/// accuracy-aware `φ` measures exactly this quantity at query time).
pub fn l1_error_full(exact: &[f64], approx: &SparseVector) -> f64 {
    approx.l1_distance_dense(exact)
}

/// All four paper metrics for one query.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AccuracyReport {
    /// Kendall's τ-b over the top-k union.
    pub kendall: f64,
    /// Precision@k.
    pub precision: f64,
    /// Relative average goodness.
    pub rag: f64,
    /// `1 − L1 error`.
    pub l1_similarity: f64,
}

impl AccuracyReport {
    /// Computes all metrics at `k` (the paper uses `k = 10`).
    pub fn compute(exact: &[f64], approx: &SparseVector, k: usize) -> Self {
        AccuracyReport {
            kendall: kendall_tau(exact, approx, k),
            precision: precision_at_k(exact, approx, k),
            rag: rag(exact, approx, k),
            l1_similarity: l1_similarity(exact, approx, k),
        }
    }

    /// Averages reports over test queries.
    pub fn mean(reports: &[AccuracyReport]) -> AccuracyReport {
        if reports.is_empty() {
            return AccuracyReport::default();
        }
        let n = reports.len() as f64;
        AccuracyReport {
            kendall: reports.iter().map(|r| r.kendall).sum::<f64>() / n,
            precision: reports.iter().map(|r| r.precision).sum::<f64>() / n,
            rag: reports.iter().map(|r| r.rag).sum::<f64>() / n,
            l1_similarity: reports.iter().map(|r| r.l1_similarity).sum::<f64>() / n,
        }
    }

    /// The minimum of the four metrics (a quick "worst dimension" summary).
    pub fn min_metric(&self) -> f64 {
        self.kendall
            .min(self.precision)
            .min(self.rag)
            .min(self.l1_similarity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse(entries: &[(NodeId, f64)]) -> SparseVector {
        SparseVector::from_unsorted(entries.to_vec())
    }

    #[test]
    fn perfect_approximation_scores_one_everywhere() {
        let exact = vec![0.4, 0.3, 0.2, 0.1];
        let approx = sparse(&[(0, 0.4), (1, 0.3), (2, 0.2), (3, 0.1)]);
        let r = AccuracyReport::compute(&exact, &approx, 3);
        assert_eq!(r.kendall, 1.0);
        assert_eq!(r.precision, 1.0);
        assert_eq!(r.rag, 1.0);
        assert!((r.l1_similarity - 1.0).abs() < 1e-12);
        assert_eq!(r.min_metric(), r.kendall.min(1.0));
    }

    #[test]
    fn top_k_dense_survives_nan_scores() {
        // total_cmp never panics on NaN; a (positive) NaN ranks above all
        // finite scores, so it lands first and the rest stay ordered.
        let top = top_k_dense(&[0.3, f64::NAN, 0.9, 0.1], 3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].0, 1, "NaN entry first under total_cmp");
        assert_eq!(top[1], (2, 0.9));
        assert_eq!(top[2], (0, 0.3));
    }

    #[test]
    fn reversed_ranking_has_negative_tau() {
        let exact = vec![0.4, 0.3, 0.2, 0.1];
        let approx = sparse(&[(0, 0.1), (1, 0.2), (2, 0.3), (3, 0.4)]);
        assert!(kendall_tau(&exact, &approx, 4) <= -0.99);
    }

    #[test]
    fn precision_counts_overlap() {
        let exact = vec![0.4, 0.3, 0.2, 0.1, 0.0];
        // Approx top-2 = {0, 4}: one of the true top-2 {0, 1}.
        let approx = sparse(&[(0, 0.5), (4, 0.4), (1, 0.05)]);
        assert!((precision_at_k(&exact, &approx, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rag_measures_captured_mass() {
        let exact = vec![0.5, 0.3, 0.1, 0.1];
        // Approx picks nodes 0 and 2: captured 0.6 of the best 0.8.
        let approx = sparse(&[(0, 0.9), (2, 0.8)]);
        assert!((rag(&exact, &approx, 2) - 0.6 / 0.8).abs() < 1e-12);
    }

    #[test]
    fn l1_counts_missing_entries() {
        let exact = vec![0.5, 0.5];
        let approx = sparse(&[(0, 0.5)]);
        assert!((l1_error(&exact, &approx, 2) - 0.5).abs() < 1e-12);
        assert!((l1_similarity(&exact, &approx, 2) - 0.5).abs() < 1e-12);
        assert!((l1_error_full(&exact, &approx) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn l1_similarity_clamps_at_zero() {
        let exact = vec![1.0, 0.0];
        let approx = sparse(&[(0, 3.0), (1, 2.0)]);
        assert_eq!(l1_similarity(&exact, &approx, 2), 0.0);
    }

    #[test]
    fn topk_l1_ignores_tail_error() {
        // Error concentrated outside both top-1 sets does not count at k=1,
        // but does count in the full-vector gap.
        let exact = vec![0.6, 0.2, 0.2];
        let approx = sparse(&[(0, 0.6)]);
        assert!(l1_error(&exact, &approx, 1) < 1e-12);
        assert!((l1_error_full(&exact, &approx) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn tau_handles_ties() {
        let exact = vec![0.4, 0.4, 0.2];
        // Approx breaks the exact tie; the tied pair counts in neither
        // direction but shrinks one denominator.
        let approx = sparse(&[(0, 0.5), (1, 0.4), (2, 0.2)]);
        let tau = kendall_tau(&exact, &approx, 3);
        assert!(tau > 0.0 && tau <= 1.0);
        // Fully tied on both sides -> 1.
        let tied = sparse(&[(0, 0.1), (1, 0.1), (2, 0.1)]);
        let exact_tied = vec![0.3, 0.3, 0.3];
        assert_eq!(kendall_tau(&exact_tied, &tied, 3), 1.0);
        // Tied exact, distinct approx -> 0.
        assert_eq!(kendall_tau(&exact_tied, &approx, 3), 0.0);
    }

    #[test]
    fn top_k_dense_tie_break_is_deterministic() {
        let scores = vec![0.2, 0.5, 0.2, 0.5];
        assert_eq!(top_k_dense(&scores, 3), vec![(1, 0.5), (3, 0.5), (0, 0.2)]);
    }

    #[test]
    fn k_larger_than_graph_is_clamped() {
        let exact = vec![0.6, 0.4];
        let approx = sparse(&[(0, 0.6), (1, 0.4)]);
        assert_eq!(precision_at_k(&exact, &approx, 10), 1.0);
        assert_eq!(rag(&exact, &approx, 10), 1.0);
    }

    #[test]
    fn mean_averages_reports() {
        let a = AccuracyReport {
            kendall: 1.0,
            precision: 0.8,
            rag: 1.0,
            l1_similarity: 0.9,
        };
        let b = AccuracyReport {
            kendall: 0.0,
            precision: 0.6,
            rag: 0.8,
            l1_similarity: 0.7,
        };
        let m = AccuracyReport::mean(&[a, b]);
        assert!((m.kendall - 0.5).abs() < 1e-12);
        assert!((m.precision - 0.7).abs() < 1e-12);
        assert!((m.rag - 0.9).abs() < 1e-12);
        assert!((m.l1_similarity - 0.8).abs() < 1e-12);
        assert_eq!(AccuracyReport::mean(&[]), AccuracyReport::default());
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn rejects_zero_k() {
        precision_at_k(&[0.5], &sparse(&[(0, 0.5)]), 0);
    }
}
