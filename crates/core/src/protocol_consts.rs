//! The single source of truth for every magic number, format version,
//! and wire-protocol tag in the workspace.
//!
//! Each on-disk format and the TCP wire protocol identifies itself with
//! an 8-byte ASCII magic (or a 4-byte packed one) followed by a version
//! field. Those values used to be restated per crate; now they are
//! defined exactly once here and re-exported where the old names were
//! public API (`fastppv_server::net`, `fastppv_cluster::shard`).
//! `fppv-lint`'s `const-registry` rule rejects any byte-for-byte
//! duplicate literal elsewhere in the tree, and its `doc-drift` check
//! keeps the values quoted in the README in sync with this module.
//!
//! Changing any value here is a format break: bump the corresponding
//! version, update the README's format tables, and keep the old readers
//! fail-closed (they must reject the new magic/version, never
//! misinterpret it).

/// Magic of the record-oriented index format (`MemoryIndex` /
/// `CompactIndex` serialization).
pub const IDX1_MAGIC: &[u8; 8] = b"FPPVIDX1";
/// Current version of the `FPPVIDX1` format.
pub const IDX1_VERSION: u32 = 2;

/// Magic of the compressed (quantized + varint) index format.
pub const IDX2_MAGIC: &[u8; 8] = b"FPPVIDX2";
/// Current version of the `FPPVIDX2` format (a `u8` in the header).
pub const IDX2_VERSION: u8 = 1;

/// Magic of the single-file mmap arena format (`FlatIndex`).
pub const IDX3_MAGIC: &[u8; 8] = b"FPPVIDX3";
/// Current version of the `FPPVIDX3` format.
pub const IDX3_VERSION: u32 = 3;

/// Magic of the write-ahead log.
pub const WAL_MAGIC: &[u8; 8] = b"FPPVWAL1";
/// Current version of the `FPPVWAL1` format.
pub const WAL_VERSION: u32 = 1;

/// Magic of the WAL manifest (the atomic commit point naming the
/// current checkpoint and WAL position).
pub const MANIFEST_MAGIC: &[u8; 8] = b"FPPVMAN1";

/// Magic of the clustered-store file produced by graph partitioning.
pub const CLUSTER_GRAPH_MAGIC: &[u8; 8] = b"FPPVCLG1";
/// Current version of the `FPPVCLG1` format.
pub const CLUSTER_GRAPH_VERSION: u32 = 1;

/// Magic of the shard-map file: `"FPVM"` read as a big-endian `u32`.
pub const SHARD_MAP_MAGIC: u32 = 0x4650_564D;
/// Current version of the shard-map format.
pub const SHARD_MAP_VERSION: u16 = 1;

/// Wire-protocol magic: `"FPPV"` read as a big-endian `u32`.
pub const NET_MAGIC: u32 = 0x4650_5056;
/// Wire-protocol version negotiated in the hello exchange.
pub const PROTOCOL_VERSION: u16 = 3;

/// Op tag: PPV / top-k query batch.
pub const OP_QUERY: u8 = 0;
/// Op tag: server statistics probe.
pub const OP_STATS: u8 = 1;
/// Op tag: scatter-phase prime-0 sub-query (sharded serving).
pub const OP_PRIME0: u8 = 2;
/// Op tag: scatter-phase expansion sub-query (sharded serving).
pub const OP_EXPAND: u8 = 3;
/// Op tag: two-phase update control (prepare/commit/abort).
pub const OP_UPDATE: u8 = 4;

/// Sentinel epoch meaning "any epoch is acceptable" in sub-query
/// requests (used by single-shard probes and the router's discovery
/// hello).
pub const EPOCH_ANY: u64 = u64::MAX;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_magics_match_their_ascii_names() {
        assert_eq!(NET_MAGIC.to_be_bytes(), *b"FPPV");
        assert_eq!(SHARD_MAP_MAGIC.to_be_bytes(), *b"FPVM");
    }

    #[test]
    fn eight_byte_magics_are_distinct() {
        let magics = [
            IDX1_MAGIC,
            IDX2_MAGIC,
            IDX3_MAGIC,
            WAL_MAGIC,
            MANIFEST_MAGIC,
            CLUSTER_GRAPH_MAGIC,
        ];
        for (i, a) in magics.iter().enumerate() {
            for b in &magics[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn op_tags_are_dense_from_zero() {
        assert_eq!(
            [OP_QUERY, OP_STATS, OP_PRIME0, OP_EXPAND, OP_UPDATE],
            [0, 1, 2, 3, 4]
        );
    }
}
