//! Read-only file backing for the zero-copy arena ([`crate::index::FlatIndex`]).
//!
//! [`Backing`] holds the raw bytes of an index file either as a private
//! read-only memory mapping (Unix, the fast path: open cost is O(1) and
//! pages fault in lazily, so an index larger than RAM can be served) or as
//! an 8-byte-aligned heap buffer (portable fallback, also used when `mmap`
//! itself fails — e.g. on filesystems that refuse mappings).
//!
//! The buffer start is always 8-byte aligned: `mmap` returns page-aligned
//! addresses and the heap fallback allocates `u64` words, so the arena's
//! 8-aligned sections can be reinterpreted as `f64`/`u64` slices in place.

use std::fmt;
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};

#[cfg(unix)]
mod sys {
    use core::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// The raw bytes of an opened index file: an `mmap` region or a heap copy.
pub(crate) enum Backing {
    /// A private read-only memory mapping (unmapped on drop).
    #[cfg(unix)]
    Mapped {
        ptr: *mut core::ffi::c_void,
        len: usize,
    },
    /// Heap fallback: the file contents in an 8-aligned buffer.
    Heap { buf: Vec<u64>, len: usize },
}

// SAFETY: the `Mapped` pointer is an immutable private mapping owned
// exclusively by this value; sharing it across threads is no different
// from sharing a heap allocation.
unsafe impl Send for Backing {}
// SAFETY: as above — the mapping is PROT_READ and never written through,
// so shared references from many threads cannot race.
unsafe impl Sync for Backing {}

impl Backing {
    /// Loads `len` bytes of `file`: mmap where available, heap otherwise.
    pub fn open(file: &File, len: usize) -> io::Result<Backing> {
        #[cfg(unix)]
        if len > 0 {
            use std::os::unix::io::AsRawFd;
            // SAFETY: plain FFI call with a live fd, a null addr hint, and
            // in-range flags; the result is validated against MAP_FAILED
            // before use.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            // MAP_FAILED is (void*)-1; fall through to the heap path on any
            // mmap refusal rather than erroring out.
            if ptr as isize != -1 && !ptr.is_null() {
                return Ok(Backing::Mapped { ptr, len });
            }
        }
        let mut buf = vec![0u64; len.div_ceil(8)];
        // SAFETY: `buf` owns ≥ len bytes (len.div_ceil(8) u64 words), the
        // cast only narrows the element type, and `buf` is borrowed mutably
        // for exactly the lifetime of `dst`.
        let dst = unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<u8>(), len) };
        let mut r = file;
        r.seek(SeekFrom::Start(0))?;
        r.read_exact(dst)?;
        Ok(Backing::Heap { buf, len })
    }

    /// The file contents.
    pub fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes (unmapped only in Drop), and the returned slice's
            // lifetime is tied to `&self`.
            Backing::Mapped { ptr, len } => unsafe {
                std::slice::from_raw_parts(ptr.cast::<u8>().cast_const(), *len)
            },
            // SAFETY: `buf` owns ≥ len bytes and lives as long as `self`;
            // the cast only narrows the element type.
            Backing::Heap { buf, len } => unsafe {
                std::slice::from_raw_parts(buf.as_ptr().cast::<u8>(), *len)
            },
        }
    }

    /// Whether the bytes live in a file mapping (as opposed to the heap).
    pub fn is_file_mapped(&self) -> bool {
        match self {
            #[cfg(unix)]
            Backing::Mapped { .. } => true,
            Backing::Heap { .. } => false,
        }
    }
}

impl Drop for Backing {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len } = self {
            // SAFETY: `ptr`/`len` came from a successful mmap and are
            // unmapped exactly once, here; no slice into the mapping can
            // outlive `self` (see `bytes`).
            unsafe {
                sys::munmap(*ptr, *len);
            }
        }
    }
}

impl fmt::Debug for Backing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            #[cfg(unix)]
            Backing::Mapped { len, .. } => write!(f, "Backing::Mapped({len} bytes)"),
            Backing::Heap { len, .. } => write!(f, "Backing::Heap({len} bytes)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn backing_round_trips_bytes() {
        let mut path = std::env::temp_dir();
        path.push(format!("fastppv-mapfile-{}", std::process::id()));
        let payload: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        File::create(&path).unwrap().write_all(&payload).unwrap();
        let file = File::open(&path).unwrap();
        let backing = Backing::open(&file, payload.len()).unwrap();
        assert_eq!(backing.bytes(), &payload[..]);
        assert_eq!(backing.bytes().len(), payload.len());
        assert_eq!(backing.bytes().as_ptr() as usize % 8, 0, "8-aligned start");
        drop(backing);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn heap_fallback_matches_mapping() {
        let mut path = std::env::temp_dir();
        path.push(format!("fastppv-mapfile-heap-{}", std::process::id()));
        let payload = vec![0xABu8; 37]; // deliberately not a multiple of 8
        File::create(&path).unwrap().write_all(&payload).unwrap();
        let file = File::open(&path).unwrap();
        let mut buf = vec![0u64; payload.len().div_ceil(8)];
        let n = payload.len();
        // SAFETY: same invariant as `Backing::open` — `buf` owns at least
        // `payload.len()` bytes and is only reborrowed for `dst`'s lifetime.
        let dst = unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<u8>(), n) };
        {
            let mut r = &file;
            r.read_exact(dst).unwrap();
        }
        let heap = Backing::Heap {
            buf,
            len: payload.len(),
        };
        let opened = Backing::open(&file, payload.len()).unwrap();
        assert_eq!(heap.bytes(), opened.bytes());
        assert!(!heap.is_file_mapped());
        std::fs::remove_file(&path).unwrap();
    }
}
