//! # FastPPV core — scheduled approximation of Personalized PageRank
//!
//! Reproduction of *Zhu, Fang, Chang, Ying. "Incremental and Accuracy-Aware
//! Personalized PageRank through Scheduled Approximation", PVLDB 6(6), 2013*.
//!
//! The Personalized PageRank Vector (PPV) of a query node `q` equals, per
//! entry, the *inverse P-distance*: the total reachability of all tours from
//! `q` to that node (paper Eq. 1–2). FastPPV partitions those tours by **hub
//! length** — the number of high-expected-utility hub nodes a tour passes
//! through — and processes partitions in order of importance:
//!
//! 1. [`hubs`] selects hubs by expected utility `EU(v) = PageRank(v)·|Out(v)|`.
//! 2. [`prime`] extracts, per node, the *prime subgraph* (the hub-free
//!    neighborhood, pruned at reachability `ε`) and computes its *prime PPV*.
//! 3. [`offline`] precomputes prime PPVs for every hub into a [`index`]
//!    (in-memory or on-disk) — the query-independent building blocks. The
//!    serving layout is the flat structure-of-arrays arena
//!    ([`index::FlatIndex`], built by [`offline::build_flat_index`]), whose
//!    reads are zero-copy borrowed views ([`index::PpvRef`]).
//! 4. [`query`] answers queries incrementally: iteration `i` assembles the
//!    tour partition `T^i` from the previous increment and the stored prime
//!    PPVs (Theorem 4), adding one increment per iteration. After each
//!    iteration the exact L1 error of the running estimate is known *without
//!    the exact PPV* (`φ(k) = 1 − ‖r̂‖₁`, Eq. 6), so the accuracy/latency
//!    trade-off is controlled at query time ([`query::StoppingCondition`]).
//! 5. [`error`] provides the exponential bound `φ(k) ≤ (1-α)^{k+2}`
//!    (Theorem 2); [`linearity`] handles multi-node queries; [`dynamic`]
//!    maintains the index under edge updates (the paper's future-work §7).
//!
//! ## The shared kernel
//!
//! Both phases funnel through one kernel: the prime-PPV computation in
//! [`prime`] (extract the hub-free neighborhood, renumber it for cache
//! locality, solve it with a worklist push). Its priority structure is a
//! monotone bucket queue over *quantized log-probabilities*
//! ([`prime::BucketQueue`]): bucket indices come from the raw IEEE-754
//! exponent/mantissa bits, the bucket width is matched to the per-step
//! decay `1-α` so pops stay exact despite quantization, and everything
//! downstream (interior set, best probabilities, degree-ordered local
//! numbering) is independent of pop order — so results are deterministic
//! and bit-identical across runs, thread counts, and platforms. See the
//! [`prime`] module docs for the full argument.
//!
//! ## Concurrency
//!
//! [`QueryEngine`] is immutable at query time: every query method takes
//! `&self`, and per-query mutable scratch lives in a [`QueryWorkspace`]
//! (one per thread, created with [`QueryEngine::workspace`]). A single
//! engine can therefore serve many threads at once — share it by reference
//! or in an `Arc` whenever the store is `Sync`, and call
//! [`QueryEngine::query_with`] with a thread-local workspace. The
//! `fastppv-server` crate builds a worker-pooled, cache-fronted query
//! service on exactly this property.
//!
//! ## Quickstart
//!
//! ```
//! use fastppv_core::{build_index, select_hubs, Config, HubPolicy, QueryEngine};
//! use fastppv_core::query::StoppingCondition;
//! use fastppv_graph::gen::barabasi_albert;
//!
//! let graph = barabasi_albert(500, 3, 42);
//! // δ/clip = 0: no truncation, so Theorem 2 applies exactly.
//! let config = Config::default().with_delta(0.0).with_clip(0.0);
//! let hubs = select_hubs(&graph, HubPolicy::ExpectedUtility, 25, 0);
//! let (index, _stats) = build_index(&graph, &hubs, &config);
//! let engine = QueryEngine::new(&graph, &hubs, &index, config);
//! let result = engine.query(7, &StoppingCondition::iterations(2));
//! assert!(result.l1_error <= 0.85f64.powi(4)); // Theorem 2 bound φ(2)
//! assert!(result.l1_error < 0.2); // in practice well below the bound
//!
//! // Hot loops reuse one workspace instead of allocating per query:
//! let mut ws = engine.workspace();
//! let refined = engine.query_with(&mut ws, 7, &StoppingCondition::l1_error(0.05));
//! assert!(refined.l1_error <= 0.05);
//! ```

pub mod atomic_io;
pub mod autotune;
pub mod codec;
pub mod config;
pub mod dynamic;
pub mod error;
pub mod hubs;
pub mod index;
pub mod linearity;
pub(crate) mod mapfile;
pub mod offline;
pub mod prime;
pub mod protocol_consts;
pub mod query;
pub mod wal;

pub use codec::{CompressedDiskIndex, ScoreQuantization};
pub use config::Config;
pub use dynamic::{DeltaConfig, RefreshStats};
pub use hubs::{select_hubs, select_hubs_with_pagerank, HubPolicy, HubSet};
pub use index::{DiskIndex, FlatIndex, MemoryIndex, OpenError, PpvRef, PpvStore, PrimePpv};
pub use offline::{
    build_flat_index, build_index, build_index_in_order, build_index_parallel, OfflineStats,
};
pub use prime::{
    AdjacencyAccess, BucketQueue, DeltaOutcome, DeltaPush, PrimeComputer, PrimeSubgraph,
};
pub use query::{
    expand_frontier, ExpandOutcome, IncrementScratch, MassList, QueryEngine, QueryResult,
    QuerySession, QueryWorkspace, TopKResult,
};
pub use wal::{Manifest, Wal, WalBatch};
