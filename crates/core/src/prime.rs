//! Prime subgraphs and prime PPVs (paper §4.2, Def. 2).
//!
//! The *prime subgraph* `G'(v)` of a node `v` contains everything reachable
//! from `v` through hub-free tours whose walk probability stays above `ε`,
//! plus the *border hubs* and sub-`ε` frontier nodes those tours run into
//! (kept as absorbing sinks). The *prime PPV* `r̂⁰_v` aggregates the
//! reachability of those tours per endpoint.
//!
//! ## Faithfulness notes
//!
//! * The paper describes the extraction as a DFS that backtracks at hubs and
//!   at nodes with reachability `< ε`. On cyclic graphs a per-path DFS does
//!   not terminate; the node set it defines is exactly
//!   `{u : max hub-free walk probability v ⇝ u ≥ ε}`, which we compute with
//!   a max-probability Dijkstra (walk probability is monotonically
//!   decreasing along a path, so best-first expansion is correct and each
//!   node is expanded once).
//! * Stored prime PPVs exclude the *trivial tour* mass `α` at the source:
//!   Theorems 3–4 assemble tours from **non-empty** hub-free segments (a
//!   transfer at a hub requires actually arriving there), so the empty tour
//!   must not participate in assembly. The online engine adds `α·e_q` back
//!   when it forms the estimate. This also makes a hub's *own* entry (mass
//!   returned to a hub source by cycles) a legitimate expansion coefficient.
//! * Mass arriving at a **hub** source is absorbed rather than re-propagated
//!   (the second visit is an interior hub occurrence, i.e. hub length ≥ 1);
//!   mass arriving at a non-hub source re-propagates.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use fastppv_graph::{Graph, NodeId, SparseVector};

use crate::config::Config;
use crate::hubs::HubSet;
use crate::index::PrimePpv;

/// Abstract adjacency access, so extraction can run against an in-memory
/// [`Graph`] or a disk-resident clustered graph (`fastppv-cluster`), where
/// every probe may trigger a cluster load. Methods take `&mut self` for
/// exactly that reason.
pub trait AdjacencyAccess {
    /// Number of nodes in the underlying graph.
    fn num_nodes(&self) -> usize;

    /// Out-degree of `v`.
    fn out_degree(&mut self, v: NodeId) -> usize;

    /// Calls `f` for every out-neighbor of `v` (with multiplicity).
    fn visit_out_neighbors(&mut self, v: NodeId, f: &mut dyn FnMut(NodeId));
}

impl AdjacencyAccess for &Graph {
    fn num_nodes(&self) -> usize {
        Graph::num_nodes(self)
    }

    fn out_degree(&mut self, v: NodeId) -> usize {
        Graph::out_degree(self, v)
    }

    fn visit_out_neighbors(&mut self, v: NodeId, f: &mut dyn FnMut(NodeId)) {
        for &t in Graph::out_neighbors(self, v) {
            f(t);
        }
    }
}

/// A max-heap entry ordered by walk probability.
struct ProbEntry(f64, NodeId);

impl PartialEq for ProbEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0 && self.1 == other.1
    }
}
impl Eq for ProbEntry {}
impl PartialOrd for ProbEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ProbEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0).then(other.1.cmp(&self.1))
    }
}

/// The extracted prime subgraph of a source node, in local-id form.
///
/// Local ids `0..num_interior` are *interior* (propagating) nodes, source
/// first; ids `num_interior..nodes.len()` are absorbers (border hubs and
/// sub-`ε` frontier nodes).
#[derive(Clone, Debug)]
pub struct PrimeSubgraph {
    /// The source node (global id).
    pub source: NodeId,
    /// Local-to-global node map.
    pub nodes: Vec<NodeId>,
    /// Number of interior (propagating) nodes; the rest absorb.
    pub num_interior: usize,
    /// CSR offsets over interior locals.
    pub adj_offsets: Vec<usize>,
    /// CSR targets (local ids, spanning interior and absorbers).
    pub adj_targets: Vec<u32>,
    /// Global out-degree of each interior local (propagation denominators —
    /// mass leaking to pruned out-neighbors is intentionally lost).
    pub out_degree: Vec<u32>,
    /// Whether the source is a hub (its returning mass then absorbs).
    pub source_is_hub: bool,
}

impl PrimeSubgraph {
    /// Total nodes (interior + absorbers).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of absorber nodes.
    pub fn num_absorbers(&self) -> usize {
        self.nodes.len() - self.num_interior
    }

    /// Local out-edges of interior local `u`.
    pub fn targets(&self, u: usize) -> &[u32] {
        &self.adj_targets[self.adj_offsets[u]..self.adj_offsets[u + 1]]
    }
}

/// Reusable workspace for prime-subgraph extraction and prime-PPV solves.
///
/// Holds graph-sized scratch arrays so repeated extractions (one per hub
/// offline; one per non-hub query online) allocate nothing proportional to
/// the graph.
pub struct PrimeComputer {
    best: Vec<f64>,
    local_of: Vec<u32>,
    touched: Vec<NodeId>,
    heap: BinaryHeap<ProbEntry>,
    // Solve scratch, sized per subgraph and reused across solves (the
    // reusable-workspace contract: no per-call allocations once warm).
    mass: Vec<f64>,
    mass_next: Vec<f64>,
    absorbed: Vec<f64>,
    in_queue: Vec<bool>,
    queue: std::collections::VecDeque<u32>,
}

const NO_LOCAL: u32 = u32::MAX;

impl PrimeComputer {
    /// A workspace for graphs of `n` nodes.
    pub fn new(n: usize) -> Self {
        PrimeComputer {
            best: vec![0.0; n],
            local_of: vec![NO_LOCAL; n],
            touched: Vec::new(),
            heap: BinaryHeap::new(),
            mass: Vec::new(),
            mass_next: Vec::new(),
            absorbed: Vec::new(),
            in_queue: Vec::new(),
            queue: std::collections::VecDeque::new(),
        }
    }

    /// Extracts the prime subgraph of `source` (paper §5.1): best-first
    /// expansion of hub-free walks, pruned below `config.epsilon`.
    pub fn extract(
        &mut self,
        graph: &Graph,
        hubs: &HubSet,
        source: NodeId,
        config: &Config,
    ) -> PrimeSubgraph {
        self.extract_from(&mut { graph }, hubs, source, config)
    }

    /// Like [`PrimeComputer::extract`], over any [`AdjacencyAccess`].
    pub fn extract_from<A: AdjacencyAccess>(
        &mut self,
        graph: &mut A,
        hubs: &HubSet,
        source: NodeId,
        config: &Config,
    ) -> PrimeSubgraph {
        let alpha = config.alpha;
        let eps = config.epsilon;
        let PrimeComputer {
            best,
            local_of,
            touched,
            heap,
            ..
        } = self;
        debug_assert!(heap.is_empty());
        debug_assert!(touched.is_empty());

        let mut nodes: Vec<NodeId> = Vec::new();
        fn push_local(
            v: NodeId,
            nodes: &mut Vec<NodeId>,
            local_of: &mut [u32],
            touched: &mut Vec<NodeId>,
        ) -> u32 {
            let slot = &mut local_of[v as usize];
            if *slot == NO_LOCAL {
                *slot = nodes.len() as u32;
                nodes.push(v);
                touched.push(v);
            }
            *slot
        }

        // Phase 1: Dijkstra over walk probability; interior nodes are popped
        // in decreasing-probability order. The source is always interior.
        best[source as usize] = 1.0;
        touched.push(source);
        heap.push(ProbEntry(1.0, source));
        let mut interior: Vec<NodeId> = Vec::new();
        while let Some(ProbEntry(p, v)) = heap.pop() {
            if p < best[v as usize] {
                continue; // stale entry
            }
            // Mark popped so duplicates are skipped (any other heap entry
            // for v has prob <= p and is discarded against infinity).
            best[v as usize] = f64::INFINITY;
            interior.push(v);
            let d = graph.out_degree(v);
            if d == 0 {
                continue;
            }
            let w = p * (1.0 - alpha) / d as f64;
            if w < eps {
                continue;
            }
            graph.visit_out_neighbors(v, &mut |t| {
                // Hubs never propagate; they are collected as absorbers in
                // phase 2. The source re-encountered is handled the same
                // way if it is a hub.
                if hubs.is_hub(t) {
                    return;
                }
                if w > best[t as usize] {
                    if best[t as usize] == 0.0 {
                        touched.push(t);
                    }
                    best[t as usize] = w;
                    heap.push(ProbEntry(w, t));
                }
            });
        }

        // Phase 2: assign local ids — interior first (source is interior[0]
        // because it entered the heap with probability 1), then absorbers
        // discovered on interior out-edges.
        debug_assert_eq!(interior[0], source);
        for &v in &interior {
            push_local(v, &mut nodes, local_of, touched);
        }
        let num_interior = nodes.len();
        let mut adj_offsets = Vec::with_capacity(num_interior + 1);
        let mut adj_targets: Vec<u32> = Vec::new();
        let mut out_degree = Vec::with_capacity(num_interior);
        adj_offsets.push(0);
        for u in 0..num_interior {
            let v = nodes[u];
            out_degree.push(graph.out_degree(v) as u32);
            graph.visit_out_neighbors(v, &mut |t| {
                let lt = push_local(t, &mut nodes, local_of, touched);
                adj_targets.push(lt);
            });
            adj_offsets.push(adj_targets.len());
        }

        // Reset graph-sized scratch.
        for &v in touched.iter() {
            best[v as usize] = 0.0;
            local_of[v as usize] = NO_LOCAL;
        }
        touched.clear();
        heap.clear();

        PrimeSubgraph {
            source,
            nodes,
            num_interior,
            adj_offsets,
            adj_targets,
            out_degree,
            source_is_hub: hubs.is_hub(source),
        }
    }

    /// Solves for the prime PPV of `sub.source` over the subgraph with an
    /// adaptive worklist push: residual mass is propagated node by node
    /// until every interior residual falls below `solve_tolerance` (work is
    /// proportional to actual mass flow, not sweeps × edges), leaving at
    /// most `tolerance × |interior|` mass unaccounted. Returns the
    /// **trivial-tour-excluded** reachabilities `r̊⁰` (see module docs),
    /// clipped at `clip`.
    pub fn solve(&mut self, sub: &PrimeSubgraph, config: &Config, clip: f64) -> PrimePpv {
        let alpha = config.alpha;
        let ni = sub.num_interior;
        let ntot = sub.num_nodes();
        let theta = config.solve_tolerance;
        // mass = settled visit mass m; mass_next = pending residual ρ.
        // All solve scratch lives in the computer and is cleared on reuse.
        self.mass.clear();
        self.mass.resize(ni, 0.0);
        self.mass_next.clear();
        self.mass_next.resize(ni, 0.0);
        self.absorbed.clear();
        self.absorbed.resize(ntot - ni, 0.0);
        self.in_queue.clear();
        self.in_queue.resize(ni, false);
        self.queue.clear();
        let mut source_returns = 0.0;
        self.mass_next[0] = 1.0;
        self.in_queue[0] = true;
        self.queue.push_back(0);
        let max_pushes = config
            .solve_max_iterations
            .saturating_mul(ni.max(1))
            .max(1_000);
        let mut pushes = 0usize;
        while let Some(u) = self.queue.pop_front() {
            let u = u as usize;
            self.in_queue[u] = false;
            let r = self.mass_next[u];
            if r == 0.0 {
                continue;
            }
            self.mass_next[u] = 0.0;
            self.mass[u] += r;
            pushes += 1;
            if pushes > max_pushes {
                break; // safety valve; residual left is reported via clip
            }
            let d = sub.out_degree[u];
            if d == 0 {
                continue;
            }
            let share = r * (1.0 - alpha) / d as f64;
            for &t in sub.targets(u) {
                let t = t as usize;
                if t >= ni {
                    self.absorbed[t - ni] += share;
                } else if t == 0 && sub.source_is_hub {
                    // Mass returning to a hub source absorbs (the second
                    // visit would be an interior hub occurrence).
                    source_returns += share;
                } else {
                    self.mass_next[t] += share;
                    if self.mass_next[t] > theta && !self.in_queue[t] {
                        self.in_queue[t] = true;
                        self.queue.push_back(t as u32);
                    }
                }
            }
        }
        // Materialize entries: α × visit mass, with the trivial tour
        // excluded at the source.
        let mut entries: Vec<(NodeId, f64)> = Vec::with_capacity(ntot);
        let src_score = if sub.source_is_hub {
            alpha * source_returns
        } else {
            alpha * (self.mass[0] - 1.0)
        };
        if src_score >= clip && src_score > 0.0 {
            entries.push((sub.source, src_score));
        }
        for u in 1..ni {
            let s = alpha * self.mass[u];
            if s >= clip && s > 0.0 {
                entries.push((sub.nodes[u], s));
            }
        }
        for (i, &a) in self.absorbed.iter().enumerate() {
            let s = alpha * a;
            if s >= clip && s > 0.0 {
                entries.push((sub.nodes[ni + i], s));
            }
        }
        entries.sort_unstable_by_key(|&(id, _)| id);
        PrimePpv {
            entries: SparseVector::from_sorted(entries),
        }
    }

    /// Convenience: extract + solve in one call.
    pub fn prime_ppv(
        &mut self,
        graph: &Graph,
        hubs: &HubSet,
        source: NodeId,
        config: &Config,
        clip: f64,
    ) -> (PrimePpv, usize) {
        self.prime_ppv_from(&mut { graph }, hubs, source, config, clip)
    }

    /// Like [`PrimeComputer::prime_ppv`], over any [`AdjacencyAccess`].
    pub fn prime_ppv_from<A: AdjacencyAccess>(
        &mut self,
        graph: &mut A,
        hubs: &HubSet,
        source: NodeId,
        config: &Config,
        clip: f64,
    ) -> (PrimePpv, usize) {
        let sub = self.extract_from(graph, hubs, source, config);
        let size = sub.num_nodes();
        (self.solve(&sub, config, clip), size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastppv_baselines::naive::partition_by_hub_length;
    use fastppv_graph::builder::from_edges;
    use fastppv_graph::gen::barabasi_albert;
    use fastppv_graph::toy;

    fn toy_hubs() -> HubSet {
        HubSet::from_ids(8, toy::PAPER_HUBS.to_vec())
    }

    #[test]
    fn extraction_on_toy_graph_matches_figure_3() {
        // G'(a): interior {a, h, g?}: tours from a avoiding hubs {b,d,f}:
        // a→c, a→h(→c); b, d, f are border hubs; c, e reachable sinks.
        let g = toy::graph();
        let mut pc = PrimeComputer::new(8);
        let sub = pc.extract(&g, &toy_hubs(), toy::A, &Config::default());
        assert_eq!(sub.source, toy::A);
        assert!(!sub.source_is_hub);
        let interior: Vec<NodeId> = sub.nodes[..sub.num_interior].to_vec();
        assert!(interior.contains(&toy::A));
        assert!(interior.contains(&toy::H));
        assert!(interior.contains(&toy::C)); // c interior (self-loop variant)
        assert!(!interior.contains(&toy::B));
        assert!(!interior.contains(&toy::D));
        assert!(!interior.contains(&toy::F));
        // b, d, f appear as absorbers.
        let absorbers: Vec<NodeId> = sub.nodes[sub.num_interior..].to_vec();
        for h in toy::PAPER_HUBS {
            assert!(absorbers.contains(&h), "hub {h} must be a border");
        }
    }

    #[test]
    fn prime_ppv_matches_naive_t0_partition() {
        let g = toy::graph();
        let hubs = toy_hubs();
        let config = Config::exhaustive();
        let mut pc = PrimeComputer::new(8);
        let (ppv, _) = pc.prime_ppv(&g, &hubs, toy::A, &config, 0.0);
        let parts = partition_by_hub_length(&g, toy::A, hubs.mask(), 0.15, 1e-13);
        // T0 mass per endpoint == prime PPV + trivial tour at the source.
        for v in g.nodes() {
            let mut expected = parts[0][v as usize];
            if v == toy::A {
                expected -= 0.15; // trivial tour excluded from storage
            }
            assert!(
                (ppv.entries.get(v) - expected).abs() < 1e-7,
                "node {v}: got {} want {expected}",
                ppv.entries.get(v)
            );
        }
    }

    #[test]
    fn hub_source_absorbs_returns() {
        // 0 <-> 1 with 0 a hub: tours from 0 with hub length 0 are exactly
        // 0→1 (mass α(1-α)); the return 0→1→0 ends at the source with the
        // middle nodes hub-free — wait, the return ends AT the hub source:
        // endpoint excluded, so 0→1→0 is also T0 with mass α(1-α)².
        let g = from_edges(2, &[(0, 1), (1, 0)]);
        let hubs = HubSet::from_ids(2, vec![0]);
        let config = Config::exhaustive();
        let mut pc = PrimeComputer::new(2);
        let (ppv, _) = pc.prime_ppv(&g, &hubs, 0, &config, 0.0);
        let a = 0.15f64;
        // Entry at 1: tours 0→1, and nothing else hub-free (0→1→0→1 passes
        // through hub 0 in the middle).
        assert!((ppv.entries.get(1) - a * (1.0 - a)).abs() < 1e-12);
        // Entry at 0 (returns): 0→1→0 only.
        assert!((ppv.entries.get(0) - a * (1.0 - a) * (1.0 - a)).abs() < 1e-12);
    }

    #[test]
    fn non_hub_source_repropagates_returns() {
        // 0 <-> 1, no hubs: prime PPV covers everything; entries (minus the
        // trivial tour) must match the exact PPV.
        let g = from_edges(2, &[(0, 1), (1, 0)]);
        let hubs = HubSet::empty(2);
        let config = Config::exhaustive();
        let mut pc = PrimeComputer::new(2);
        let (ppv, _) = pc.prime_ppv(&g, &hubs, 0, &config, 0.0);
        let exact = fastppv_baselines::exact_ppv(&g, 0, fastppv_baselines::ExactOptions::default());
        assert!((ppv.entries.get(0) - (exact[0] - 0.15)).abs() < 1e-9);
        assert!((ppv.entries.get(1) - exact[1]).abs() < 1e-9);
    }

    #[test]
    fn epsilon_prunes_subgraph() {
        let g = barabasi_albert(500, 3, 1);
        let hubs = HubSet::empty(500);
        let mut pc = PrimeComputer::new(500);
        let deep = pc.extract(&g, &hubs, 0, &Config::default().with_epsilon(1e-10));
        let shallow = pc.extract(&g, &hubs, 0, &Config::default().with_epsilon(1e-3));
        assert!(shallow.num_interior < deep.num_interior);
        assert!(shallow.num_nodes() <= deep.num_nodes());
    }

    #[test]
    fn more_hubs_shrink_subgraphs() {
        let g = barabasi_albert(500, 3, 1);
        let mut pc = PrimeComputer::new(500);
        let none = pc.extract(&g, &HubSet::empty(500), 3, &Config::default());
        let some = pc.extract(
            &g,
            &crate::hubs::select_hubs(&g, crate::hubs::HubPolicy::ExpectedUtility, 50, 0),
            3,
            &Config::default(),
        );
        assert!(some.num_interior < none.num_interior);
    }

    #[test]
    fn clip_drops_small_entries() {
        let g = barabasi_albert(300, 3, 5);
        let hubs = crate::hubs::select_hubs(&g, crate::hubs::HubPolicy::ExpectedUtility, 20, 0);
        let mut pc = PrimeComputer::new(300);
        let (unclipped, _) = pc.prime_ppv(&g, &hubs, 0, &Config::default(), 0.0);
        let (clipped, _) = pc.prime_ppv(&g, &hubs, 0, &Config::default(), 1e-3);
        assert!(clipped.entries.len() < unclipped.entries.len());
        assert!(clipped.entries.entries().iter().all(|&(_, s)| s >= 1e-3));
    }

    #[test]
    fn workspace_reuse_is_clean() {
        // Two different extractions from the same computer must not leak
        // state into each other.
        let g = toy::graph();
        let hubs = toy_hubs();
        let config = Config::default();
        let mut pc = PrimeComputer::new(8);
        let first = pc.extract(&g, &hubs, toy::A, &config);
        let _second = pc.extract(&g, &hubs, toy::G, &config);
        let third = pc.extract(&g, &hubs, toy::A, &config);
        assert_eq!(first.nodes, third.nodes);
        assert_eq!(first.adj_targets, third.adj_targets);
        assert_eq!(first.num_interior, third.num_interior);
    }

    #[test]
    fn solve_scratch_reuse_is_clean() {
        // The solve scratch (absorbed / in_queue / queue) now lives in the
        // computer; interleaved solves of different subgraphs must not
        // contaminate each other.
        let g = barabasi_albert(300, 3, 5);
        let hubs = crate::hubs::select_hubs(&g, crate::hubs::HubPolicy::ExpectedUtility, 20, 0);
        let config = Config::default();
        let mut pc = PrimeComputer::new(300);
        let sub_a = pc.extract(&g, &hubs, 0, &config);
        let sub_b = pc.extract(&g, &hubs, 7, &config);
        let first_a = pc.solve(&sub_a, &config, 0.0);
        let _b = pc.solve(&sub_b, &config, 0.0);
        let again_a = pc.solve(&sub_a, &config, 0.0);
        assert_eq!(first_a, again_a);
    }

    #[test]
    fn dangling_interior_node_is_handled() {
        let g = toy::graph_raw(); // c, e dangling
        let hubs = toy_hubs();
        let mut pc = PrimeComputer::new(8);
        let (ppv, _) = pc.prime_ppv(&g, &hubs, toy::A, &Config::exhaustive(), 0.0);
        // c is interior (non-hub, reachable) with out-degree 0.
        assert!(ppv.entries.get(toy::C) > 0.0);
    }
}
