//! Prime subgraphs and prime PPVs (paper §4.2, Def. 2).
//!
//! The *prime subgraph* `G'(v)` of a node `v` contains everything reachable
//! from `v` through hub-free tours whose walk probability stays above `ε`,
//! plus the *border hubs* and sub-`ε` frontier nodes those tours run into
//! (kept as absorbing sinks). The *prime PPV* `r̂⁰_v` aggregates the
//! reachability of those tours per endpoint.
//!
//! ## Faithfulness notes
//!
//! * The paper describes the extraction as a DFS that backtracks at hubs and
//!   at nodes with reachability `< ε`. On cyclic graphs a per-path DFS does
//!   not terminate; the node set it defines is exactly
//!   `{u : max hub-free walk probability v ⇝ u ≥ ε}`, which we compute with
//!   a best-first search (walk probability is monotonically decreasing
//!   along a path, so best-first expansion is correct and each node is
//!   expanded once).
//! * Stored prime PPVs exclude the *trivial tour* mass `α` at the source:
//!   Theorems 3–4 assemble tours from **non-empty** hub-free segments (a
//!   transfer at a hub requires actually arriving there), so the empty tour
//!   must not participate in assembly. The online engine adds `α·e_q` back
//!   when it forms the estimate. This also makes a hub's *own* entry (mass
//!   returned to a hub source by cycles) a legitimate expansion coefficient.
//! * Mass arriving at a **hub** source is absorbed rather than re-propagated
//!   (the second visit is an interior hub occurrence, i.e. hub length ≥ 1);
//!   mass arriving at a non-hub source re-propagates.
//!
//! ## The kernel, anatomically
//!
//! This module is the one hot kernel both phases share: the offline build
//! runs it once per hub, the online engine once per cold non-hub query. It
//! is organized for throughput and tail latency:
//!
//! 1. **Extraction** runs a max-probability search whose priority queue is
//!    a monotone [`BucketQueue`] over quantized log-probabilities — O(1)
//!    push/pop with no float comparator — iterating the graph's CSR arrays
//!    directly ([`fastppv_graph::CsrView`]) on the in-memory path instead
//!    of the dynamic-dispatch [`AdjacencyAccess`] indirection (which
//!    remains available for disk-resident graphs).
//! 2. **Renumbering**: interior nodes get local ids ordered by descending
//!    global out-degree (source first, ties by node id). High-degree nodes
//!    are the ones every other row's target list points at, so packing
//!    them into the low local ids keeps the solve's dense `mass` array
//!    traffic inside a few cache lines — and puts the subgraph's own core
//!    at the front of every sweep. The local CSR is *class-split*: each
//!    node's interior targets and sink targets (absorbers, plus a hub
//!    source's return slot) live in separate, per-node-sorted arrays, so
//!    the solve's inner loops are branch-free.
//! 3. **Solve** runs threshold-gated Gauss–Seidel sweeps in ascending
//!    local-id order: each pass settles every residual above
//!    `solve_tolerance` and re-propagates mass forward within the same
//!    pass, until a pass settles nothing — the same
//!    `tolerance × |interior|` leftover guarantee as a worklist push, in a
//!    fraction of the edge-visits.
//!
//! The three stages share one reusable arena inside [`PrimeComputer`]:
//! after warmup, [`PrimeComputer::prime_ppv_into`] — the *fused* one-shot
//! path — extracts, solves, and emits the sorted entry list without a
//! single heap allocation (the materializing [`PrimeComputer::extract`] /
//! [`PrimeComputer::solve`] pair still exists for callers that keep the
//! [`PrimeSubgraph`] around, and is pinned bit-for-bit equal to the fused
//! path by the kernel-equivalence tests).
//!
//! ## Why quantized priorities preserve determinism
//!
//! Bucketing pops nodes in quantized-priority order, not exact priority
//! order — but everything downstream depends only on quantities that are
//! *pop-order independent*: the interior node **set** (`{u : best(u) ≥ ε}`,
//! a fixed point of max-relaxation), the per-node **best probabilities**
//! (maxima of per-path products, each evaluated left-to-right), and the
//! local numbering (sorted by degree/id, not by discovery). The bucket
//! width is chosen ≤ `log2(1/(1-α))` — one random-walk step always decays
//! probability past at least one full bucket — so a popped node's best is
//! final, exactly as in an exact-priority search; even if a coarser width
//! is ever in effect (α < 1/65), the queue re-expands improved nodes and
//! converges to the same maxima. Two runs of any kernel entry point over
//! equal inputs are therefore bit-identical, which is what lets the
//! offline build merge worker output in hub order and stay byte-identical
//! to a serial build.

use fastppv_graph::{CsrView, Graph, NodeId, SparseVector};

use crate::config::Config;
use crate::hubs::HubSet;
use crate::index::PrimePpv;

/// Abstract adjacency access, so extraction can run against a disk-resident
/// clustered graph (`fastppv-cluster`), where every probe may trigger a
/// cluster load. Methods take `&mut self` for exactly that reason; plain
/// in-memory graphs get the zero-indirection CSR path instead and only
/// implement this trait for API uniformity.
pub trait AdjacencyAccess {
    /// Number of nodes in the underlying graph.
    fn num_nodes(&self) -> usize;

    /// Out-degree of `v`.
    fn out_degree(&mut self, v: NodeId) -> usize;

    /// Calls `f` for every out-neighbor of `v` (with multiplicity).
    fn visit_out_neighbors(&mut self, v: NodeId, f: &mut dyn FnMut(NodeId));
}

impl AdjacencyAccess for &Graph {
    fn num_nodes(&self) -> usize {
        Graph::num_nodes(self)
    }

    fn out_degree(&mut self, v: NodeId) -> usize {
        Graph::out_degree(self, v)
    }

    fn visit_out_neighbors(&mut self, v: NodeId, f: &mut dyn FnMut(NodeId)) {
        for &t in Graph::out_neighbors(self, v) {
            f(t);
        }
    }
}

/// Mutable references delegate, so call sites hand a `&mut DiskGraph` (or
/// any other access) straight to the generic kernel entry points without
/// re-borrowing contortions.
impl<A: AdjacencyAccess + ?Sized> AdjacencyAccess for &mut A {
    fn num_nodes(&self) -> usize {
        (**self).num_nodes()
    }

    fn out_degree(&mut self, v: NodeId) -> usize {
        (**self).out_degree(v)
    }

    fn visit_out_neighbors(&mut self, v: NodeId, f: &mut dyn FnMut(NodeId)) {
        (**self).visit_out_neighbors(v, f)
    }
}

/// Internal neighbor source the extraction is generic over: unlike
/// [`AdjacencyAccess`], `visit` takes a monomorphized closure, so the CSR
/// implementation compiles down to a plain slice loop.
trait NbrSource {
    fn degree(&mut self, v: NodeId) -> usize;
    fn visit<F: FnMut(NodeId)>(&mut self, v: NodeId, f: F);
}

/// The in-memory fast path: direct CSR slice iteration.
struct CsrSource<'a>(CsrView<'a>);

impl NbrSource for CsrSource<'_> {
    #[inline]
    fn degree(&mut self, v: NodeId) -> usize {
        self.0.out_degree(v)
    }

    #[inline]
    fn visit<F: FnMut(NodeId)>(&mut self, v: NodeId, mut f: F) {
        for &t in self.0.out_neighbors(v) {
            f(t);
        }
    }
}

/// Bridge from the dynamic-dispatch trait (disk-resident graphs).
struct DynSource<A>(A);

impl<A: AdjacencyAccess> NbrSource for DynSource<A> {
    fn degree(&mut self, v: NodeId) -> usize {
        self.0.out_degree(v)
    }

    fn visit<F: FnMut(NodeId)>(&mut self, v: NodeId, mut f: F) {
        self.0.visit_out_neighbors(v, &mut f)
    }
}

/// A monotone bucket queue over walk probabilities in `(0, 1]`, keyed on a
/// quantized log-probability: O(1) push and pop, no float comparisons.
///
/// ## Priority quantization
///
/// The bucket index of a probability `p` is derived from the raw IEEE-754
/// bits: `key(p) = key_base - (p.to_bits() >> (52 - k))`. The shifted bit
/// pattern keeps the sign (0), the exponent, and the top `k` mantissa bits,
/// and — for positive finite floats — is monotone in `p`, so `key` is
/// monotone *decreasing* in `p` and splits every octave `[2^e, 2^{e+1})`
/// into `2^k` linear sub-buckets. The widest sub-bucket spans
/// `log2(1 + 2^-k)` in log-probability; picking the smallest `k` with
/// `2^k ≥ (1-α)/α` makes that width at most `log2(1/(1-α))`, the decay of
/// a single degree-1 random-walk step. One relaxation therefore always
/// moves at least one bucket forward: the queue is *monotone* (drained
/// buckets never refill), pops are exact despite quantization, and the
/// entire priority structure uses integer ops only — fully deterministic
/// across platforms.
///
/// `k` is clamped to 6; below α = 1/65 the monotone guarantee lapses, and
/// the queue compensates by re-expanding a node whenever its best
/// probability improves after a pop (see [`PrimeComputer`]'s search loop),
/// which preserves exactness at the cost of occasional duplicate pops.
#[derive(Debug, Default)]
pub struct BucketQueue {
    buckets: Vec<Vec<(f64, NodeId)>>,
    cursor: usize,
    high: usize,
    len: usize,
    shift: u32,
    key_base: u64,
}

impl BucketQueue {
    /// An empty queue (call [`BucketQueue::configure`] before use).
    pub fn new() -> Self {
        BucketQueue::default()
    }

    /// Resets the queue and derives the quantization width from `alpha`
    /// (see the type docs). Bucket storage is retained across calls.
    pub fn configure(&mut self, alpha: f64) {
        debug_assert!(self.len == 0, "configure on a non-empty queue");
        let mut k = 0u32;
        while k < 6 && ((1u64 << k) as f64) * alpha < 1.0 - alpha {
            k += 1;
        }
        self.shift = 52 - k;
        self.key_base = 1.0f64.to_bits() >> self.shift;
        self.cursor = 0;
        self.high = 0;
    }

    #[inline]
    fn key(&self, p: f64) -> usize {
        debug_assert!(p > 0.0 && p <= 1.0);
        (self.key_base - (p.to_bits() >> self.shift)) as usize
    }

    /// Enqueues `v` at probability `p ∈ (0, 1]`.
    #[inline]
    pub fn push(&mut self, p: f64, v: NodeId) {
        // Monotonicity bounds keys below by the drain cursor; clamping is a
        // release-mode safety net that keeps late entries poppable.
        let key = self.key(p).max(self.cursor);
        if key >= self.buckets.len() {
            self.buckets.resize_with(key + 1, Vec::new);
        }
        self.buckets[key].push((p, v));
        self.high = self.high.max(key);
        self.len += 1;
    }

    /// Pops an entry from the lowest non-empty bucket (within a bucket,
    /// LIFO — deterministic, since insertion order is).
    #[inline]
    pub fn pop(&mut self) -> Option<(f64, NodeId)> {
        if self.len == 0 {
            // Also covers a configured-but-never-pushed queue, where no
            // bucket storage exists yet.
            return None;
        }
        while self.cursor <= self.high {
            if let Some(entry) = self.buckets[self.cursor].pop() {
                self.len -= 1;
                return Some(entry);
            }
            self.cursor += 1;
        }
        None
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops all entries (bucket capacities are retained).
    pub fn clear(&mut self) {
        for bucket in self.buckets.iter_mut().take(self.high + 1) {
            bucket.clear();
        }
        self.cursor = 0;
        self.high = 0;
        self.len = 0;
    }
}

/// The extracted prime subgraph of a source node, in local-id form.
///
/// Local ids `0..num_interior` are *interior* (propagating) nodes — the
/// source first, then descending global out-degree (ties by node id, the
/// cache-locality numbering the solve runs over); ids
/// `num_interior..nodes.len()` are absorbers (border hubs and sub-`ε`
/// frontier nodes).
///
/// Each interior node's out-edges are stored **split by target class** and
/// sorted ascending within the class:
///
/// * [`PrimeSubgraph::interior_targets`] — interior locals, the solve's
///   scatter targets (ascending order turns the scatter into a forward
///   walk over the dense mass array);
/// * [`PrimeSubgraph::sink_targets`] — *sink* indices: when the source is
///   a hub, sink `0` is the source's own return-mass accumulator (the
///   second visit would be an interior hub occurrence, so it absorbs) and
///   absorber local `num_interior + k` is sink `k + 1`; for a non-hub
///   source, absorber local `num_interior + k` is sink `k`.
///
/// Splitting is exact, not a reordering trick: each target's accumulator
/// still receives its contributions in the same processing order, so the
/// solved values are independent of the within-list target order.
#[derive(Clone, Debug)]
pub struct PrimeSubgraph {
    /// The source node (global id).
    pub source: NodeId,
    /// Local-to-global node map.
    pub nodes: Vec<NodeId>,
    /// Number of interior (propagating) nodes; the rest absorb.
    pub num_interior: usize,
    /// CSR offsets over interior locals into `int_targets`
    /// (`num_interior + 1` entries).
    pub int_offsets: Vec<u32>,
    /// Interior-local targets, per-node ranges sorted ascending.
    pub int_targets: Vec<u32>,
    /// CSR offsets over interior locals into `sink_targets`
    /// (`num_interior + 1` entries).
    pub sink_offsets: Vec<u32>,
    /// Sink-index targets (see type docs), per-node ranges sorted
    /// ascending.
    pub sink_targets: Vec<u32>,
    /// Global out-degree of each interior local (propagation denominators —
    /// mass leaking to pruned out-neighbors is intentionally lost).
    pub out_degree: Vec<u32>,
    /// Whether the source is a hub (its returning mass then absorbs).
    pub source_is_hub: bool,
}

impl PrimeSubgraph {
    /// Total nodes (interior + absorbers).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of absorber nodes.
    pub fn num_absorbers(&self) -> usize {
        self.nodes.len() - self.num_interior
    }

    /// Number of sink accumulators (absorbers, plus the hub source's
    /// return slot).
    pub fn num_sinks(&self) -> usize {
        self.num_absorbers() + usize::from(self.source_is_hub)
    }

    /// Interior out-edges of interior local `u` (interior locals,
    /// ascending).
    pub fn interior_targets(&self, u: usize) -> &[u32] {
        &self.int_targets[self.int_offsets[u] as usize..self.int_offsets[u + 1] as usize]
    }

    /// Sink out-edges of interior local `u` (sink indices, ascending).
    pub fn sink_targets(&self, u: usize) -> &[u32] {
        &self.sink_targets[self.sink_offsets[u] as usize..self.sink_offsets[u + 1] as usize]
    }
}

/// Sweep scratch of the prime-PPV solve, reused across solves.
#[derive(Debug, Default)]
struct SolveScratch {
    mass: Vec<f64>,
    mass_next: Vec<f64>,
    absorbed: Vec<f64>,
}

impl SolveScratch {
    /// Solves the linear system over a split local CSR (see
    /// [`PrimeSubgraph`]) with threshold-gated Gauss–Seidel sweeps:
    /// ascending-local-id passes settle every residual above
    /// `solve_tolerance`, until a pass finds none. Because the numbering
    /// is degree-descending, a sweep pushes mass *forward* through the
    /// subgraph's own high-degree core in the same pass (mass sent to a
    /// higher local id is re-propagated within the sweep), so the residual
    /// tail decays in far fewer edge-visits than a FIFO worklist — and the
    /// per-edge work is a branch-free scatter into the dense `mass_next`
    /// array, walked in ascending order. The exit guarantee is unchanged:
    /// at most `tolerance × |interior|` mass is left unaccounted. On
    /// return `self.mass` holds interior visit mass and `self.absorbed`
    /// the per-sink mass (sink 0 is a hub source's returns).
    #[allow(clippy::too_many_arguments)]
    fn run(
        &mut self,
        int_offsets: &[u32],
        int_targets: &[u32],
        sink_offsets: &[u32],
        sink_targets: &[u32],
        out_degree: &[u32],
        num_interior: usize,
        num_sinks: usize,
        config: &Config,
    ) {
        let alpha = config.alpha;
        let ni = num_interior;
        let theta = config.solve_tolerance;
        // mass = settled visit mass m; mass_next = pending residual ρ.
        self.mass.clear();
        self.mass.resize(ni, 0.0);
        self.mass_next.clear();
        self.mass_next.resize(ni, 0.0);
        self.absorbed.clear();
        self.absorbed.resize(num_sinks, 0.0);
        self.mass_next[0] = 1.0;
        let max_settles = config
            .solve_max_iterations
            .saturating_mul(ni.max(1))
            .max(1_000);
        let mut settles = 0usize;
        loop {
            let mut settled_this_sweep = 0usize;
            for u in 0..ni {
                let r = self.mass_next[u];
                if r <= theta {
                    continue;
                }
                settled_this_sweep += 1;
                self.mass_next[u] = 0.0;
                self.mass[u] += r;
                let d = out_degree[u];
                if d == 0 {
                    continue;
                }
                let share = r * (1.0 - alpha) / d as f64;
                for &t in &int_targets[int_offsets[u] as usize..int_offsets[u + 1] as usize] {
                    self.mass_next[t as usize] += share;
                }
                for &t in &sink_targets[sink_offsets[u] as usize..sink_offsets[u + 1] as usize] {
                    self.absorbed[t as usize] += share;
                }
            }
            settles += settled_this_sweep;
            if settled_this_sweep == 0 || settles > max_settles {
                // Clean sweep: every residual ≤ θ — or the safety valve
                // tripped (residual left is reported via clip/φ).
                break;
            }
        }
    }
}

/// Gathers a solved system into `(global id, score)` entries sorted by id:
/// α × visit mass, trivial tour excluded at the source, clipped at `clip`.
fn emit_entries(
    out: &mut Vec<(NodeId, f64)>,
    solve: &SolveScratch,
    nodes: &[NodeId],
    num_interior: usize,
    source_is_hub: bool,
    alpha: f64,
    clip: f64,
) {
    out.clear();
    // A hub source's returning mass lives in sink 0; a non-hub source
    // re-propagates, so its own entry is visit mass minus the trivial tour.
    let (src_score, absorbers) = if source_is_hub {
        (alpha * solve.absorbed[0], &solve.absorbed[1..])
    } else {
        (alpha * (solve.mass[0] - 1.0), &solve.absorbed[..])
    };
    if src_score >= clip && src_score > 0.0 {
        out.push((nodes[0], src_score));
    }
    for (&v, &m) in nodes[1..num_interior]
        .iter()
        .zip(&solve.mass[1..num_interior])
    {
        let s = alpha * m;
        if s >= clip && s > 0.0 {
            out.push((v, s));
        }
    }
    for (i, &a) in absorbers.iter().enumerate() {
        let s = alpha * a;
        if s >= clip && s > 0.0 {
            out.push((nodes[num_interior + i], s));
        }
    }
    out.sort_unstable_by_key(|&(id, _)| id);
}

/// Reusable workspace for prime-subgraph extraction and prime-PPV solves.
///
/// Holds graph-sized search scratch, the renumbered local-CSR arena of the
/// last extraction, the solve scratch, and the emitted-entries buffer, so
/// repeated computations (one per hub offline; one per cold non-hub query
/// online) allocate nothing once warm — the fused
/// [`PrimeComputer::prime_ppv_into`] is fully allocation-free after the
/// buffers have grown to the workload's footprint.
pub struct PrimeComputer {
    // Graph-sized search scratch.
    best: Vec<f64>,
    local_of: Vec<u32>,
    touched: Vec<NodeId>,
    queue: BucketQueue,
    // The renumbered, class-split local CSR of the last extraction (the
    // arena).
    nodes: Vec<NodeId>,
    deg_order: Vec<(u32, NodeId)>,
    int_offsets: Vec<u32>,
    int_targets: Vec<u32>,
    sink_offsets: Vec<u32>,
    sink_targets: Vec<u32>,
    out_degree: Vec<u32>,
    num_interior: usize,
    source_is_hub: bool,
    // Solve scratch and the fused path's output buffer.
    solve: SolveScratch,
    entries: Vec<(NodeId, f64)>,
}

const NO_LOCAL: u32 = u32::MAX;

impl PrimeComputer {
    /// A workspace for graphs of `n` nodes.
    pub fn new(n: usize) -> Self {
        PrimeComputer {
            best: vec![0.0; n],
            local_of: vec![NO_LOCAL; n],
            touched: Vec::new(),
            queue: BucketQueue::new(),
            nodes: Vec::new(),
            deg_order: Vec::new(),
            int_offsets: Vec::new(),
            int_targets: Vec::new(),
            sink_offsets: Vec::new(),
            sink_targets: Vec::new(),
            out_degree: Vec::new(),
            num_interior: 0,
            source_is_hub: false,
            solve: SolveScratch::default(),
            entries: Vec::new(),
        }
    }

    /// Extracts `source`'s prime subgraph into the internal arena: bucket-
    /// queue best-first search, then degree-ordered renumbering and the
    /// local CSR build.
    fn extract_arena<Src: NbrSource>(
        &mut self,
        src: &mut Src,
        hubs: &HubSet,
        source: NodeId,
        config: &Config,
    ) {
        let alpha = config.alpha;
        let eps = config.epsilon;
        let PrimeComputer {
            best,
            local_of,
            touched,
            queue,
            nodes,
            deg_order,
            int_offsets,
            int_targets,
            sink_offsets,
            sink_targets,
            out_degree,
            num_interior,
            source_is_hub,
            ..
        } = self;
        debug_assert!(queue.is_empty());
        debug_assert!(touched.is_empty());

        // Phase 1: monotone bucket-queue search over walk probability.
        // Interior = every node reached with probability ≥ ε (hubs are
        // never enqueued; they are collected as absorbers in phase 2, as is
        // a hub source re-encountered). A popped entry whose probability no
        // longer matches `best` is stale; a node improved after its pop
        // (possible only below the monotone-width α threshold) re-enqueues
        // itself on the improvement, so `best` always converges to the
        // exact per-node maximum.
        best[source as usize] = 1.0;
        touched.push(source);
        queue.configure(alpha);
        queue.push(1.0, source);
        while let Some((p, v)) = queue.pop() {
            if p != best[v as usize] {
                continue; // stale entry
            }
            let d = src.degree(v);
            if d == 0 {
                continue;
            }
            let w = p * (1.0 - alpha) / d as f64;
            if w < eps {
                continue;
            }
            src.visit(v, |t| {
                if hubs.is_hub(t) {
                    return;
                }
                let b = &mut best[t as usize];
                if w > *b {
                    if *b == 0.0 {
                        touched.push(t);
                    }
                    *b = w;
                    queue.push(w, t);
                }
            });
        }

        // Phase 2: renumber interior nodes — source first, then descending
        // global out-degree (ties by id; a deterministic order independent
        // of pop order) — and build the class-split local CSR over the new
        // numbering: interior targets and sink targets in separate arrays,
        // each per-node range sorted ascending (the solve's scatter then
        // walks the dense mass array forward). Absorbers get locals after
        // the interior block as they are discovered; a hub source's
        // returning mass is routed to the reserved sink 0.
        debug_assert_eq!(touched[0], source);
        let src_hub = hubs.is_hub(source);
        let sink_base = u32::from(src_hub);
        deg_order.clear();
        for &v in touched[1..].iter() {
            deg_order.push((src.degree(v) as u32, v));
        }
        deg_order.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        nodes.clear();
        nodes.push(source);
        nodes.extend(deg_order.iter().map(|&(_, v)| v));
        let ni = nodes.len();
        for (i, &v) in nodes.iter().enumerate() {
            local_of[v as usize] = i as u32;
        }
        out_degree.clear();
        out_degree.push(src.degree(source) as u32);
        out_degree.extend(deg_order.iter().map(|&(d, _)| d));
        int_offsets.clear();
        int_offsets.push(0);
        int_targets.clear();
        sink_offsets.clear();
        sink_offsets.push(0);
        sink_targets.clear();
        for u in 0..ni {
            let v = nodes[u];
            let int_start = int_targets.len();
            let sink_start = sink_targets.len();
            src.visit(v, |t| {
                if src_hub && t == source {
                    sink_targets.push(0);
                    return;
                }
                let slot = &mut local_of[t as usize];
                if *slot == NO_LOCAL {
                    *slot = nodes.len() as u32;
                    nodes.push(t);
                    touched.push(t);
                }
                let l = *slot;
                if (l as usize) < ni {
                    int_targets.push(l);
                } else {
                    sink_targets.push(l - ni as u32 + sink_base);
                }
            });
            int_targets[int_start..].sort_unstable();
            sink_targets[sink_start..].sort_unstable();
            int_offsets.push(int_targets.len() as u32);
            sink_offsets.push(sink_targets.len() as u32);
        }
        *num_interior = ni;
        *source_is_hub = src_hub;

        // Reset graph-sized scratch.
        for &v in touched.iter() {
            best[v as usize] = 0.0;
            local_of[v as usize] = NO_LOCAL;
        }
        touched.clear();
    }

    /// Copies the arena out into an owned [`PrimeSubgraph`].
    fn materialize_subgraph(&self, source: NodeId) -> PrimeSubgraph {
        PrimeSubgraph {
            source,
            nodes: self.nodes.clone(),
            num_interior: self.num_interior,
            int_offsets: self.int_offsets.clone(),
            int_targets: self.int_targets.clone(),
            sink_offsets: self.sink_offsets.clone(),
            sink_targets: self.sink_targets.clone(),
            out_degree: self.out_degree.clone(),
            source_is_hub: self.source_is_hub,
        }
    }

    /// Solves over the internal arena, leaving sorted clipped entries in
    /// `self.entries`.
    fn solve_arena(&mut self, config: &Config, clip: f64) {
        let PrimeComputer {
            nodes,
            int_offsets,
            int_targets,
            sink_offsets,
            sink_targets,
            out_degree,
            num_interior,
            source_is_hub,
            solve,
            entries,
            ..
        } = self;
        let num_sinks = nodes.len() - *num_interior + usize::from(*source_is_hub);
        solve.run(
            int_offsets,
            int_targets,
            sink_offsets,
            sink_targets,
            out_degree,
            *num_interior,
            num_sinks,
            config,
        );
        emit_entries(
            entries,
            solve,
            nodes,
            *num_interior,
            *source_is_hub,
            config.alpha,
            clip,
        );
    }

    /// Extracts the prime subgraph of `source` (paper §5.1): best-first
    /// expansion of hub-free walks, pruned below `config.epsilon`.
    pub fn extract(
        &mut self,
        graph: &Graph,
        hubs: &HubSet,
        source: NodeId,
        config: &Config,
    ) -> PrimeSubgraph {
        self.extract_arena(&mut CsrSource(graph.out_csr()), hubs, source, config);
        self.materialize_subgraph(source)
    }

    /// Like [`PrimeComputer::extract`], over any [`AdjacencyAccess`] (pass
    /// `&mut access` for by-reference use).
    pub fn extract_from<A: AdjacencyAccess>(
        &mut self,
        graph: A,
        hubs: &HubSet,
        source: NodeId,
        config: &Config,
    ) -> PrimeSubgraph {
        self.extract_arena(&mut DynSource(graph), hubs, source, config);
        self.materialize_subgraph(source)
    }

    /// Solves for the prime PPV of `sub.source` over the subgraph
    /// (threshold-gated Gauss–Seidel sweeps, see [`SolveScratch::run`]).
    /// Returns the **trivial-tour-excluded** reachabilities `r̊⁰` (see
    /// module docs), clipped at `clip`.
    pub fn solve(&mut self, sub: &PrimeSubgraph, config: &Config, clip: f64) -> PrimePpv {
        self.solve.run(
            &sub.int_offsets,
            &sub.int_targets,
            &sub.sink_offsets,
            &sub.sink_targets,
            &sub.out_degree,
            sub.num_interior,
            sub.num_sinks(),
            config,
        );
        emit_entries(
            &mut self.entries,
            &self.solve,
            &sub.nodes,
            sub.num_interior,
            sub.source_is_hub,
            config.alpha,
            clip,
        );
        PrimePpv {
            entries: SparseVector::from_sorted(self.entries.clone()),
        }
    }

    /// Convenience: extract + solve in one call (fused internally — no
    /// [`PrimeSubgraph`] is materialized). Returns the PPV and the prime
    /// subgraph's node count.
    pub fn prime_ppv(
        &mut self,
        graph: &Graph,
        hubs: &HubSet,
        source: NodeId,
        config: &Config,
        clip: f64,
    ) -> (PrimePpv, usize) {
        let (entries, size) = self.prime_ppv_into(graph, hubs, source, config, clip);
        let entries = entries.to_vec();
        (
            PrimePpv {
                entries: SparseVector::from_sorted(entries),
            },
            size,
        )
    }

    /// Like [`PrimeComputer::prime_ppv`], over any [`AdjacencyAccess`]
    /// (pass `&mut access` for by-reference use).
    pub fn prime_ppv_from<A: AdjacencyAccess>(
        &mut self,
        graph: A,
        hubs: &HubSet,
        source: NodeId,
        config: &Config,
        clip: f64,
    ) -> (PrimePpv, usize) {
        self.extract_arena(&mut DynSource(graph), hubs, source, config);
        self.solve_arena(config, clip);
        let size = self.nodes.len();
        (
            PrimePpv {
                entries: SparseVector::from_sorted(self.entries.clone()),
            },
            size,
        )
    }

    /// The fused one-shot path: extract + solve entirely inside the reused
    /// arena and return the sorted, clipped entry list as a borrowed slice
    /// — **zero heap allocations** once the workspace is warm. This is
    /// what the online engine runs for cold non-hub queries; the slice is
    /// valid until the next call on this computer.
    pub fn prime_ppv_into(
        &mut self,
        graph: &Graph,
        hubs: &HubSet,
        source: NodeId,
        config: &Config,
        clip: f64,
    ) -> (&[(NodeId, f64)], usize) {
        self.extract_arena(&mut CsrSource(graph.out_csr()), hubs, source, config);
        self.solve_arena(config, clip);
        (&self.entries, self.nodes.len())
    }
}

/// What a [`DeltaPush::run`] left behind.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeltaOutcome {
    /// Σ|residual| (mass units) never settled — sub-threshold crumbs plus
    /// anything abandoned by the safety valve. Because one unit of residual
    /// mass can contribute at most one unit of score-L1 after α-scaling
    /// (the geometric series `α · Σ (1-α)^i = 1`), this is a sound bound on
    /// the score-L1 the patch fails to account for.
    pub leftover: f64,
    /// Node settles performed.
    pub settles: usize,
    /// Whether the settle safety valve tripped (the leftover still bounds
    /// the abandoned mass, so the patch remains certified).
    pub truncated: bool,
}

/// Signed-residual forward push over the full graph with hub absorption —
/// the delta counterpart of the [`SolveScratch`] sweeps, used by
/// [`crate::dynamic`] to patch a stored prime PPV after an edge change
/// instead of re-extracting and re-solving its subgraph.
///
/// The solve maintains `ρ = e_s + (1-α)/d · Pᵀm − m` ≡ 0 over settled mass
/// `m` and residual `ρ`. Changing the out-row of a tail `u` perturbs only
/// `Pᵀ`'s column block for `u`, so the invariant is restored by injecting
/// `m(u) · (w_new − w_old)` at `u`'s old and new targets and pushing the
/// signed residual forward: non-hub nodes re-propagate, hubs (including
/// the source hub — its returns absorb) and dangling nodes do not. Every
/// settle deposits `α·r` into the node's score delta, exactly like the
/// forward solve; what is never settled is returned as
/// [`DeltaOutcome::leftover`] and charged against the error budget.
#[derive(Debug, Default)]
pub struct DeltaPush {
    residual: Vec<f64>,
    deposit: Vec<f64>,
    in_queue: Vec<bool>,
    queue: std::collections::VecDeque<NodeId>,
    touched: Vec<NodeId>,
}

impl DeltaPush {
    /// A push scratch for graphs of `n` nodes.
    pub fn new(n: usize) -> Self {
        DeltaPush {
            residual: vec![0.0; n],
            deposit: vec![0.0; n],
            in_queue: vec![false; n],
            queue: std::collections::VecDeque::new(),
            touched: Vec::new(),
        }
    }

    /// Number of node slots.
    pub fn capacity(&self) -> usize {
        self.residual.len()
    }

    /// Accumulates signed residual mass at `v` (call before
    /// [`DeltaPush::run`]; repeated injections at one node sum).
    #[inline]
    pub fn inject(&mut self, v: NodeId, mass: f64) {
        if mass == 0.0 {
            return;
        }
        let slot = &mut self.residual[v as usize];
        if *slot == 0.0 && self.deposit[v as usize] == 0.0 && !self.in_queue[v as usize] {
            self.touched.push(v);
        }
        *slot += mass;
    }

    /// Σ|injected residual| currently pending (mass units) — the a-priori
    /// bound on the score-L1 effect of the pending perturbation.
    pub fn pending_mass(&self) -> f64 {
        self.touched
            .iter()
            .map(|&v| self.residual[v as usize].abs())
            .sum()
    }

    /// Pushes every injected residual with `|r| ≥ threshold` through the
    /// non-hub nodes of `graph` (hubs and dangling nodes absorb), FIFO
    /// worklist. Deposits accumulate per node; collect them with
    /// [`DeltaPush::drain_deposits`].
    pub fn run(
        &mut self,
        graph: &Graph,
        hubs: &HubSet,
        alpha: f64,
        threshold: f64,
        max_settles: usize,
    ) -> DeltaOutcome {
        debug_assert!(self.capacity() >= graph.num_nodes());
        debug_assert!(threshold > 0.0);
        for i in 0..self.touched.len() {
            let v = self.touched[i];
            if self.residual[v as usize].abs() >= threshold && !self.in_queue[v as usize] {
                self.in_queue[v as usize] = true;
                self.queue.push_back(v);
            }
        }
        let mut settles = 0usize;
        let mut truncated = false;
        while let Some(x) = self.queue.pop_front() {
            self.in_queue[x as usize] = false;
            let r = self.residual[x as usize];
            if r == 0.0 {
                continue;
            }
            if settles >= max_settles {
                // Safety valve: leave the rest as residual (it is counted
                // into the leftover below, so the bound still holds).
                truncated = true;
                break;
            }
            settles += 1;
            self.residual[x as usize] = 0.0;
            self.deposit[x as usize] += alpha * r;
            if hubs.is_hub(x) {
                continue; // absorbed (source returns land here too)
            }
            let d = graph.out_degree(x);
            if d == 0 {
                continue;
            }
            let share = r * (1.0 - alpha) / d as f64;
            for &t in graph.out_neighbors(x) {
                let slot = &mut self.residual[t as usize];
                if *slot == 0.0 && self.deposit[t as usize] == 0.0 && !self.in_queue[t as usize] {
                    self.touched.push(t);
                }
                *slot += share;
                if slot.abs() >= threshold && !self.in_queue[t as usize] {
                    self.in_queue[t as usize] = true;
                    self.queue.push_back(t);
                }
            }
        }
        let leftover = self
            .touched
            .iter()
            .map(|&v| self.residual[v as usize].abs())
            .sum();
        DeltaOutcome {
            leftover,
            settles,
            truncated,
        }
    }

    /// Emits the accumulated score deltas `(id, α·settled)` sorted by node
    /// id into `out` (cleared first) and resets the scratch for reuse.
    pub fn drain_deposits(&mut self, out: &mut Vec<(NodeId, f64)>) {
        out.clear();
        self.touched.sort_unstable();
        for &v in &self.touched {
            let d = self.deposit[v as usize];
            self.deposit[v as usize] = 0.0;
            self.residual[v as usize] = 0.0;
            self.in_queue[v as usize] = false;
            if d != 0.0 {
                out.push((v, d));
            }
        }
        self.touched.clear();
        self.queue.clear();
    }

    /// Discards pending residuals and deposits (the recompute fallback
    /// path) and resets the scratch for reuse.
    pub fn reset(&mut self) {
        for &v in &self.touched {
            self.deposit[v as usize] = 0.0;
            self.residual[v as usize] = 0.0;
            self.in_queue[v as usize] = false;
        }
        self.touched.clear();
        self.queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastppv_baselines::naive::partition_by_hub_length;
    use fastppv_graph::builder::from_edges;
    use fastppv_graph::gen::barabasi_albert;
    use fastppv_graph::toy;

    fn toy_hubs() -> HubSet {
        HubSet::from_ids(8, toy::PAPER_HUBS.to_vec())
    }

    #[test]
    fn bucket_queue_pops_in_nonincreasing_probability_order() {
        let mut q = BucketQueue::new();
        q.configure(0.15);
        let probs = [0.9, 0.001, 0.5, 0.25, 1.0, 3e-7, 0.125, 0.06];
        for (i, &p) in probs.iter().enumerate() {
            q.push(p, i as NodeId);
        }
        assert_eq!(q.len(), probs.len());
        let mut last = f64::INFINITY;
        let mut popped = 0;
        while let Some((p, _)) = q.pop() {
            // Quantized order: p may only drop below the previous bucket's
            // floor, never rise above the previous value's bucket. With
            // these widely spaced probabilities order is strict.
            assert!(p <= last, "popped {p} after {last}");
            last = p;
            popped += 1;
        }
        assert_eq!(popped, probs.len());
        assert!(q.is_empty());
    }

    #[test]
    fn bucket_queue_one_step_decay_moves_at_least_one_bucket() {
        // The monotone guarantee: for α = 0.15, p and p·(1-α)/d must never
        // share a bucket (d ≥ 1), across many magnitudes.
        let mut q = BucketQueue::new();
        q.configure(0.15);
        let mut p = 1.0f64;
        while p > 1e-12 {
            let w = p * 0.85;
            assert!(q.key(w) > q.key(p), "p {p} and w {w} share a bucket");
            p = w;
        }
    }

    #[test]
    fn bucket_queue_clear_resets_between_uses() {
        let mut q = BucketQueue::new();
        q.clear(); // never-pushed queue: clear must be a no-op, not a panic
        q.configure(0.15);
        q.clear(); // configured-but-unpushed: same
        q.push(0.5, 1);
        q.push(0.25, 2);
        q.clear();
        assert!(q.is_empty());
        q.configure(0.15);
        q.push(1.0, 7);
        assert_eq!(q.pop(), Some((1.0, 7)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn extraction_on_toy_graph_matches_figure_3() {
        // G'(a): interior {a, h, g?}: tours from a avoiding hubs {b,d,f}:
        // a→c, a→h(→c); b, d, f are border hubs; c, e reachable sinks.
        let g = toy::graph();
        let mut pc = PrimeComputer::new(8);
        let sub = pc.extract(&g, &toy_hubs(), toy::A, &Config::default());
        assert_eq!(sub.source, toy::A);
        assert!(!sub.source_is_hub);
        let interior: Vec<NodeId> = sub.nodes[..sub.num_interior].to_vec();
        assert!(interior.contains(&toy::A));
        assert!(interior.contains(&toy::H));
        assert!(interior.contains(&toy::C)); // c interior (self-loop variant)
        assert!(!interior.contains(&toy::B));
        assert!(!interior.contains(&toy::D));
        assert!(!interior.contains(&toy::F));
        // b, d, f appear as absorbers.
        let absorbers: Vec<NodeId> = sub.nodes[sub.num_interior..].to_vec();
        for h in toy::PAPER_HUBS {
            assert!(absorbers.contains(&h), "hub {h} must be a border");
        }
    }

    #[test]
    fn interior_numbering_is_source_then_degree_descending() {
        let g = barabasi_albert(400, 3, 9);
        let hubs = crate::hubs::select_hubs(&g, crate::hubs::HubPolicy::ExpectedUtility, 30, 0);
        let q = (0..400u32).find(|&v| !hubs.is_hub(v)).unwrap();
        let mut pc = PrimeComputer::new(400);
        let sub = pc.extract(&g, &hubs, q, &Config::default());
        assert_eq!(sub.nodes[0], q);
        for w in sub.nodes[1..sub.num_interior].windows(2) {
            let (da, db) = (g.out_degree(w[0]), g.out_degree(w[1]));
            assert!(
                da > db || (da == db && w[0] < w[1]),
                "interior numbering must be degree-descending with id ties"
            );
        }
        // Stored denominators match the global degrees of the numbering.
        for (u, &v) in sub.nodes[..sub.num_interior].iter().enumerate() {
            assert_eq!(sub.out_degree[u] as usize, g.out_degree(v));
        }
    }

    #[test]
    fn fused_path_is_bit_identical_to_materialized_path() {
        let g = barabasi_albert(500, 3, 77);
        let hubs = crate::hubs::select_hubs(&g, crate::hubs::HubPolicy::ExpectedUtility, 40, 0);
        let config = Config::default().with_epsilon(1e-7);
        let mut pc = PrimeComputer::new(500);
        for q in [0u32, 17, 123, 499] {
            let sub = pc.extract(&g, &hubs, q, &config);
            let materialized = pc.solve(&sub, &config, config.clip);
            let (fused, size) = pc.prime_ppv(&g, &hubs, q, &config, config.clip);
            assert_eq!(size, sub.num_nodes(), "query {q}");
            assert_eq!(materialized, fused, "query {q}: fused must be exact");
            let (slice, _) = pc.prime_ppv_into(&g, &hubs, q, &config, config.clip);
            assert_eq!(slice, fused.entries.entries(), "query {q}");
        }
    }

    #[test]
    fn prime_ppv_matches_naive_t0_partition() {
        let g = toy::graph();
        let hubs = toy_hubs();
        let config = Config::exhaustive();
        let mut pc = PrimeComputer::new(8);
        let (ppv, _) = pc.prime_ppv(&g, &hubs, toy::A, &config, 0.0);
        let parts = partition_by_hub_length(&g, toy::A, hubs.mask(), 0.15, 1e-13);
        // T0 mass per endpoint == prime PPV + trivial tour at the source.
        for v in g.nodes() {
            let mut expected = parts[0][v as usize];
            if v == toy::A {
                expected -= 0.15; // trivial tour excluded from storage
            }
            assert!(
                (ppv.entries.get(v) - expected).abs() < 1e-7,
                "node {v}: got {} want {expected}",
                ppv.entries.get(v)
            );
        }
    }

    #[test]
    fn hub_source_absorbs_returns() {
        // 0 <-> 1 with 0 a hub: tours from 0 with hub length 0 are exactly
        // 0→1 (mass α(1-α)); the return 0→1→0 ends at the source with the
        // middle nodes hub-free — wait, the return ends AT the hub source:
        // endpoint excluded, so 0→1→0 is also T0 with mass α(1-α)².
        let g = from_edges(2, &[(0, 1), (1, 0)]);
        let hubs = HubSet::from_ids(2, vec![0]);
        let config = Config::exhaustive();
        let mut pc = PrimeComputer::new(2);
        let (ppv, _) = pc.prime_ppv(&g, &hubs, 0, &config, 0.0);
        let a = 0.15f64;
        // Entry at 1: tours 0→1, and nothing else hub-free (0→1→0→1 passes
        // through hub 0 in the middle).
        assert!((ppv.entries.get(1) - a * (1.0 - a)).abs() < 1e-12);
        // Entry at 0 (returns): 0→1→0 only.
        assert!((ppv.entries.get(0) - a * (1.0 - a) * (1.0 - a)).abs() < 1e-12);
    }

    #[test]
    fn non_hub_source_repropagates_returns() {
        // 0 <-> 1, no hubs: prime PPV covers everything; entries (minus the
        // trivial tour) must match the exact PPV.
        let g = from_edges(2, &[(0, 1), (1, 0)]);
        let hubs = HubSet::empty(2);
        let config = Config::exhaustive();
        let mut pc = PrimeComputer::new(2);
        let (ppv, _) = pc.prime_ppv(&g, &hubs, 0, &config, 0.0);
        let exact = fastppv_baselines::exact_ppv(&g, 0, fastppv_baselines::ExactOptions::default());
        assert!((ppv.entries.get(0) - (exact[0] - 0.15)).abs() < 1e-9);
        assert!((ppv.entries.get(1) - exact[1]).abs() < 1e-9);
    }

    #[test]
    fn epsilon_prunes_subgraph() {
        let g = barabasi_albert(500, 3, 1);
        let hubs = HubSet::empty(500);
        let mut pc = PrimeComputer::new(500);
        let deep = pc.extract(&g, &hubs, 0, &Config::default().with_epsilon(1e-10));
        let shallow = pc.extract(&g, &hubs, 0, &Config::default().with_epsilon(1e-3));
        assert!(shallow.num_interior < deep.num_interior);
        assert!(shallow.num_nodes() <= deep.num_nodes());
    }

    #[test]
    fn more_hubs_shrink_subgraphs() {
        let g = barabasi_albert(500, 3, 1);
        let mut pc = PrimeComputer::new(500);
        let none = pc.extract(&g, &HubSet::empty(500), 3, &Config::default());
        let some = pc.extract(
            &g,
            &crate::hubs::select_hubs(&g, crate::hubs::HubPolicy::ExpectedUtility, 50, 0),
            3,
            &Config::default(),
        );
        assert!(some.num_interior < none.num_interior);
    }

    #[test]
    fn clip_drops_small_entries() {
        let g = barabasi_albert(300, 3, 5);
        let hubs = crate::hubs::select_hubs(&g, crate::hubs::HubPolicy::ExpectedUtility, 20, 0);
        let mut pc = PrimeComputer::new(300);
        let (unclipped, _) = pc.prime_ppv(&g, &hubs, 0, &Config::default(), 0.0);
        let (clipped, _) = pc.prime_ppv(&g, &hubs, 0, &Config::default(), 1e-3);
        assert!(clipped.entries.len() < unclipped.entries.len());
        assert!(clipped.entries.entries().iter().all(|&(_, s)| s >= 1e-3));
    }

    #[test]
    fn workspace_reuse_is_clean() {
        // Two different extractions from the same computer must not leak
        // state into each other.
        let g = toy::graph();
        let hubs = toy_hubs();
        let config = Config::default();
        let mut pc = PrimeComputer::new(8);
        let first = pc.extract(&g, &hubs, toy::A, &config);
        let _second = pc.extract(&g, &hubs, toy::G, &config);
        let third = pc.extract(&g, &hubs, toy::A, &config);
        assert_eq!(first.nodes, third.nodes);
        assert_eq!(first.int_targets, third.int_targets);
        assert_eq!(first.sink_targets, third.sink_targets);
        assert_eq!(first.num_interior, third.num_interior);
    }

    #[test]
    fn solve_scratch_reuse_is_clean() {
        // The solve scratch lives in the computer; interleaved solves of
        // different subgraphs must not contaminate each other.
        let g = barabasi_albert(300, 3, 5);
        let hubs = crate::hubs::select_hubs(&g, crate::hubs::HubPolicy::ExpectedUtility, 20, 0);
        let config = Config::default();
        let mut pc = PrimeComputer::new(300);
        let sub_a = pc.extract(&g, &hubs, 0, &config);
        let sub_b = pc.extract(&g, &hubs, 7, &config);
        let first_a = pc.solve(&sub_a, &config, 0.0);
        let _b = pc.solve(&sub_b, &config, 0.0);
        let again_a = pc.solve(&sub_a, &config, 0.0);
        assert_eq!(first_a, again_a);
    }

    #[test]
    fn generic_access_path_matches_csr_path() {
        // The AdjacencyAccess path (disk-resident graphs) must agree with
        // the CSR fast path exactly: same arena, same numbering, same PPV.
        let g = barabasi_albert(300, 3, 41);
        let hubs = crate::hubs::select_hubs(&g, crate::hubs::HubPolicy::ExpectedUtility, 25, 0);
        let config = Config::default();
        let mut pc = PrimeComputer::new(300);
        for q in [0u32, 50, 123] {
            let fast = pc.extract(&g, &hubs, q, &config);
            let generic = pc.extract_from(&g, &hubs, q, &config);
            assert_eq!(fast.nodes, generic.nodes, "query {q}");
            assert_eq!(fast.int_targets, generic.int_targets, "query {q}");
            assert_eq!(fast.sink_targets, generic.sink_targets, "query {q}");
            let (fast_ppv, _) = pc.prime_ppv(&g, &hubs, q, &config, 0.0);
            let (generic_ppv, _) = pc.prime_ppv_from(&g, &hubs, q, &config, 0.0);
            assert_eq!(fast_ppv, generic_ppv, "query {q}");
        }
    }

    #[test]
    fn dangling_interior_node_is_handled() {
        let g = toy::graph_raw(); // c, e dangling
        let hubs = toy_hubs();
        let mut pc = PrimeComputer::new(8);
        let (ppv, _) = pc.prime_ppv(&g, &hubs, toy::A, &Config::exhaustive(), 0.0);
        // c is interior (non-hub, reachable) with out-degree 0.
        assert!(ppv.entries.get(toy::C) > 0.0);
    }
}
