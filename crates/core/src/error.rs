//! The exponential error bound (paper Theorem 2).
//!
//! After iteration `k`, the accuracy-aware L1 error satisfies
//! `φ(k) ≤ (1-α)^{k+2}`: hub length lower-bounds natural tour length, so the
//! first `k` partitions cover at least all tours of length `≤ k+1`, whose
//! total reachability telescopes to `1 − Σ_{i≤k+1} (1-α)^i α`.

/// The Theorem 2 bound `(1-α)^{k+2}` on the L1 error after iteration `k`.
pub fn l1_error_bound(alpha: f64, k: usize) -> f64 {
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
    (1.0 - alpha).powi(k as i32 + 2)
}

/// The smallest iteration count whose Theorem 2 bound is at most `target`.
///
/// Useful for turning an accuracy requirement into a worst-case `η` before
/// issuing a query.
pub fn min_iterations_for(alpha: f64, target: f64) -> usize {
    assert!(target > 0.0 && target < 1.0, "target must be in (0, 1)");
    let mut k = 0;
    while l1_error_bound(alpha, k) > target {
        k += 1;
        if k > 10_000 {
            unreachable!("bound decays geometrically");
        }
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_examples() {
        // §4.1: for α = 0.15, φ(10) ≤ 0.143, φ(20) ≤ 0.0280, φ(30) ≤ 0.00552.
        assert!((l1_error_bound(0.15, 10) - 0.142242).abs() < 1e-3);
        assert!((l1_error_bound(0.15, 20) - 0.028005).abs() < 1e-4);
        assert!((l1_error_bound(0.15, 30) - 0.005514).abs() < 1e-4);
    }

    #[test]
    fn decays_monotonically_to_zero() {
        let mut prev = 1.0;
        for k in 0..100 {
            let b = l1_error_bound(0.15, k);
            assert!(b < prev);
            prev = b;
        }
        assert!(prev < 1e-7);
    }

    #[test]
    fn min_iterations_inverts_bound() {
        for target in [0.5, 0.1, 0.01, 1e-6] {
            let k = min_iterations_for(0.15, target);
            assert!(l1_error_bound(0.15, k) <= target);
            if k > 0 {
                assert!(l1_error_bound(0.15, k - 1) > target);
            }
        }
    }

    #[test]
    fn zero_iterations_bound() {
        // k = 0 covers all tours of length ≤ 1.
        assert!((l1_error_bound(0.15, 0) - 0.85f64.powi(2)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn rejects_bad_alpha() {
        l1_error_bound(0.0, 1);
    }
}
